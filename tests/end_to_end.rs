//! Cross-crate integration tests: FactorHD, the baselines, and the neural
//! pipeline exercised together through the facade crate's public API.

use factorhd::baselines::{
    oracle, FactorizationProblem, ImcConfig, ImcFactorizer, Resonator, ResonatorConfig,
};
use factorhd::prelude::*;

#[test]
fn all_factorizers_solve_the_same_cc_problem() {
    // One shared class–class instance; every solver must crack it.
    let problem = FactorizationProblem::derive(404, 3, 8, 1024);
    let resonator = Resonator::new(ResonatorConfig::default()).solve(&problem);
    assert!(resonator.is_correct(&problem), "resonator failed");
    let imc = ImcFactorizer::new(ImcConfig::default()).solve(&problem);
    assert!(imc.is_correct(&problem), "IMC factorizer failed");
    let brute = oracle::exhaustive_solve(&problem, 1024);
    assert!(brute.is_correct(&problem), "oracle failed");
    // The oracle pays the full M^F cost; the iterative solvers do not.
    assert_eq!(brute.iterations, 512);
    assert!(resonator.iterations < 512);
}

#[test]
fn factorhd_matches_oracle_semantics_on_flat_taxonomies() {
    // On Rep-1 problems, FactorHD's label-elimination decode must find the
    // same assignment the exhaustive search would (the unique true one).
    let taxonomy = TaxonomyBuilder::new(2048)
        .seed(405)
        .uniform_classes(3, &[8])
        .build()
        .expect("valid taxonomy");
    let encoder = Encoder::new(&taxonomy);
    let factorizer = Factorizer::new(&taxonomy, FactorizeConfig::default());
    let mut rng = hdc::rng_from_seed(406);
    for _ in 0..20 {
        let object = taxonomy.sample_object(&mut rng);
        let hv = encoder
            .encode_scene(&Scene::single(object.clone()))
            .expect("encodable");
        let decoded = factorizer.factorize_single(&hv).expect("decodable");
        assert_eq!(decoded.object(), &object);
    }
}

#[test]
fn factorhd_handles_what_breaks_the_ci_model() {
    use factorhd::baselines::CiModel;

    // Two scenes that are indistinguishable to the C-I model (superposition
    // catastrophe) are distinguishable to FactorHD.
    let ci = CiModel::derive(407, 2, 8, 2048);
    let ci_a = ci.encode_scene(&[vec![1, 2], vec![3, 4]]);
    let ci_b = ci.encode_scene(&[vec![1, 4], vec![3, 2]]);
    assert_eq!(ci_a, ci_b, "C-I collision expected");

    let taxonomy = TaxonomyBuilder::new(4096)
        .seed(408)
        .uniform_classes(2, &[8])
        .build()
        .expect("valid taxonomy");
    let encoder = Encoder::new(&taxonomy);
    let make_scene = |pairs: &[(u16, u16)]| -> Scene {
        pairs
            .iter()
            .map(|&(a, b)| ObjectSpec::present(vec![ItemPath::top(a), ItemPath::top(b)]))
            .collect()
    };
    let scene_a = make_scene(&[(1, 2), (3, 4)]);
    let scene_b = make_scene(&[(1, 4), (3, 2)]);
    let hv_a = encoder.encode_scene(&scene_a).expect("encodable");
    let hv_b = encoder.encode_scene(&scene_b).expect("encodable");
    assert_ne!(hv_a, hv_b, "FactorHD encodings must differ");

    let factorizer = Factorizer::new(
        &taxonomy,
        FactorizeConfig {
            threshold: ThresholdPolicy::Analytic { n_objects: 2 },
            ..FactorizeConfig::default()
        },
    );
    let decoded_a = factorizer.factorize_multi(&hv_a).expect("decodable");
    let decoded_b = factorizer.factorize_multi(&hv_b).expect("decodable");
    assert!(decoded_a.to_scene().same_multiset(&scene_a));
    assert!(decoded_b.to_scene().same_multiset(&scene_b));
    assert!(!decoded_a.to_scene().same_multiset(&scene_b));
}

#[test]
fn facade_prelude_covers_the_main_workflow() {
    // The quickstart path compiles and runs purely from the prelude.
    let taxonomy = TaxonomyBuilder::new(1024)
        .class("a", &[4])
        .class("b", &[4])
        .build()
        .expect("valid taxonomy");
    let object = ObjectSpec::present(vec![ItemPath::top(1), ItemPath::top(2)]);
    let encoder = Encoder::new(&taxonomy);
    let hv = encoder
        .encode_scene(&Scene::single(object.clone()))
        .expect("encodable");
    let decoded = Factorizer::new(&taxonomy, FactorizeConfig::default())
        .factorize_single(&hv)
        .expect("decodable");
    assert_eq!(decoded.object(), &object);
}

#[test]
fn neural_pipeline_runs_through_the_facade() {
    use factorhd::neural::{CifarPipeline, CifarPipelineConfig};

    let pipeline = CifarPipeline::new(CifarPipelineConfig {
        dim: 2048,
        samples_per_class: 16,
        ..CifarPipelineConfig::cifar10()
    })
    .expect("valid pipeline");
    let accuracy = pipeline.evaluate(100, 9).expect("evaluation runs");
    assert!(accuracy > 0.75, "pipeline accuracy {accuracy}");
}

#[test]
fn raven_pipeline_runs_through_the_facade() {
    use factorhd::neural::datasets::raven::RavenConfig;
    use factorhd::neural::{RavenPipeline, RavenPipelineConfig};

    let pipeline = RavenPipeline::new(RavenConfig::Center, RavenPipelineConfig::default())
        .expect("valid pipeline");
    let accuracy = pipeline.evaluate(30, 10).expect("evaluation runs");
    assert!(accuracy > 0.8, "RAVEN Center accuracy {accuracy}");
}
