//! Determinism guarantees: identical seeds must reproduce identical
//! structures, encodings, and factorizations across the whole stack —
//! the property every experiment in EXPERIMENTS.md relies on.

use factorhd::baselines::{FactorizationProblem, ImcConfig, ImcFactorizer};
use factorhd::prelude::*;

fn build_taxonomy(seed: u64) -> Taxonomy {
    TaxonomyBuilder::new(1024)
        .seed(seed)
        .class("animal", &[8, 4])
        .class("color", &[8])
        .build()
        .expect("valid taxonomy")
}

#[test]
fn taxonomies_reproduce_bit_identically() {
    let a = build_taxonomy(55);
    let b = build_taxonomy(55);
    assert_eq!(a.label(0), b.label(0));
    assert_eq!(a.label(1), b.label(1));
    assert_eq!(a.null_hv(), b.null_hv());
    assert_eq!(
        a.codebook(0, &[3]).expect("valid").as_ref(),
        b.codebook(0, &[3]).expect("valid").as_ref()
    );
}

#[test]
fn different_seeds_give_different_taxonomies() {
    let a = build_taxonomy(55);
    let b = build_taxonomy(56);
    assert_ne!(a.label(0), b.label(0));
}

#[test]
fn scene_encoding_reproduces() {
    let taxonomy = build_taxonomy(57);
    let encoder = Encoder::new(&taxonomy);
    let mut rng1 = hdc::rng_from_seed(1);
    let mut rng2 = hdc::rng_from_seed(1);
    let s1 = taxonomy.sample_scene(3, true, &mut rng1);
    let s2 = taxonomy.sample_scene(3, true, &mut rng2);
    assert_eq!(s1, s2);
    assert_eq!(
        encoder.encode_scene(&s1).expect("encodable"),
        encoder.encode_scene(&s2).expect("encodable")
    );
}

#[test]
fn factorization_reproduces() {
    let taxonomy = build_taxonomy(58);
    let encoder = Encoder::new(&taxonomy);
    let factorizer = Factorizer::new(
        &taxonomy,
        FactorizeConfig {
            threshold: ThresholdPolicy::Analytic { n_objects: 2 },
            ..FactorizeConfig::default()
        },
    );
    let mut rng = hdc::rng_from_seed(2);
    let scene = taxonomy.sample_scene(2, true, &mut rng);
    let hv = encoder.encode_scene(&scene).expect("encodable");
    let a = factorizer.factorize_multi(&hv).expect("decodable");
    let b = factorizer.factorize_multi(&hv).expect("decodable");
    assert_eq!(a, b);
}

#[test]
fn stochastic_baseline_reproduces_with_fixed_seed() {
    let problem = FactorizationProblem::derive(59, 3, 16, 512);
    let config = ImcConfig {
        seed: 999,
        ..ImcConfig::default()
    };
    let a = ImcFactorizer::new(config).solve(&problem);
    let b = ImcFactorizer::new(config).solve(&problem);
    assert_eq!(a, b);
}

#[test]
fn parallel_trial_runners_reproduce() {
    // The bench runners fan trials out across threads; accuracy and
    // operation counts must not depend on scheduling (wall-clock does and
    // is deliberately excluded here).
    use factorhd_bench::{run_factorhd_rep1, th_sweep};
    let a = run_factorhd_rep1(3, 8, 1024, 16, 77);
    let b = run_factorhd_rep1(3, 8, 1024, 16, 77);
    assert_eq!(a.accuracy, b.accuracy);
    assert_eq!(a.avg_ops, b.avg_ops);

    let grid = [0.05, 0.10, 0.15];
    let (th_a, points_a) = th_sweep(2, 3, 1024, 8, &grid, 8, 78);
    let (th_b, points_b) = th_sweep(2, 3, 1024, 8, &grid, 8, 78);
    assert_eq!(th_a, th_b);
    assert_eq!(points_a, points_b);
}

#[test]
fn parallel_encoding_preserves_trial_order() {
    // Regression guard for parallel-reduction nondeterminism: a parallel
    // map over per-trial scene encodings must return bit-identical vectors
    // in input order, or any accumulator bundled from them would drift
    // between runs.
    use rayon::prelude::*;
    let taxonomy = build_taxonomy(60);
    let encoder = Encoder::new(&taxonomy);
    let encode_trial = |trial: u64| {
        let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[61, trial]));
        let scene = taxonomy.sample_scene(2, true, &mut rng);
        encoder.encode_scene(&scene).expect("encodable")
    };
    let sequential: Vec<_> = (0..16u64).map(encode_trial).collect();
    let parallel: Vec<_> = (0..16u64).into_par_iter().map(encode_trial).collect();
    assert_eq!(sequential, parallel);

    let mut bundle_seq = sequential[0].clone();
    let mut bundle_par = parallel[0].clone();
    for (s, p) in sequential.iter().zip(&parallel).skip(1) {
        bundle_seq.add_accum(s);
        bundle_par.add_accum(p);
    }
    assert_eq!(bundle_seq, bundle_par);
}

/// A deterministic mixed typed-op stream over `taxonomy`: Rep-2 singles,
/// Rep-3 multis, partial factorizations, membership probes, and encodes.
fn mixed_ops(taxonomy: &Taxonomy, n: usize, seed: u64) -> Vec<AnyOp> {
    let encoder = Encoder::new(taxonomy);
    let mut rng = hdc::rng_from_seed(seed);
    (0..n)
        .map(|i| {
            let object = taxonomy.sample_object(&mut rng);
            match i % 5 {
                0 => {
                    let scene = taxonomy.sample_scene(2, true, &mut rng);
                    AnyOp::Rep3(FactorizeRep3 {
                        scene: encoder.encode_scene(&scene).expect("encodable"),
                    })
                }
                1 => AnyOp::Partial(PartialDecode {
                    scene: encoder
                        .encode_scene(&Scene::single(object))
                        .expect("encodable"),
                    classes: vec![0],
                }),
                2 => AnyOp::Membership(MembershipProbe {
                    scene: encoder
                        .encode_scene(&Scene::single(object.clone()))
                        .expect("encodable"),
                    items: vec![(1, object.assignment(1).expect("present").clone())],
                    absent: vec![],
                }),
                3 => AnyOp::Encode(EncodeScene {
                    scene: Scene::single(object),
                }),
                _ => AnyOp::Rep2(FactorizeRep2 {
                    scene: encoder
                        .encode_scene(&Scene::single(object))
                        .expect("encodable"),
                }),
            }
        })
        .collect()
}

#[test]
fn engine_batch_is_bit_identical_to_sequential_loop() {
    // The serving engine's planned batch execution must be
    // indistinguishable — bit for bit — from a sequential loop over the
    // same typed ops, whether its caches are cold or warm, and across
    // construction paths (in-memory vs artifact round trip).
    let ops = mixed_ops(&build_taxonomy(62), 20, 63);
    let unwrap = |results: Vec<Result<AnyOutput, EngineError>>| -> Vec<AnyOutput> {
        results
            .into_iter()
            .map(|r| r.expect("op succeeds"))
            .collect()
    };

    // Cold engine, planned batch.
    let cold_engine =
        FactorEngine::new(build_taxonomy(62), EngineConfig::default()).expect("valid config");
    let cold_batched = unwrap(cold_engine.run_mixed(&ops));
    // Cold engine, sequential (fresh instance so no cache is shared).
    let seq_engine =
        FactorEngine::new(build_taxonomy(62), EngineConfig::default()).expect("valid config");
    let cold_sequential = unwrap(seq_engine.run_mixed_sequential(&ops));
    assert_eq!(cold_batched, cold_sequential);

    // Warm caches (both engines served one pass already).
    let warm_batched = unwrap(cold_engine.run_mixed(&ops));
    let warm_sequential = unwrap(seq_engine.run_mixed_sequential(&ops));
    assert_eq!(warm_batched, cold_batched);
    assert_eq!(warm_sequential, cold_sequential);

    // The plain core loop (no engine, no caches) agrees output by
    // output.
    let taxonomy = build_taxonomy(62);
    let factorizer = Factorizer::new(&taxonomy, FactorizeConfig::default());
    let encoder = Encoder::new(&taxonomy);
    for (op, output) in ops.iter().zip(&cold_batched) {
        match (op, output) {
            (AnyOp::Rep2(FactorizeRep2 { scene }), AnyOutput::Rep2(decoded)) => {
                assert_eq!(
                    &factorizer.factorize_single(scene).expect("decodes"),
                    decoded
                );
            }
            (AnyOp::Rep3(FactorizeRep3 { scene }), AnyOutput::Rep3(decoded)) => {
                assert_eq!(
                    &factorizer.factorize_multi(scene).expect("decodes"),
                    decoded
                );
            }
            (AnyOp::Partial(PartialDecode { scene, classes }), AnyOutput::Partial(decoded)) => {
                assert_eq!(
                    &factorizer
                        .factorize_classes(scene, classes)
                        .expect("decodes"),
                    decoded
                );
            }
            (AnyOp::Encode(EncodeScene { scene }), AnyOutput::Encoded(hv)) => {
                assert_eq!(&encoder.encode_scene(scene).expect("encodable"), hv);
            }
            (
                AnyOp::Membership(MembershipProbe {
                    scene,
                    items,
                    absent,
                }),
                AnyOutput::Membership(answer),
            ) => {
                let mut query = SceneQuery::new(&taxonomy);
                for (class, path) in items {
                    query = query.with_item(*class, path.clone()).expect("valid item");
                }
                for &class in absent {
                    query = query.with_absent(class).expect("valid class");
                }
                assert_eq!(&query.evaluate(scene).expect("evaluates"), answer);
            }
            (op, output) => panic!("mismatched variants: {op:?} → {output:?}"),
        }
    }

    // An artifact round trip serves the same stream identically.
    let mut bytes = Vec::new();
    cold_engine.save_to(&mut bytes).expect("serializes");
    let restored =
        FactorEngine::load_from(&mut &bytes[..], EngineConfig::default()).expect("deserializes");
    assert_eq!(unwrap(restored.run_mixed(&ops)), cold_batched);
}

#[test]
fn metrics_recording_state_is_unobservable_in_outputs() {
    // Telemetry must never influence computation: the same mixed-op
    // batch served with metrics recording on, off, and on again (and
    // under the `metrics-off` feature, where the switch is inert)
    // returns bit-identical outputs, batched and sequential alike.
    let ops = mixed_ops(&build_taxonomy(72), 20, 73);
    let engine =
        FactorEngine::new(build_taxonomy(72), EngineConfig::default()).expect("valid config");
    let unwrap = |results: Vec<Result<AnyOutput, EngineError>>| -> Vec<AnyOutput> {
        results
            .into_iter()
            .map(|r| r.expect("op succeeds"))
            .collect()
    };
    let was_recording = factorhd::metrics::metrics_recording();

    factorhd::metrics::set_metrics_recording(true);
    let recorded = unwrap(engine.run_mixed(&ops));
    let recorded_sequential = unwrap(engine.run_mixed_sequential(&ops));

    factorhd::metrics::set_metrics_recording(false);
    let unrecorded = unwrap(engine.run_mixed(&ops));
    let unrecorded_sequential = unwrap(engine.run_mixed_sequential(&ops));

    factorhd::metrics::set_metrics_recording(true);
    let recorded_again = unwrap(engine.run_mixed(&ops));
    factorhd::metrics::set_metrics_recording(was_recording);

    assert_eq!(recorded, unrecorded, "recording switch changed outputs");
    assert_eq!(recorded, recorded_again);
    assert_eq!(recorded, recorded_sequential);
    assert_eq!(recorded, unrecorded_sequential);
}

#[test]
fn engine_batch_is_thread_count_invariant() {
    // The worker pool's size must be unobservable in results: the same
    // mixed-op batch served on 1-, 2-, and 4-lane pools (the in-process
    // equivalent of RAYON_NUM_THREADS=1/2/4) returns bit-identical
    // outputs in the same stable input order, and each pool size matches
    // the sequential reference loop.
    let ops = mixed_ops(&build_taxonomy(70), 24, 71);
    let engine =
        FactorEngine::new(build_taxonomy(70), EngineConfig::default()).expect("valid config");
    let unwrap = |results: Vec<Result<AnyOutput, EngineError>>| -> Vec<AnyOutput> {
        results
            .into_iter()
            .map(|r| r.expect("op succeeds"))
            .collect()
    };
    let initial = rayon::current_num_threads();
    let mut reference: Option<Vec<AnyOutput>> = None;
    for threads in [1usize, 2, 4] {
        rayon::configure_pool(threads);
        let batched = unwrap(engine.run_mixed(&ops));
        let sequential = unwrap(engine.run_mixed_sequential(&ops));
        assert_eq!(
            batched, sequential,
            "planned vs sequential at {threads} lanes"
        );
        match &reference {
            None => reference = Some(batched),
            Some(expected) => {
                assert_eq!(&batched, expected, "pool size {threads} changed results")
            }
        }
    }
    rayon::configure_pool(initial);
}

#[test]
fn online_trained_prototypes_are_thread_count_invariant() {
    // Online learning must be deterministic under the parallel planner:
    // the same Train batch + Retrain + Classify stream executed on 1-,
    // 2-, and 4-lane pools (the in-process equivalent of
    // RAYON_NUM_THREADS=1/2/4) leaves bit-identical prototype
    // accumulators, replay buffers, and classifications — integer
    // bundling is commutative and the replay buffer is keyed by sample
    // id, so chunking and scheduling are unobservable. (Train *acks*
    // carry arrival-order-dependent running totals and are deliberately
    // not compared.)
    use factorhd::learn::PrototypeModel;
    use hdc::{AccumHv, BipolarHv};

    const CLASSES: usize = 3;
    const DIM: usize = 512;

    let example = |class: usize, sample: u64| -> AccumHv {
        let mut anchor_rng = hdc::rng_from_seed(900 + class as u64);
        let anchor = BipolarHv::random(DIM, &mut anchor_rng);
        let mut noise_rng = hdc::rng_from_seed(7000 + sample);
        let noise = BipolarHv::random(DIM, &mut noise_rng);
        let mut acc = AccumHv::zeros(DIM);
        acc.add_bipolar(&anchor, 1);
        acc.add_bipolar(&noise, 2);
        acc
    };

    let run_at = |threads: usize| -> (PrototypeModel, Vec<AnyOutput>) {
        rayon::configure_pool(threads);
        let registry = ModelRegistry::new();
        let taxonomy = TaxonomyBuilder::new(DIM)
            .class("shape", &[4])
            .build()
            .expect("valid taxonomy");
        let state = ModelState::new_learnable(
            taxonomy,
            EngineConfig::default(),
            LearnConfig::new(CLASSES, DIM),
        )
        .expect("valid learnable state");
        registry.install("m", state);

        // One parallel Train batch (groupable: chunked across the pool),
        // then a Retrain, then classifications.
        let train_batch: Vec<(ModelId, AnyOp)> = (0..60u64)
            .map(|i| {
                let class = i as usize % CLASSES;
                (
                    ModelId::new("m"),
                    AnyOp::Train(Train {
                        class,
                        sample: i,
                        example: example(class, i),
                        retain: true,
                    }),
                )
            })
            .collect();
        for result in registry.execute_batch(&train_batch) {
            result.expect("train succeeds");
        }
        registry
            .run("m", &Retrain { epochs: 5 })
            .expect("retrain succeeds");
        let classify_batch: Vec<(ModelId, AnyOp)> = (0..12u64)
            .map(|i| {
                (
                    ModelId::new("m"),
                    AnyOp::Classify(Classify {
                        query: example(i as usize % CLASSES, 5000 + i),
                        top_k: 2,
                    }),
                )
            })
            .collect();
        let classifications = registry
            .execute_batch(&classify_batch)
            .into_iter()
            .map(|r| r.expect("classify succeeds"))
            .collect();

        let handle = registry.get("m").expect("installed");
        let model = handle
            .state()
            .learner()
            .expect("learnable")
            .with_model(|m| m.clone());
        (model, classifications)
    };

    let initial = rayon::current_num_threads();
    let mut reference: Option<(PrototypeModel, Vec<AnyOutput>)> = None;
    for threads in [1usize, 2, 4] {
        let run = run_at(threads);
        match &reference {
            None => reference = Some(run),
            Some((expected_model, expected_outputs)) => {
                assert_eq!(
                    &run.0, expected_model,
                    "pool size {threads} changed the trained model"
                );
                assert_eq!(
                    &run.1, expected_outputs,
                    "pool size {threads} changed classifications"
                );
            }
        }
    }
    rayon::configure_pool(initial);
}

#[test]
fn contained_op_panics_preserve_batch_determinism() {
    // Panic containment must be invisible to every op it does not
    // contain: with one op in the batch poisoned via the
    // `engine/op_panic` failpoint, the poisoned slot comes back as a
    // typed `OpPanicked` while every other slot stays bit-identical to
    // the (uncontained, failpoint-free) sequential reference — at 1-,
    // 2-, and 4-lane pools alike.
    use factorhd::engine::failpoint::{self, FailMode};

    // The poisoned op is an Encode of a 3-object scene (chaos tag 303)
    // — no other test in this binary executes that shape, so the
    // process-global failpoint cannot leak across tests.
    let taxonomy = build_taxonomy(80);
    let mut ops = mixed_ops(&taxonomy, 20, 81);
    let mut rng = hdc::rng_from_seed(82);
    let poisoned = AnyOp::Encode(EncodeScene {
        scene: taxonomy.sample_scene(3, true, &mut rng),
    });
    assert!(
        ops.iter().all(|op| op.chaos_tag() != poisoned.chaos_tag()),
        "the poison tag must single out exactly one op"
    );
    ops.insert(7, poisoned);

    let engine =
        FactorEngine::new(build_taxonomy(80), EngineConfig::default()).expect("valid config");
    // The sequential reference path has no failpoint site, so it
    // yields the poisoned op's true output for free.
    let sequential = engine.run_mixed_sequential(&ops);

    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            failpoint::disarm("engine/op_panic");
        }
    }
    failpoint::arm("engine/op_panic", FailMode::Tag(ops[7].chaos_tag()));
    let _disarm = Disarm;

    let initial = rayon::current_num_threads();
    for threads in [1usize, 2, 4] {
        rayon::configure_pool(threads);
        let batched = engine.run_mixed(&ops);
        assert_eq!(batched.len(), sequential.len());
        for (slot, (b, s)) in batched.iter().zip(&sequential).enumerate() {
            if slot == 7 {
                assert!(
                    matches!(b, Err(EngineError::OpPanicked { .. })),
                    "poisoned slot must fail typed at {threads} lanes, got {b:?}"
                );
            } else {
                assert_eq!(
                    b.as_ref().expect("unpoisoned op succeeds"),
                    s.as_ref().expect("reference op succeeds"),
                    "slot {slot} drifted under containment at {threads} lanes"
                );
            }
        }
    }
    rayon::configure_pool(initial);
}

#[test]
fn registry_batch_is_bit_identical_to_sequential_loop() {
    // The multi-model planner must match its own sequential reference
    // while serving two different taxonomies from one batch.
    let registry = ModelRegistry::new();
    registry.install(
        "a",
        ModelState::new(build_taxonomy(64), EngineConfig::default()).expect("valid config"),
    );
    registry.install(
        "b",
        ModelState::new(build_taxonomy(65), EngineConfig::default()).expect("valid config"),
    );
    let ops_a = {
        let handle = registry.get("a").expect("installed");
        mixed_ops(handle.state().taxonomy(), 10, 66)
    };
    let ops_b = {
        let handle = registry.get("b").expect("installed");
        mixed_ops(handle.state().taxonomy(), 10, 67)
    };
    // Interleave the two models so grouping actually has work to do.
    let mut routed: Vec<(ModelId, AnyOp)> = Vec::new();
    for (a, b) in ops_a.into_iter().zip(ops_b) {
        routed.push((ModelId::new("a"), a));
        routed.push((ModelId::new("b"), b));
    }
    let batched = registry.execute_batch(&routed);
    let sequential = registry.execute_sequential(&routed);
    assert_eq!(batched.len(), sequential.len());
    for (b, s) in batched.iter().zip(&sequential) {
        assert_eq!(
            b.as_ref().expect("op succeeds"),
            s.as_ref().expect("op succeeds")
        );
    }
}

#[test]
fn neural_pipeline_reproduces() {
    use factorhd::neural::{CifarPipeline, CifarPipelineConfig};
    let config = CifarPipelineConfig {
        dim: 1024,
        samples_per_class: 8,
        ..CifarPipelineConfig::cifar10()
    };
    let p1 = CifarPipeline::new(config).expect("valid pipeline");
    let p2 = CifarPipeline::new(config).expect("valid pipeline");
    assert_eq!(p1.alignment(), p2.alignment());
    assert_eq!(
        p1.evaluate(50, 3).expect("runs"),
        p2.evaluate(50, 3).expect("runs")
    );
}
