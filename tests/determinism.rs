//! Determinism guarantees: identical seeds must reproduce identical
//! structures, encodings, and factorizations across the whole stack —
//! the property every experiment in EXPERIMENTS.md relies on.

use factorhd::baselines::{FactorizationProblem, ImcConfig, ImcFactorizer};
use factorhd::prelude::*;

fn build_taxonomy(seed: u64) -> Taxonomy {
    TaxonomyBuilder::new(1024)
        .seed(seed)
        .class("animal", &[8, 4])
        .class("color", &[8])
        .build()
        .expect("valid taxonomy")
}

#[test]
fn taxonomies_reproduce_bit_identically() {
    let a = build_taxonomy(55);
    let b = build_taxonomy(55);
    assert_eq!(a.label(0), b.label(0));
    assert_eq!(a.label(1), b.label(1));
    assert_eq!(a.null_hv(), b.null_hv());
    assert_eq!(
        a.codebook(0, &[3]).expect("valid").as_ref(),
        b.codebook(0, &[3]).expect("valid").as_ref()
    );
}

#[test]
fn different_seeds_give_different_taxonomies() {
    let a = build_taxonomy(55);
    let b = build_taxonomy(56);
    assert_ne!(a.label(0), b.label(0));
}

#[test]
fn scene_encoding_reproduces() {
    let taxonomy = build_taxonomy(57);
    let encoder = Encoder::new(&taxonomy);
    let mut rng1 = hdc::rng_from_seed(1);
    let mut rng2 = hdc::rng_from_seed(1);
    let s1 = taxonomy.sample_scene(3, true, &mut rng1);
    let s2 = taxonomy.sample_scene(3, true, &mut rng2);
    assert_eq!(s1, s2);
    assert_eq!(
        encoder.encode_scene(&s1).expect("encodable"),
        encoder.encode_scene(&s2).expect("encodable")
    );
}

#[test]
fn factorization_reproduces() {
    let taxonomy = build_taxonomy(58);
    let encoder = Encoder::new(&taxonomy);
    let factorizer = Factorizer::new(
        &taxonomy,
        FactorizeConfig {
            threshold: ThresholdPolicy::Analytic { n_objects: 2 },
            ..FactorizeConfig::default()
        },
    );
    let mut rng = hdc::rng_from_seed(2);
    let scene = taxonomy.sample_scene(2, true, &mut rng);
    let hv = encoder.encode_scene(&scene).expect("encodable");
    let a = factorizer.factorize_multi(&hv).expect("decodable");
    let b = factorizer.factorize_multi(&hv).expect("decodable");
    assert_eq!(a, b);
}

#[test]
fn stochastic_baseline_reproduces_with_fixed_seed() {
    let problem = FactorizationProblem::derive(59, 3, 16, 512);
    let config = ImcConfig {
        seed: 999,
        ..ImcConfig::default()
    };
    let a = ImcFactorizer::new(config).solve(&problem);
    let b = ImcFactorizer::new(config).solve(&problem);
    assert_eq!(a, b);
}

#[test]
fn neural_pipeline_reproduces() {
    use factorhd::neural::{CifarPipeline, CifarPipelineConfig};
    let config = CifarPipelineConfig {
        dim: 1024,
        samples_per_class: 8,
        ..CifarPipelineConfig::cifar10()
    };
    let p1 = CifarPipeline::new(config).expect("valid pipeline");
    let p2 = CifarPipeline::new(config).expect("valid pipeline");
    assert_eq!(p1.alignment(), p2.alignment());
    assert_eq!(
        p1.evaluate(50, 3).expect("runs"),
        p2.evaluate(50, 3).expect("runs")
    );
}
