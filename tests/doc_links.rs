//! Keeps the docs book honest: every relative markdown link in
//! `README.md` and `docs/*.md` must point at a file that exists, so the
//! architecture book cannot silently rot as files move. The same check
//! runs in CI's docs job via `scripts/check_doc_links.sh`; this native
//! version makes it part of `cargo test`.

use std::path::{Path, PathBuf};

/// Extracts every inline markdown link target `](target)` from `text`.
fn link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(end) = text[i + 2..].find(')') {
                targets.push(text[i + 2..i + 2 + end].to_owned());
                i += 2 + end;
                continue;
            }
        }
        i += 1;
    }
    targets
}

fn check_doc(doc: &Path, broken: &mut Vec<String>) {
    let text = std::fs::read_to_string(doc).expect("doc file readable");
    let dir = doc.parent().expect("doc has a parent directory");
    for target in link_targets(&text) {
        if target.starts_with("http://")
            || target.starts_with("https://")
            || target.starts_with("mailto:")
            || target.starts_with('#')
        {
            continue;
        }
        let path = target.split('#').next().unwrap_or("");
        if path.is_empty() {
            continue;
        }
        if !dir.join(path).exists() {
            broken.push(format!("{} -> {}", doc.display(), target));
        }
    }
}

#[test]
fn all_relative_doc_links_resolve() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut docs = vec![root.join("README.md")];
    let book = root.join("docs");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&book)
        .expect("docs/ directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 3,
        "the architecture book should hold at least ARCHITECTURE/REPRESENTATIONS/SERVING"
    );
    docs.extend(entries);

    let mut broken = Vec::new();
    for doc in &docs {
        check_doc(doc, &mut broken);
    }
    assert!(
        broken.is_empty(),
        "broken doc links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn link_extraction_handles_edge_cases() {
    let targets = link_targets("see [a](x.md), [b](docs/y.md#frag) and [c](#anchor)");
    assert_eq!(targets, vec!["x.md", "docs/y.md#frag", "#anchor"]);
    assert!(link_targets("no links here").is_empty());
}
