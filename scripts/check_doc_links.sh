#!/usr/bin/env bash
# Verifies that every relative markdown link in README.md and docs/*.md
# points at a file that exists (anchors are stripped; http(s) and mailto
# links are skipped). Exits non-zero listing every broken link.
#
# The same check runs natively in the test suite as tests/doc_links.rs;
# this script is the CI/docs-job entry point.
set -u

cd "$(dirname "$0")/.."

broken=$(
    for doc in README.md docs/*.md; do
        [ -f "$doc" ] || continue
        dir=$(dirname "$doc")
        # Extract every inline markdown link target: [text](target)
        grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//' | while read -r target; do
            case "$target" in
            http://* | https://* | mailto:*) continue ;;
            "#"*) continue ;; # same-file anchor
            esac
            path="${target%%#*}"
            [ -n "$path" ] || continue
            [ -e "$dir/$path" ] || echo "BROKEN: $doc -> $target"
        done
    done
)

if [ -n "$broken" ]; then
    echo "$broken"
    echo "doc link check failed" >&2
    exit 1
fi
echo "doc links OK"
