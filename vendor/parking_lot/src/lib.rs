//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (`lock()` / `read()` / `write()` return guards directly). Poisoned locks
//! are recovered rather than propagated, matching `parking_lot` semantics
//! of not having poisoning at all.

#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

/// Re-export of the read guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Re-export of the write guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Re-export of the guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_roundtrip() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let lock = RwLock::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        *lock.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*lock.read(), 400);
    }
}
