//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `criterion_group!` / `criterion_main!` harness shape and
//! the `Bencher::iter` / `iter_batched` measurement API, with a simple
//! median-of-samples timer instead of criterion's statistical machinery.
//! Benchmarks print one line per function:
//!
//! ```text
//! ops/bipolar_bind            median   612 ns   (20 samples, 1024 iters each)
//! ```
//!
//! When cargo invokes a bench target in *test* mode (`cargo test --benches`
//! passes `--test`), every `iter` routine runs exactly once (no calibration)
//! and every `iter_batched` routine runs one setup/run pair, so suites stay
//! fast while still exercising the code.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch-size hint for [`Bencher::iter_batched`]; the shim only uses it to
/// pick how many setup/run pairs form one sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// The measurement context handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Test mode (`--test`): run each routine exactly once, no calibration.
    one_shot: bool,
    /// Set to the collected per-iteration times by the iter methods.
    recorded: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize, one_shot: bool) -> Self {
        Bencher {
            samples,
            one_shot,
            recorded: Vec::new(),
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.one_shot {
            let start = Instant::now();
            black_box(routine());
            self.recorded.push(start.elapsed());
            return;
        }
        // Calibrate an iteration count so one sample takes ≥ ~1 ms, capped
        // to keep total time bounded for slow routines.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;

        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.recorded.push(start.elapsed() / iters as u32);
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; only the
    /// routine is measured.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed());
        }
    }

    fn report(&mut self, label: &str) {
        if self.recorded.is_empty() {
            return;
        }
        self.recorded.sort_unstable();
        let median = self.recorded[self.recorded.len() / 2];
        println!(
            "{label:<44} median {:>12?}   ({} samples)",
            median,
            self.recorded.len()
        );
        self.recorded.clear();
    }
}

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim ignores target times.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Applies harness command-line flags (`--test` switches to one-shot
    /// mode). Called by `criterion_group!`-generated code.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.test_mode = true;
        }
        self
    }

    fn effective_samples(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.effective_samples(), self.test_mode);
        f(&mut bencher);
        bencher.report(&id);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(label, f);
        self
    }

    /// Accepted for API compatibility; the shim ignores sample overrides
    /// at group level.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Finishes the group (drop would do the same; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        c.bench_function("direct", |b| b.iter(|| black_box(2u64 + 2)));
        let mut group = c.benchmark_group("group");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn harness_runs_benchmarks() {
        let mut criterion = Criterion::default().sample_size(3);
        trivial_bench(&mut criterion);
    }

    criterion_group! {
        name = shim_benches;
        config = Criterion::default().sample_size(2);
        targets = trivial_bench
    }

    #[test]
    fn group_macro_expands_and_runs() {
        shim_benches();
    }
}
