//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand` 0.8 API surface the FactorHD
//! crates actually use: [`RngCore`] / [`Rng`] / [`SeedableRng`], a
//! deterministic [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! uniform range sampling, and [`seq::SliceRandom`].
//!
//! The implementation is clean-room and intentionally tiny; it favours
//! cross-platform determinism (the property the workspace's experiments
//! rely on) over the full distribution toolkit of the real crate.

#![forbid(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Low-level source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed material (fixed-size byte array in the real crate).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanded with SplitMix64
    /// (the same construction the real crate documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let out = splitmix64_mix(state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[inline]
pub(crate) fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sampling of a value uniformly over a type's full domain (`rng.gen()`),
/// the shim's equivalent of the real crate's `Standard` distribution.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with the standard 53-bit construction.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with the standard 24-bit construction.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if it is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a `u64` in `[0, span)` using the widening-multiply map (uniform up
/// to a bias of `span / 2^64`, and fully deterministic).
#[inline]
fn sample_below<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_below(span, rng) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_below(span as u64, rng) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// User-facing extension trait with the convenience sampling methods.
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's domain (`[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(
            StdRng::seed_from_u64(1).next_u64(),
            StdRng::seed_from_u64(2).next_u64()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            seen[x] = true;
            let y = rng.gen_range(-2i8..=1);
            assert!((-2..=1).contains(&y));
            let z = rng.gen_range(-0.5f64..0.25);
            assert!((-0.5..0.25).contains(&z));
        }
        assert!(seen[3..10].iter().all(|&s| s), "all values reachable");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
