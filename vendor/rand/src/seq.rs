//! Sequence-related helpers (`SliceRandom`).

use crate::Rng;

/// Extension trait adding random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates, matching the real
    /// crate's end-to-start order).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns one uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_moves_something() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut rng = StdRng::seed_from_u64(13);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let xs = [5u8, 6, 7];
        assert!(xs.contains(xs.choose(&mut rng).expect("non-empty")));
    }
}
