//! Named generator types (`StdRng`).

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator.
///
/// xoshiro256++ (Blackman & Vigna) rather than the real crate's ChaCha12 —
/// what matters to this workspace is that a given seed produces an
/// identical stream on every platform and build, which this guarantees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // xoshiro's state must not be all zero; remix through SplitMix64.
        if s == [0; 4] {
            let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
            for word in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                *word = crate::splitmix64_mix(state);
            }
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_valid() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0, "state escaped the zero fixed point");
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = StdRng::seed_from_u64(3);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
