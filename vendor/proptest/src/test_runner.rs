//! Test configuration and the deterministic per-test RNG.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The RNG driving strategy sampling.
pub type TestRng = StdRng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic RNG derived from a test's name, so every run of a given
/// property explores the identical case sequence.
pub fn rng_for_test(name: &str) -> TestRng {
    let mut seed: u64 = 0xC0FF_EE00_D15E_A5E5;
    for byte in name.bytes() {
        seed = seed.rotate_left(8) ^ u64::from(byte);
        seed = seed.wrapping_mul(0x100_0000_01B3);
    }
    TestRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn per_test_rng_is_stable_and_name_sensitive() {
        assert_eq!(
            rng_for_test("alpha").next_u64(),
            rng_for_test("alpha").next_u64()
        );
        assert_ne!(
            rng_for_test("alpha").next_u64(),
            rng_for_test("beta").next_u64()
        );
    }
}
