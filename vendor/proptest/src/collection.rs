//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length
/// falls in `size` (a `usize`, `a..b`, or `a..=b`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = rng_for_test("exact_and_ranged_lengths");
        let fixed = vec(0u8..=9, 5usize);
        assert_eq!(fixed.sample(&mut rng).len(), 5);

        let ranged = vec(-1i8..=1, 2..=4);
        for _ in 0..50 {
            let v = ranged.sample(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|c| (-1..=1).contains(c)));
        }

        let half_open = vec(0u8..2, 1..3);
        for _ in 0..50 {
            assert!((1..=2).contains(&half_open.sample(&mut rng).len()));
        }
    }
}
