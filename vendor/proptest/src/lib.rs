//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace's property
//! suites use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`arbitrary::any`],
//! [`collection::vec`], `prop_oneof!`, and the [`proptest!`] test macro
//! with `#![proptest_config(..)]` support.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case panics with the values baked into
//!   the assertion message; it is not minimized.
//! * **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so failures reproduce exactly across runs and
//!   machines (the real crate records failures in a regressions file
//!   instead).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests.
///
/// Supports the standard forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn prop(a in 0usize..10, (b, c) in some_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&$strategy, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1i8..=1, z in -0.5f64..0.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1..=1).contains(&y));
            prop_assert!((-0.5..0.5).contains(&z));
        }

        #[test]
        fn flat_map_threads_values((n, xs) in (1usize..5).prop_flat_map(|n| {
            (Just(n), crate::collection::vec(0u64..100, n))
        })) {
            prop_assert_eq!(xs.len(), n);
        }

        #[test]
        fn oneof_hits_every_arm(x in prop_oneof![Just(1u32), Just(2u32), 10u32..20]) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x));
        }

        #[test]
        fn any_u64_varies(a in any::<u64>(), b in any::<u64>()) {
            // Astronomically unlikely to collide under a working sampler.
            let _ = (a, b);
        }
    }

    #[test]
    fn generated_tests_run() {
        ranges_stay_in_bounds();
        flat_map_threads_values();
        oneof_hits_every_arm();
        any_u64_varies();
    }

    #[test]
    fn config_cases_respected() {
        let config = ProptestConfig::with_cases(7);
        assert_eq!(config.cases, 7);
        assert!(ProptestConfig::default().cases > 0);
    }
}
