//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value uniformly over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` — a pragmatic domain for property inputs
    /// (the real crate samples wider but tests here only need variety).
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn any_u64_spreads() {
        let mut rng = rng_for_test("any_u64_spreads");
        let strategy = any::<u64>();
        let a = strategy.sample(&mut rng);
        let b = strategy.sample(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn any_bool_hits_both() {
        let mut rng = rng_for_test("any_bool_hits_both");
        let strategy = any::<bool>();
        let draws: Vec<bool> = (0..100).map(|_| strategy.sample(&mut rng)).collect();
        assert!(draws.contains(&true) && draws.contains(&false));
    }
}
