//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree / shrinking: a strategy is
/// just a sampler driven by the deterministic test RNG.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Generates an intermediate value, then samples the strategy `f`
    /// builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.sample(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let intermediate = self.source.sample(rng);
        (self.f)(intermediate).sample(rng)
    }
}

/// Uniform choice among boxed strategies (the `prop_oneof!` backend).
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Builds a choice over `options`; panics if empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let index = rng.gen_range(0..self.options.len());
        self.options[index].sample(rng)
    }
}

macro_rules! impl_strategy_for_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A);
impl_strategy_for_tuple!(A, B);
impl_strategy_for_tuple!(A, B, C);
impl_strategy_for_tuple!(A, B, C, D);
impl_strategy_for_tuple!(A, B, C, D, E);
impl_strategy_for_tuple!(A, B, C, D, E, G);

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = rng_for_test("map_and_flat_map_compose");
        let doubled = (1usize..5).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.sample(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
        let pair = (1usize..4).prop_flat_map(|n| (Just(n), 0usize..10));
        for _ in 0..100 {
            let (n, x) = pair.sample(&mut rng);
            assert!((1..4).contains(&n) && x < 10);
        }
    }

    #[test]
    fn oneof_uniformish() {
        let mut rng = rng_for_test("oneof_uniformish");
        let strategy = OneOf::new(vec![Just(0u8).boxed(), Just(1u8).boxed()]);
        let mut counts = [0usize; 2];
        for _ in 0..1000 {
            counts[strategy.sample(&mut rng) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 300), "counts {counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one arm")]
    fn empty_oneof_panics() {
        let _ = OneOf::<u8>::new(vec![]);
    }
}
