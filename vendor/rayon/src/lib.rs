//! Offline stand-in for the `rayon` crate.
//!
//! Implements the `into_par_iter().map(..).collect()/.sum()` shape the
//! workspace's trial runners and the serving engine's batch planner use,
//! with real data parallelism on a **persistent worker-per-core thread
//! pool**:
//!
//! * Workers are spawned **once** (lazily, at the first parallel call)
//!   and serve every subsequent parallel region — no per-call thread
//!   spawns, so worker thread-locals (e.g. `hdc`'s scan scratch) stay
//!   warm across batches instead of being rebuilt per region.
//! * The pool size honors **`RAYON_NUM_THREADS`** (like real rayon),
//!   falling back to [`std::thread::available_parallelism`]. A pool of
//!   one thread never spawns anything: every region runs inline on the
//!   caller.
//! * The submitting caller **participates** in its own region (it is one
//!   of the pool's compute lanes), which both uses the core it already
//!   owns and guarantees progress even when every worker is busy with
//!   another region.
//! * **Nested parallelism is suppressed**: a parallel call issued from
//!   inside a pool region runs inline on that worker instead of
//!   re-forking, so an already-saturated pool can never oversubscribe
//!   itself (the batch-level parallelism wins; see
//!   [`in_parallel_region`]).
//!
//! Work items are claimed from a shared atomic counter and results are
//! written back by item index, so `collect()` preserves input order
//! exactly like rayon's indexed parallel iterators — parallel scheduling
//! can never reorder (or otherwise perturb) deterministic outputs, and a
//! pool of any size produces bit-identical results to a sequential loop.

#![deny(unsafe_code)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::panic::resume_unwind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

thread_local! {
    /// `true` while this thread is executing pool work: always for pool
    /// workers, and for submitting callers while they participate in
    /// their own region. Parallel calls made while the flag is set run
    /// inline (nested-parallelism suppression).
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
}

/// `true` when the current thread is already executing inside a parallel
/// region (a pool worker, or a caller participating in its own region).
///
/// Library code can use this as a parallelism gate: when it returns
/// `true`, the pool is already saturated at an outer level, so an inner
/// scan should take its sequential path instead of forking again.
pub fn in_parallel_region() -> bool {
    IN_REGION.with(Cell::get)
}

/// The number of compute lanes parallel regions currently run on (the
/// submitting caller counts as one). Initializes the global pool on first
/// use: `RAYON_NUM_THREADS` if set and positive, otherwise
/// [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    pool().threads
}

/// Replaces the global pool with one of exactly `threads` compute lanes
/// (the submitting caller counts as one; `threads == 1` spawns no worker
/// threads at all and runs every region inline).
///
/// This is the benchmarking/testing hook behind the cores × batch scaling
/// grid: one process can measure `threads ∈ {1, 2, 4, …}` without
/// re-execing under different `RAYON_NUM_THREADS` values. Outstanding
/// regions on the old pool finish on their own workers (the old pool
/// drains before its workers exit); callers that want a quiet swap should
/// not have regions in flight.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn configure_pool(threads: usize) {
    assert!(threads >= 1, "pool must keep at least one compute lane");
    let mut slot = POOL.lock().expect("pool registry");
    if let Some(old) = slot.take() {
        old.shared.shutdown.store(true, Ordering::Release);
        old.shared.work.notify_all();
    }
    *slot = Some(Arc::new(Pool::new(threads)));
}

/// The pool size the environment asks for: `RAYON_NUM_THREADS` if set and
/// positive, otherwise [`std::thread::available_parallelism`].
pub fn env_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|raw| raw.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// The lazily initialized global pool.
static POOL: Mutex<Option<Arc<Pool>>> = Mutex::new(None);

fn pool() -> Arc<Pool> {
    let mut slot = POOL.lock().expect("pool registry");
    if slot.is_none() {
        *slot = Some(Arc::new(Pool::new(env_num_threads())));
    }
    Arc::clone(slot.as_ref().expect("just installed"))
}

/// A persistent worker pool: `threads - 1` parked OS threads plus the
/// submitting caller, fed from one shared region queue.
struct Pool {
    shared: Arc<Shared>,
    threads: usize,
}

struct Shared {
    /// Pending region handles. A region enqueues one handle per worker it
    /// can use; a worker that pops a handle helps with that region until
    /// its items run out.
    queue: Mutex<VecDeque<Arc<job::Job>>>,
    work: Condvar,
    /// Set by [`configure_pool`] when this pool is replaced: workers
    /// drain the queue, then exit instead of parking.
    shutdown: AtomicBool,
}

impl Pool {
    fn new(threads: usize) -> Pool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        // The caller participates in every region it submits, so a pool
        // of `threads` lanes needs only `threads - 1` OS workers.
        for index in 1..threads {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("rayon-worker-{index}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
        }
        Pool { shared, threads }
    }
}

fn worker_loop(shared: &Shared) {
    IN_REGION.with(|flag| flag.set(true));
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue");
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.work.wait(queue).expect("pool queue");
            }
        };
        match job {
            Some(job) => job.execute(),
            None => return,
        }
    }
}

mod job {
    //! The lifetime-erased unit of pool work.
    //!
    //! A [`Job`] hands a **borrowed** task closure to 'static worker
    //! threads, which needs a raw pointer and therefore `unsafe`. The
    //! argument for soundness is short and local:
    //!
    //! * The closure pointer is dereferenced **only after a successful
    //!   item claim** (`next.fetch_add() < n` in [`Job::execute`]).
    //! * The submitting caller blocks in [`Job::wait`] until `completed ==
    //!   n`, i.e. until every successfully claimed item has **finished
    //!   running** — so the closure (on the caller's stack) outlives every
    //!   dereference.
    //! * After `wait` returns, stale queue entries for the job can still
    //!   be popped by workers, but their claims fail (`next` is already
    //!   `>= n`) and they touch only the job's atomics, which stay alive
    //!   through the `Arc` — never the closure pointer. The submitting
    //!   caller additionally drains its own stale entries before
    //!   returning ([`super::run_region`]).
    //! * A panicking task is caught (`catch_unwind`), counted as
    //!   completed so the caller always wakes, and its payload is
    //!   re-thrown on the **caller** thread — a worker never unwinds
    //!   through the pool loop.
    #![allow(unsafe_code)]

    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    /// Type-erased pointer to the caller's task closure.
    struct RawTask(*const (dyn Fn(usize) + Sync));

    // SAFETY: the pointee is `Sync` (calling it through `&` from any
    // thread is safe), and the module invariants above guarantee the
    // pointer is only dereferenced while the caller keeps the closure
    // alive.
    #[allow(unsafe_code)]
    unsafe impl Send for RawTask {}
    #[allow(unsafe_code)]
    unsafe impl Sync for RawTask {}

    /// One parallel region: `n` items claimed from a shared counter.
    pub(crate) struct Job {
        task: RawTask,
        n: usize,
        next: AtomicUsize,
        completed: AtomicUsize,
        state: Mutex<State>,
        done: Condvar,
    }

    struct State {
        done: bool,
        panic: Option<Box<dyn Any + Send>>,
    }

    impl Job {
        /// Wraps `task` for `n` items. The returned job holds a raw
        /// pointer to `task`; the caller must keep `task` alive until
        /// [`Job::wait`] returns (see the module safety argument).
        pub(crate) fn new(task: &(dyn Fn(usize) + Sync), n: usize) -> Arc<Job> {
            // SAFETY: pure lifetime erasure; the pointer is only ever
            // dereferenced under the module invariants documented above,
            // which keep the pointee alive across every dereference.
            let task: *const (dyn Fn(usize) + Sync) =
                unsafe { std::mem::transmute(task as *const (dyn Fn(usize) + Sync)) };
            Arc::new(Job {
                task: RawTask(task),
                n,
                next: AtomicUsize::new(0),
                completed: AtomicUsize::new(0),
                state: Mutex::new(State {
                    done: n == 0,
                    panic: None,
                }),
                done: Condvar::new(),
            })
        }

        /// Claims and runs items until the job has none left. Safe to
        /// call on an already-drained job (the claim fails immediately).
        pub(crate) fn execute(&self) {
            loop {
                let index = self.next.fetch_add(1, Ordering::Relaxed);
                if index >= self.n {
                    return;
                }
                // SAFETY: `index < n`, so the submitting caller is still
                // blocked in `wait` (it cannot observe `completed == n`
                // until this item finishes below), keeping the closure
                // alive for the duration of this call.
                let task = unsafe { &*self.task.0 };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(index))) {
                    let mut state = self.state.lock().expect("job state");
                    if state.panic.is_none() {
                        state.panic = Some(payload);
                    }
                }
                if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                    let mut state = self.state.lock().expect("job state");
                    state.done = true;
                    self.done.notify_all();
                }
            }
        }

        /// Blocks until every item has finished, returning the first
        /// captured panic payload (to be re-thrown on the caller).
        pub(crate) fn wait(&self) -> Option<Box<dyn Any + Send>> {
            let mut state = self.state.lock().expect("job state");
            while !state.done {
                state = self.done.wait(state).expect("job state");
            }
            state.panic.take()
        }
    }
}

/// Runs `task(0..n)` across the pool: the caller participates, up to
/// `threads - 1` workers help, and the region completes before returning.
/// Panics inside `task` are re-thrown here, on the calling thread.
fn run_region<F: Fn(usize) + Sync>(pool: &Pool, n: usize, task: F) {
    if n == 0 {
        return;
    }
    let job = job::Job::new(&task, n);
    // One queue entry per worker that could usefully help; the caller
    // claims items itself, so a 2-item region needs at most 1 helper.
    let helpers = (pool.threads - 1).min(n - 1);
    if helpers > 0 {
        let mut queue = pool.shared.queue.lock().expect("pool queue");
        for _ in 0..helpers {
            queue.push_back(Arc::clone(&job));
        }
        drop(queue);
        pool.shared.work.notify_all();
    }
    // Participate: the caller is one of the region's compute lanes. Mark
    // the thread as in-region so nested parallel calls run inline.
    let was_in_region = IN_REGION.with(|flag| flag.replace(true));
    job.execute();
    IN_REGION.with(|flag| flag.set(was_in_region));
    let panic = job.wait();
    // Drop queue entries no worker got to before the region drained, so
    // nothing can observe the job after the task closure is gone.
    {
        let mut queue = pool.shared.queue.lock().expect("pool queue");
        queue.retain(|pending| !Arc::ptr_eq(pending, &job));
    }
    if let Some(payload) = panic {
        resume_unwind(payload);
    }
}

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `&collection` counterpart of [`IntoParallelIterator`].
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send + 'a;

    /// Borrowing parallel iterator over `self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

macro_rules! impl_into_par_iter_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_into_par_iter_range!(u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

/// A materialized parallel iterator (work list awaiting an operation).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each element through `f` in parallel.
    pub fn map<U: Send, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Number of work items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the work list is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel iterator; consumed by [`ParMap::collect`] or
/// [`ParMap::sum`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map in parallel and collects results in input order.
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(T) -> U + Sync,
        U: Send,
        C: FromIterator<U>,
    {
        run_ordered(self.items, &self.f).into_iter().collect()
    }

    /// Runs the map in parallel and sums the results.
    pub fn sum<U, S>(self) -> S
    where
        F: Fn(T) -> U + Sync,
        U: Send,
        S: std::iter::Sum<U>,
    {
        run_ordered(self.items, &self.f).into_iter().sum()
    }
}

/// Executes `f` over `items` on the persistent pool, returning results in
/// the items' original order. Runs inline — no pool traffic at all — for
/// trivial regions, single-lane pools, and calls issued from inside an
/// already-running region (nested-parallelism suppression).
fn run_ordered<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    let n = items.len();
    if n <= 1 || in_parallel_region() {
        return items.into_iter().map(f).collect();
    }
    let pool = pool();
    if pool.threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items
        .into_iter()
        .map(|item| Mutex::new(Some(item)))
        .collect();
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    run_region(&pool, n, |index| {
        let item = slots[index]
            .lock()
            .expect("item slot")
            .take()
            .expect("each index claimed exactly once");
        let value = f(item);
        *results[index].lock().expect("result slot") = Some(value);
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("every index computed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::Mutex;

    /// Serializes tests that resize the global pool.
    static POOL_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn collect_preserves_order() {
        let out: Vec<u64> = (0..1000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_sequential() {
        let total: usize = (0..10_000usize).into_par_iter().map(|x| x % 7).sum();
        assert_eq!(total, (0..10_000usize).map(|x| x % 7).sum::<usize>());
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        assert_eq!(data.len(), 4);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = (0..0u64).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn pool_resize_keeps_results_bit_identical() {
        let _guard = POOL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let reference: Vec<u64> = (0..500u64).map(|x| x.wrapping_mul(x) ^ 7).collect();
        let initial = super::current_num_threads();
        for threads in [1usize, 2, 4, 7] {
            super::configure_pool(threads);
            assert_eq!(super::current_num_threads(), threads);
            let out: Vec<u64> = (0..500u64)
                .into_par_iter()
                .map(|x| x.wrapping_mul(x) ^ 7)
                .collect();
            assert_eq!(out, reference, "threads {threads}");
        }
        super::configure_pool(initial);
    }

    #[test]
    fn nested_regions_run_inline_and_stay_ordered() {
        let _guard = POOL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let initial = super::current_num_threads();
        super::configure_pool(3);
        let out: Vec<Vec<usize>> = (0..8usize)
            .into_par_iter()
            .map(|outer| {
                assert!(super::in_parallel_region());
                // Nested call: must run inline, preserving order.
                (0..5usize)
                    .into_par_iter()
                    .map(|inner| outer * 10 + inner)
                    .collect()
            })
            .collect();
        for (outer, inner) in out.iter().enumerate() {
            let expected: Vec<usize> = (0..5).map(|i| outer * 10 + i).collect();
            assert_eq!(inner, &expected);
        }
        super::configure_pool(initial);
    }

    #[test]
    fn region_panic_propagates_to_caller() {
        let _guard = POOL_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let initial = super::current_num_threads();
        super::configure_pool(2);
        let result = std::panic::catch_unwind(|| {
            let _: Vec<u32> = (0..64u32)
                .into_par_iter()
                .map(|x| if x == 33 { panic!("boom {x}") } else { x })
                .collect();
        });
        assert!(result.is_err(), "panic must reach the submitting caller");
        // The pool survives the panic and keeps serving.
        let out: Vec<u32> = (0..16u32).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, (1..17u32).collect::<Vec<_>>());
        super::configure_pool(initial);
    }

    #[test]
    fn caller_thread_is_not_marked_in_region_after_a_call() {
        let _: Vec<u32> = (0..8u32).into_par_iter().map(|x| x).collect();
        assert!(!super::in_parallel_region());
    }
}
