//! Offline stand-in for the `rayon` crate.
//!
//! Implements the `into_par_iter().map(..).collect()/.sum()` shape the
//! workspace's trial runners use, with real data parallelism via
//! `std::thread::scope` and a shared work queue. Results are written back
//! by item index, so `collect()` preserves input order exactly like rayon's
//! indexed parallel iterators — parallel scheduling can never reorder
//! (or otherwise perturb) deterministic outputs.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::Mutex;

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Types convertible into a parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// `&collection` counterpart of [`IntoParallelIterator`].
pub trait IntoParallelRefIterator<'a> {
    /// The element type (a reference).
    type Item: Send + 'a;

    /// Borrowing parallel iterator over `self`.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

macro_rules! impl_into_par_iter_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            fn into_par_iter(self) -> ParIter<$t> {
                ParIter { items: self.collect() }
            }
        }
    )*};
}
impl_into_par_iter_range!(u32, u64, usize, i32, i64);

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        self.as_slice().par_iter()
    }
}

/// A materialized parallel iterator (work list awaiting an operation).
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps each element through `f` in parallel.
    pub fn map<U: Send, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Number of work items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the work list is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A mapped parallel iterator; consumed by [`ParMap::collect`] or
/// [`ParMap::sum`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the map in parallel and collects results in input order.
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(T) -> U + Sync,
        U: Send,
        C: FromIterator<U>,
    {
        run_ordered(self.items, &self.f).into_iter().collect()
    }

    /// Runs the map in parallel and sums the results.
    pub fn sum<U, S>(self) -> S
    where
        F: Fn(T) -> U + Sync,
        U: Send,
        S: std::iter::Sum<U>,
    {
        run_ordered(self.items, &self.f).into_iter().sum()
    }
}

/// Executes `f` over `items` on a scoped thread pool, returning results in
/// the items' original order.
fn run_ordered<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: &F) -> Vec<U> {
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let next = queue.lock().expect("queue lock").pop_front();
                match next {
                    Some((index, item)) => {
                        let value = f(item);
                        *results[index].lock().expect("result lock") = Some(value);
                    }
                    None => break,
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result lock")
                .expect("every index computed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let out: Vec<u64> = (0..1000u64).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_sequential() {
        let total: usize = (0..10_000usize).into_par_iter().map(|x| x % 7).sum();
        assert_eq!(total, (0..10_000usize).map(|x| x % 7).sum::<usize>());
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u64, 2, 3, 4];
        let doubled: Vec<u64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        assert_eq!(data.len(), 4);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = (0..0u64).into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
