//! # factorhd — facade crate for the FactorHD reproduction
//!
//! This crate re-exports the whole public API of the workspace so that
//! downstream users (and the `examples/` binaries) can depend on a single
//! crate:
//!
//! * [`hdc`] — the hyperdimensional-computing substrate (hypervectors,
//!   operators, codebooks).
//! * [`core`] — the paper's contribution: the FactorHD taxonomy encoder and
//!   factorization algorithm.
//! * [`engine`] — the serving layer: typed operations (`FactorizeRep1/2/3`,
//!   `PartialDecode`, `MembershipProbe`, `EncodeScene`) planned into
//!   batches over named, hot-swappable models (`ModelRegistry`), with
//!   memoized label-elimination masks and reconstructions and the
//!   persisted `.fhd` model-artifact format.
//! * [`learn`] — the online learning subsystem: per-class prototype
//!   accumulators ([`learn::PrototypeModel`]), misclassification-driven
//!   retraining, and immutable ternary/packed snapshots
//!   ([`learn::PrototypeSnapshot`]) served through the engine's
//!   `Train`/`Retrain`/`Classify` ops (docs/LEARNING.md).
//! * [`serve`] — the network front end: a threaded TCP server speaking a
//!   length-prefixed, checksummed binary protocol over the typed op API,
//!   with a deadline-or-full adaptive batcher coalescing requests from
//!   many connections into engine batches (docs/SERVING.md, "Network
//!   front end").
//! * [`baselines`] — the comparison systems from the paper's evaluation
//!   (resonator network, IMC stochastic factorizer, class-instance model).
//! * [`neural`] — the simulated ResNet-18 front-end, synthetic RAVEN /
//!   CIFAR datasets, and the end-to-end neuro-symbolic pipeline.
//!
//! # Quickstart
//!
//! ```
//! use factorhd::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A taxonomy with 3 classes, each with 8 top-level items.
//! let taxonomy = TaxonomyBuilder::new(2048)
//!     .class("animal", &[8])
//!     .class("color", &[8])
//!     .class("size", &[8])
//!     .build()?;
//!
//! // Encode one object: animal #3, color #1, size #5.
//! let object = ObjectSpec::new(vec![
//!     Some(ItemPath::new(vec![3])),
//!     Some(ItemPath::new(vec![1])),
//!     Some(ItemPath::new(vec![5])),
//! ]);
//! let encoder = Encoder::new(&taxonomy);
//! let scene = encoder.encode_scene(&Scene::single(object.clone()))?;
//!
//! // Factorize it back.
//! let factorizer = Factorizer::new(&taxonomy, FactorizeConfig::default());
//! let decoded = factorizer.factorize_single(&scene)?;
//! assert_eq!(decoded.object(), &object);
//! # Ok(())
//! # }
//! ```

pub use factorhd_baselines as baselines;
pub use factorhd_core as core;
pub use factorhd_engine as engine;
/// The engine telemetry layer (counters, histograms, stage timing);
/// see docs/OBSERVABILITY.md.
pub use factorhd_engine::metrics;
pub use factorhd_learn as learn;
pub use factorhd_neural as neural;
pub use factorhd_serve as serve;
pub use hdc;

/// One-stop import for the types used in typical FactorHD workflows.
pub mod prelude {
    pub use factorhd_core::{
        ClassDecode, DecodedObject, DecodedScene, Encoder, FactorHdError, FactorizeConfig,
        Factorizer, ItemPath, ObjectSpec, Scene, SceneQuery, Taxonomy, TaxonomyBuilder,
        ThresholdPolicy,
    };
    pub use factorhd_engine::{
        AnyOp, AnyOutput, Classify, EncodeScene, EngineConfig, EngineError, FactorEngine,
        FactorizeRep1, FactorizeRep2, FactorizeRep3, LearnConfig, MembershipProbe, MetricsSnapshot,
        ModelHandle, ModelId, ModelInfo, ModelRegistry, ModelState, Op, OpKind, PartialDecode,
        Retrain, Stage, StageTimer, Train,
    };
    pub use factorhd_serve::{
        BatcherConfig, Client, ServeError, Server, ServerConfig, ServingStats,
    };
    pub use hdc::prelude::*;
}
