//! Prints the scan-kernel dispatch state of this machine: the CPU
//! features the dispatcher detected, the kernel it selected (or was
//! forced to via `FACTORHD_KERNEL`), and a three-line micro-timing of
//! the selected kernel against the portable Harley–Seal fallback —
//! measured with the same `factorhd_bench::measure_kernel` harness that
//! produces `BENCH_kernels.json`, so the numbers agree.
//!
//! ```text
//! cargo run --release --example kernel_info
//! FACTORHD_KERNEL=harley-seal cargo run --release --example kernel_info
//! ```

use factorhd::hdc::kernels;

fn main() {
    let features = kernels::cpu_features();
    let selected = kernels::selected_kernel();
    println!(
        "detected cpu features : {}",
        if features.is_empty() {
            "(none)"
        } else {
            &features
        }
    );
    println!(
        "available kernels     : {}",
        kernels::available_kernels()
            .iter()
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "selected kernel       : {} (override with FACTORHD_KERNEL=<name|auto>)\n",
        selected.name()
    );

    // Three-line micro-timing: the selected kernel vs the portable
    // ladder at one hypervector-plane size (D = 32768 → 512 words),
    // through the shared bench harness.
    let words = 512;
    let reps = (1usize << 24) / words;
    let (selected_rate, _) = factorhd_bench::measure_kernel(selected, words, reps);
    let (ladder_rate, _) = factorhd_bench::measure_kernel(&kernels::HARLEY_SEAL, words, reps);
    println!("micro-timing ({words} words per scan, hamming_words):");
    println!("  {:<12} {:>10.3e} words/s", selected.name(), selected_rate);
    println!(
        "  {:<12} {:>10.3e} words/s  (selected kernel is {:.2}x faster)",
        "harley-seal",
        ladder_rate,
        selected_rate / ladder_rate
    );
}
