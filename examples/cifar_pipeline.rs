//! Neuro-symbolic CIFAR classification: a simulated ResNet-18 extracts
//! features, a random projection encodes them into hypervectors, and
//! FactorHD factorizes the class out — including inference on SUPERPOSED
//! image bundles (several images classified from one vector).
//!
//! ```sh
//! cargo run --release --example cifar_pipeline
//! ```

use factorhd::neural::datasets::cifar;
use factorhd::neural::{CifarPipeline, CifarPipelineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced-size CIFAR-10 pipeline so the example runs in seconds.
    let pipeline = CifarPipeline::new(CifarPipelineConfig {
        dim: 2048,
        samples_per_class: 24,
        ..CifarPipelineConfig::cifar10()
    })?;
    println!(
        "trained CIFAR-10 pipeline: query↔prototype alignment {:.3}",
        pipeline.alignment()
    );

    // Classify a few fresh "images".
    let mut rng = hdc::rng_from_seed(314);
    println!("\nsample classifications:");
    for class in [0usize, 3, 7] {
        let hv = pipeline.encode_image(class, &mut rng)?;
        let predicted = pipeline.classify(&hv)?;
        println!(
            "  true {:<10} -> predicted {:<10} {}",
            cifar::CIFAR10_CLASSES[class],
            cifar::CIFAR10_CLASSES[predicted],
            if predicted == class { "✓" } else { "✗" }
        );
    }

    let accuracy = pipeline.evaluate(300, 1)?;
    let frontend = pipeline.features().reference_accuracy(100, 2);
    println!("\ntest accuracy: {accuracy:.3} (neural front-end reference {frontend:.3})");

    // Superposed inference: classify two images from ONE bundled vector.
    let superposed = pipeline.evaluate_superposed(2, 60, 3)?;
    println!("superposed (2 images/vector) set accuracy: {superposed:.3}");

    // CIFAR-100: factorize coarse OR fine labels from the same encoding.
    println!("\nCIFAR-100 (coarse ⊙ fine encoding, partial factorization):");
    let pipeline100 = CifarPipeline::new(CifarPipelineConfig {
        dim: 2048,
        samples_per_class: 16,
        ..CifarPipelineConfig::cifar100()
    })?;
    let fine_class = 42; // "lion" (large carnivores)
    let mut fine_hits = 0;
    let mut coarse_hits = 0;
    let trials = 10;
    for _ in 0..trials {
        let hv = pipeline100.encode_image(fine_class, &mut rng)?;
        if pipeline100.classify(&hv)? == fine_class {
            fine_hits += 1;
        }
        if pipeline100.classify_coarse(&hv)? == cifar::coarse_of(fine_class) {
            coarse_hits += 1;
        }
    }
    println!(
        "  {trials} images of `{}` ({}): fine correct {fine_hits}/{trials}, \
         coarse correct {coarse_hits}/{trials}",
        cifar::fine_name(fine_class),
        cifar::CIFAR100_COARSE[cifar::coarse_of(fine_class)],
    );
    Ok(())
}
