//! Multi-object scenes (Rep 3): several objects with class–subclass
//! hierarchies bundled into ONE hypervector and factorized back without
//! knowing how many objects it holds — including two *identical* objects
//! ("the problem of 2").
//!
//! ```sh
//! cargo run --release --example taxonomy_scene
//! ```

use factorhd::prelude::*;

const ANIMALS: [&str; 8] = [
    "dog", "cat", "horse", "eagle", "salmon", "beetle", "snake", "frog",
];
const BREEDS: [&str; 4] = ["common", "dwarf", "giant", "spotted"];
const COLORS: [&str; 6] = ["brown", "black", "white", "red", "green", "blue"];

fn describe(object: &ObjectSpec) -> String {
    let animal = object.assignment(0).expect("present");
    let color = object.assignment(1).expect("present");
    format!(
        "{} {} {}",
        COLORS[color.indices()[0] as usize],
        BREEDS[animal.indices()[1] as usize],
        ANIMALS[animal.indices()[0] as usize],
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let taxonomy = TaxonomyBuilder::new(8192)
        .seed(7)
        .class("animal", &[8, 4]) // 8 animals × 4 breeds
        .class("color", &[6])
        .build()?;
    let encoder = Encoder::new(&taxonomy);

    // Three objects — note the LAST TWO ARE IDENTICAL (problem of 2).
    let brown_spotted_dog = ObjectSpec::new(vec![
        Some(ItemPath::new(vec![0, 3])),
        Some(ItemPath::top(0)),
    ]);
    let white_dwarf_cat = ObjectSpec::new(vec![
        Some(ItemPath::new(vec![1, 1])),
        Some(ItemPath::top(2)),
    ]);
    let scene = Scene::new(vec![
        brown_spotted_dog,
        white_dwarf_cat.clone(),
        white_dwarf_cat,
    ]);
    println!("scene:");
    for object in scene.objects() {
        println!("  - {}", describe(object));
    }

    let hv = encoder.encode_scene(&scene)?;
    println!(
        "\nbundled into one Z^{} vector (component range ±{})",
        hv.dim(),
        scene.len()
    );

    // Factorize with NO prior knowledge of the object count.
    let factorizer = Factorizer::new(
        &taxonomy,
        FactorizeConfig {
            threshold: ThresholdPolicy::Analytic { n_objects: 3 },
            ..FactorizeConfig::default()
        },
    );
    let decoded = factorizer.factorize_multi(&hv)?;
    println!("\nfactorized {} objects:", decoded.objects.len());
    for object in &decoded.objects {
        println!(
            "  - {} (confidence {:.2})",
            describe(object.object()),
            object.confidence()
        );
    }
    println!(
        "residual norm after exclusion: {:.1} (≈0 means fully explained)",
        decoded.residual_norm
    );
    assert!(decoded.to_scene().same_multiset(&scene));
    println!("multiset match, duplicates included ✓");
    Ok(())
}
