//! Partial factorization: decode ONLY the class you care about, skipping
//! the rest — the capability the paper contrasts with class–class models'
//! mandatory full factorization ("even when only a subset of subclasses
//! are of interest, current HDC models still require complete
//! factorization").
//!
//! ```sh
//! cargo run --release --example partial_query
//! ```

use factorhd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A taxonomy with several chunky codebooks, so full factorization
    // costs real work. (The per-class signal shrinks as 0.5^F, so more
    // classes need higher dimensions — see the Fig. 3(c) experiment.)
    let taxonomy = TaxonomyBuilder::new(8192)
        .seed(11)
        .class("category", &[256, 10])
        .class("material", &[128])
        .class("color", &[64])
        .class("owner", &[128])
        .build()?;
    let encoder = Encoder::new(&taxonomy);
    let factorizer = Factorizer::new(&taxonomy, FactorizeConfig::default());

    let mut rng = hdc::rng_from_seed(5);
    let object = taxonomy.sample_object(&mut rng);
    let hv = encoder.encode_scene(&Scene::single(object.clone()))?;

    // Full factorization, with operation accounting.
    let (decoded, full_stats) = factorizer.factorize_single_traced(&hv)?;
    assert_eq!(decoded.object(), &object);
    println!(
        "full factorization:    {:>6} similarity checks, {} unbinds",
        full_stats.similarity_checks, full_stats.unbind_ops
    );

    // Partial: we only want the color (class 2).
    let color_only = factorizer.factorize_classes(&hv, &[2])?;
    println!(
        "partial (color only):  answer = item {} (sim {:.3})",
        color_only[0].path.as_ref().expect("present"),
        color_only[0].sim
    );
    assert_eq!(
        color_only[0].path.as_ref(),
        object.assignment(2),
        "partial decode matches ground truth"
    );

    // Count the partial cost explicitly.
    let partial_checks = 64 + 1; // one codebook scan + the NULL probe
    println!(
        "partial cost ≈ {partial_checks} similarity checks — {}x cheaper",
        full_stats.similarity_checks / partial_checks
    );

    // Cheaper still: a membership query answers "does the scene contain an
    // object with THIS category and THIS owner?" with a single probe.
    let category = object.assignment(0).expect("present").clone();
    let owner = object.assignment(3).expect("present").clone();
    let query = SceneQuery::new(&taxonomy)
        .with_item(0, category)?
        .with_item(3, owner)?;
    let answer = query.evaluate(&hv)?;
    println!(
        "membership query (1 similarity check): present = {} (evidence {:.2})",
        answer.present, answer.evidence
    );
    assert!(answer.present);

    // And the same query with a wrong owner is rejected.
    let wrong_owner = (object.assignment(3).expect("present").leaf() + 1) % 128;
    let wrong = SceneQuery::new(&taxonomy)
        .with_item(0, object.assignment(0).expect("present").clone())?
        .with_item(3, ItemPath::top(wrong_owner))?;
    assert!(!wrong.evaluate(&hv)?.present);
    println!("wrong-owner query correctly rejected ✓");
    Ok(())
}
