//! The network front end, end to end on loopback: start a [`Server`]
//! over a two-model registry, run typed ops through a [`Client`] —
//! one-at-a-time and as a pipelined burst the adaptive batcher
//! coalesces — hot-swap a model under live traffic, read the serving
//! telemetry over the wire, and shut down cleanly.
//!
//! ```sh
//! cargo run --release --example serve_network
//! ```

use factorhd::prelude::*;
use std::sync::Arc;

fn zoo_taxonomy(seed: u64) -> Result<Taxonomy, FactorHdError> {
    TaxonomyBuilder::new(2048)
        .seed(seed)
        .class("animal", &[12, 4])
        .class("color", &[8])
        .build()
}

/// `n` single-object Rep-2 factorizations against `taxonomy`.
fn rep2_ops(taxonomy: &Taxonomy, n: usize, seed: u64) -> Result<Vec<AnyOp>, FactorHdError> {
    let encoder = Encoder::new(taxonomy);
    let mut rng = hdc::rng_from_seed(seed);
    (0..n)
        .map(|_| {
            let object = taxonomy.sample_object(&mut rng);
            Ok(AnyOp::Rep2(FactorizeRep2 {
                scene: encoder.encode_scene(&Scene::single(object))?,
            }))
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Two models behind one registry, served on an OS-picked
    //    loopback port.
    let registry = Arc::new(ModelRegistry::new());
    registry.install(
        "zoo",
        ModelState::new(zoo_taxonomy(7)?, EngineConfig::default())?,
    );
    registry.install(
        "aquarium",
        ModelState::new(zoo_taxonomy(8)?, EngineConfig::default())?,
    );
    let server = Server::start(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig::default(),
    )?;
    println!("serving {:?} on {}", registry.ids(), server.local_addr());

    // 2. A client runs ops one at a time — each one a full wire round
    //    trip through the batcher.
    let mut client = Client::connect(server.local_addr())?;
    client.ping()?;
    let zoo = registry.get("zoo")?;
    let ops = rep2_ops(zoo.state().taxonomy(), 12, 42)?;
    for (i, op) in ops.iter().take(3).enumerate() {
        let output = client.run("zoo", op)?;
        if let AnyOutput::Rep2(decoded) = output {
            println!(
                "op {i}: decoded {} (confidence {:.2})",
                decoded.object(),
                decoded.confidence()
            );
        }
    }

    // 3. The same ops as one pipelined burst: a single write carries
    //    all twelve requests, and the server's adaptive batcher
    //    coalesces them into engine batches.
    let outputs = client.run_pipelined("zoo", &ops)?;
    let ok = outputs.iter().filter(|r| r.is_ok()).count();
    println!("pipelined burst: {ok}/{} ops answered", outputs.len());

    // 4. Hot-swap the zoo model while the connection stays up; the next
    //    ops run against the new generation.
    registry.install(
        "zoo",
        ModelState::new(zoo_taxonomy(9)?, EngineConfig::default())?,
    );
    let swapped_ops = rep2_ops(registry.get("zoo")?.state().taxonomy(), 3, 43)?;
    for op in &swapped_ops {
        client.run("zoo", op)?;
    }
    println!("hot-swapped \"zoo\" under a live connection");

    // 5. Serving telemetry travels over the wire as a typed op.
    let stats = client.stats()?;
    println!(
        "server stats: {} requests, {} batches (mean coalesced {:.1}), e2e p95 {}us",
        stats.requests_received,
        stats.batches_dispatched,
        stats.requests_received as f64 / stats.batches_dispatched.max(1) as f64,
        stats.e2e_latency_ns.p95 / 1_000,
    );

    // 6. Graceful shutdown: every accepted request is answered, every
    //    connection joined.
    drop(client);
    server.shutdown();
    let final_stats = server.stats();
    assert_eq!(
        final_stats.requests_received, final_stats.responses_sent,
        "shutdown must answer everything it accepted"
    );
    println!(
        "clean shutdown: {}/{} responses delivered",
        final_stats.responses_sent, final_stats.requests_received
    );
    Ok(())
}
