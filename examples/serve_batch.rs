//! Batched serving with a persisted model artifact: build a taxonomy,
//! save it as `.fhd`, load it back into a `FactorEngine`, and serve a
//! mixed batch of factorization / membership / encode requests.
//!
//! ```sh
//! cargo run --release --example serve_batch
//! ```

use factorhd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the model: 3 classes, one with a subclass hierarchy.
    let taxonomy = TaxonomyBuilder::new(4096)
        .seed(2025)
        .class("animal", &[16, 4])
        .class("color", &[16])
        .class("size", &[16])
        .build()?;
    let encoder = Encoder::new(&taxonomy);

    // 2. Prepare a mixed request batch before handing the model over.
    let mut rng = hdc::rng_from_seed(7);
    let mut requests = Vec::new();
    let mut expected = Vec::new();
    for i in 0..12 {
        let object = taxonomy.sample_object(&mut rng);
        if i % 4 == 3 {
            let scene = taxonomy.sample_scene(2, true, &mut rng);
            requests.push(Request::FactorizeMulti(encoder.encode_scene(&scene)?));
            expected.push(format!("scene with {} objects", scene.len()));
        } else {
            let hv = encoder.encode_scene(&Scene::single(object.clone()))?;
            requests.push(Request::FactorizeSingle(hv));
            expected.push(object.to_string());
        }
    }

    // 3. Persist the model as a `.fhd` artifact and load it back — the
    //    restored engine serves bit-identically to the in-memory one.
    let engine = FactorEngine::new(taxonomy, EngineConfig::default());
    let path = std::env::temp_dir().join("serve_batch_example.fhd");
    engine.save(&path)?;
    let restored = FactorEngine::load(&path, EngineConfig::default())?;
    println!(
        "saved + loaded model artifact: {} ({} bytes)\n",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // 4. Serve the batch across the worker pool.
    let responses = restored.execute_batch(&requests);
    for (i, (response, expectation)) in responses.into_iter().zip(&expected).enumerate() {
        match response? {
            Response::Single(decoded) => {
                let ok = decoded.object().to_string() == *expectation;
                println!(
                    "req {i:>2}: single  {} (confidence {:.3}){}",
                    decoded.object(),
                    decoded.confidence(),
                    if ok { "" } else { "  [MISMATCH]" }
                );
            }
            Response::Multi(decoded) => {
                println!(
                    "req {i:>2}: multi   {} objects recovered from {expectation} \
                     (residual {:.1})",
                    decoded.objects.len(),
                    decoded.residual_norm
                );
            }
            other => println!("req {i:>2}: {other:?}"),
        }
    }

    // 5. Caches are shared across the whole batch.
    let stats = restored.reconstruction_stats();
    println!(
        "\nreconstruction memo: {} hits / {} misses ({} entries)",
        stats.hits, stats.misses, stats.entries
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
