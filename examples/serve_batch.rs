//! Batched serving with a persisted model artifact: build a taxonomy,
//! save it as `.fhd`, load it back into a `FactorEngine`, and serve a
//! mixed batch of typed ops through the planner.
//!
//! ```sh
//! cargo run --release --example serve_batch
//! ```

use factorhd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the model: 3 classes, one with a subclass hierarchy.
    let taxonomy = TaxonomyBuilder::new(4096)
        .seed(2025)
        .class("animal", &[16, 4])
        .class("color", &[16])
        .class("size", &[16])
        .build()?;
    let encoder = Encoder::new(&taxonomy);

    // 2. Prepare a mixed typed-op batch before handing the model over.
    //    Heterogeneous batches travel as `AnyOp`; the planner groups them
    //    by op kind so same-shape work scans the packed shards
    //    contiguously.
    let mut rng = hdc::rng_from_seed(7);
    let mut ops = Vec::new();
    let mut expected = Vec::new();
    for i in 0..12 {
        let object = taxonomy.sample_object(&mut rng);
        if i % 4 == 3 {
            let scene = taxonomy.sample_scene(2, true, &mut rng);
            ops.push(AnyOp::Rep3(FactorizeRep3 {
                scene: encoder.encode_scene(&scene)?,
            }));
            expected.push(format!("scene with {} objects", scene.len()));
        } else {
            let hv = encoder.encode_scene(&Scene::single(object.clone()))?;
            ops.push(AnyOp::Rep2(FactorizeRep2 { scene: hv }));
            expected.push(object.to_string());
        }
    }

    // 3. Persist the model as a `.fhd` artifact and load it back — the
    //    restored engine serves bit-identically to the in-memory one.
    let engine = FactorEngine::new(taxonomy, EngineConfig::default())?;
    let path = std::env::temp_dir().join("serve_batch_example.fhd");
    engine.save(&path)?;
    let restored = FactorEngine::load(&path, EngineConfig::default())?;
    println!(
        "saved + loaded model artifact: {} ({} bytes)\n",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // 4. Serve the batch across the worker pool.
    let outputs = restored.run_mixed(&ops);
    for (i, (output, expectation)) in outputs.into_iter().zip(&expected).enumerate() {
        match output? {
            AnyOutput::Rep2(decoded) => {
                let ok = decoded.object().to_string() == *expectation;
                println!(
                    "op {i:>2}: single  {} (confidence {:.3}){}",
                    decoded.object(),
                    decoded.confidence(),
                    if ok { "" } else { "  [MISMATCH]" }
                );
            }
            AnyOutput::Rep3(decoded) => {
                println!(
                    "op {i:>2}: multi   {} objects recovered from {expectation} \
                     (residual {:.1})",
                    decoded.objects.len(),
                    decoded.residual_norm
                );
            }
            other => println!("op {i:>2}: {other:?}"),
        }
    }

    // 5. Homogeneous batches keep full typing: `run_batch` returns the
    //    op's own output type, grouped through the shared level-1 scans.
    let mut rng = hdc::rng_from_seed(8);
    let singles: Vec<FactorizeRep2> = (0..4)
        .map(|_| {
            let object = restored.taxonomy().sample_object(&mut rng);
            Ok(FactorizeRep2 {
                scene: Encoder::new(restored.taxonomy()).encode_scene(&Scene::single(object))?,
            })
        })
        .collect::<Result<_, FactorHdError>>()?;
    let decoded = restored.run_batch(&singles);
    println!(
        "\ntyped run_batch: {} DecodedObjects, no enum to destructure",
        decoded.len()
    );

    // 6. Caches are shared across the whole batch.
    let stats = restored.reconstruction_stats();
    println!(
        "reconstruction memo: {} hits / {} misses ({} entries)",
        stats.hits, stats.misses, stats.entries
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
