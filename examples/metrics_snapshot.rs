//! Engine telemetry: serve a mixed batch, then read the zero-allocation
//! metrics tables back as a `MetricsSnapshot` — per-op counters and
//! latency quantiles, batch/chunk-size histograms, per-stage timing,
//! and per-model op counts (docs/OBSERVABILITY.md).
//!
//! ```sh
//! cargo run --release --example metrics_snapshot
//! ```

use factorhd::metrics;
use factorhd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Start from clean tables so the printout reflects only this run
    // (the tables are process-global and cumulative by design).
    metrics::reset();

    // 1. A model and a mixed typed-op batch, as in `serve_batch`.
    let taxonomy = TaxonomyBuilder::new(2048)
        .seed(2025)
        .class("animal", &[16, 4])
        .class("color", &[16])
        .class("size", &[16])
        .build()?;
    let encoder = Encoder::new(&taxonomy);
    let mut rng = hdc::rng_from_seed(7);
    let mut ops = Vec::new();
    for i in 0..48 {
        let object = taxonomy.sample_object(&mut rng);
        match i % 4 {
            3 => {
                let scene = taxonomy.sample_scene(2, true, &mut rng);
                ops.push(AnyOp::Rep3(FactorizeRep3 {
                    scene: encoder.encode_scene(&scene)?,
                }));
            }
            2 => ops.push(AnyOp::Encode(EncodeScene {
                scene: Scene::single(object),
            })),
            _ => ops.push(AnyOp::Rep2(FactorizeRep2 {
                scene: encoder.encode_scene(&Scene::single(object))?,
            })),
        }
    }

    // 2. Serve the batch twice: the cold pass fills the caches, the warm
    //    pass shows steady-state latencies.
    let engine = FactorEngine::new(taxonomy, EngineConfig::default())?;
    for result in engine.run_mixed(&ops) {
        result?;
    }
    for result in engine.run_mixed(&ops) {
        result?;
    }

    // 3. Read the tables back. Every number below was recorded without a
    //    single heap allocation on the serving path.
    let snapshot = engine.metrics_snapshot();
    if snapshot.compiled_out {
        println!("telemetry compiled out (metrics-off feature); nothing to report");
        return Ok(());
    }
    println!("per-op counters and latency quantiles (conservative bucket edges):");
    for op in &snapshot.ops {
        if op.submitted == 0 {
            continue;
        }
        println!(
            "  {:<10} submitted {:>3}  completed {:>3}  failed {:>2}  \
             p50 {:>7}ns  p95 {:>7}ns  p99 {:>7}ns",
            op.kind.name(),
            op.submitted,
            op.completed,
            op.failed,
            op.latency_ns.p50,
            op.latency_ns.p95,
            op.latency_ns.p99,
        );
    }
    println!(
        "\nbatch sizes: {} batches, p50 ≤ {}  |  planner chunks: {}, p50 ≤ {}",
        snapshot.batch_sizes.count,
        snapshot.batch_sizes.p50,
        snapshot.chunk_sizes.count,
        snapshot.chunk_sizes.p50,
    );

    println!("\nexclusive per-stage wall clock (plan → scan → rerank → scatter):");
    let total: u64 = snapshot.stages.iter().map(|s| s.nanos).sum();
    for stage in &snapshot.stages {
        println!(
            "  {:<8} {:>5} spans  {:>9}ns  ({:>4.1}%)",
            stage.stage.name(),
            stage.count,
            stage.nanos,
            100.0 * stage.nanos as f64 / total.max(1) as f64,
        );
    }

    println!(
        "\nmodel table: {:?} (generation 0 = engines outside a registry), overflow {}",
        snapshot
            .models
            .iter()
            .map(|m| (m.generation, m.ops))
            .collect::<Vec<_>>(),
        snapshot.model_overflow,
    );

    // 4. The recording switch turns the whole layer off at runtime —
    //    outputs stay bit-identical (tests/determinism.rs), the clock is
    //    never read, and every record path short-circuits.
    metrics::set_metrics_recording(false);
    let submitted =
        |snap: &MetricsSnapshot| -> u64 { snap.ops.iter().map(|op| op.submitted).sum() };
    let before = submitted(&engine.metrics_snapshot());
    for result in engine.run_mixed(&ops) {
        result?;
    }
    let after = submitted(&engine.metrics_snapshot());
    metrics::set_metrics_recording(true);
    println!("\nwith recording off: total submitted {before} → {after} (unchanged)");
    Ok(())
}
