//! Online learning on the CIFAR pipeline: class prototypes are trained
//! from encoded images, sharpened by misclassification-driven
//! retraining (chopin2-style), persisted to a `.fhd` artifact, and
//! reloaded bit-identically.
//!
//! ```sh
//! cargo run --release --example online_learning
//! ```

use factorhd::engine::artifact;
use factorhd::learn::{LearnConfig, PrototypeModel};
use factorhd::neural::datasets::cifar;
use factorhd::neural::{CifarPipeline, CifarPipelineConfig};
use hdc::AccumHv;

const CLASSES: usize = 10;
const TRAIN_PER_CLASS: usize = 32;
const TEST_PER_CLASS: usize = 20;
const RETRAIN_EPOCHS: u32 = 8;

fn accuracy(model: &PrototypeModel, test_set: &[(usize, AccumHv)]) -> f64 {
    let snapshot = model.snapshot().expect("snapshot builds");
    let correct = test_set
        .iter()
        .filter(|(class, hv)| snapshot.predict(hv).expect("classify succeeds").class == *class)
        .count();
    correct as f64 / test_set.len() as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The simulated ResNet-18 front end: images become feature vectors,
    // features become hypervectors. A reduced dimension keeps the
    // example fast.
    let pipeline = CifarPipeline::new(CifarPipelineConfig {
        dim: 1024,
        samples_per_class: 16,
        ..CifarPipelineConfig::cifar10()
    })?;
    let dim = pipeline.config().dim;

    // Online training: observe labelled encoded images one at a time,
    // retaining each in the replay buffer for later retraining.
    let mut model = PrototypeModel::new(LearnConfig::new(CLASSES, dim))?;
    let mut rng = hdc::rng_from_seed(2025);
    let mut sample_id = 0u64;
    for _ in 0..TRAIN_PER_CLASS {
        for class in 0..CLASSES {
            let hv = pipeline.encode_features(class, &mut rng);
            model.observe(class, sample_id, &hv, true)?;
            sample_id += 1;
        }
    }
    println!(
        "trained {} examples online ({} retained for replay)",
        sample_id,
        model.retained()
    );

    // A held-out test set from the same front end.
    let test_set: Vec<(usize, AccumHv)> = (0..TEST_PER_CLASS)
        .flat_map(|_| 0..CLASSES)
        .map(|class| (class, pipeline.encode_features(class, &mut rng)))
        .collect();

    let initial = accuracy(&model, &test_set);
    println!("\nepoch 0 (bundling only): held-out accuracy {initial:.3}");

    // Retraining: every epoch walks the replay buffer, and each
    // misclassified example is subtracted from the prototype that stole
    // it and re-added to its own — the perceptron-style update that
    // sharpens class boundaries past what one-shot bundling gives.
    println!("\nretraining ({RETRAIN_EPOCHS} epochs max, stops when error-free):");
    let mut best = initial;
    for _ in 0..RETRAIN_EPOCHS {
        let report = model.retrain(1);
        let held_out = accuracy(&model, &test_set);
        best = best.max(held_out);
        println!(
            "  epoch {}: {} training errors, held-out accuracy {held_out:.3}",
            report.epoch, report.errors_per_epoch[0]
        );
        if report.errors_per_epoch[0] == 0 {
            println!("  training set is error-free, stopping");
            break;
        }
    }
    let final_accuracy = accuracy(&model, &test_set);
    println!("\nbest held-out accuracy {best:.3} (epoch 0 baseline {initial:.3})");
    assert!(
        best >= initial,
        "retraining must not lose accuracy over the bundling baseline"
    );

    // Persist the trained model next to its taxonomy and reload it. The
    // prototype section round-trips bit-identically; only the replay
    // buffer (transient training state) is dropped.
    let path = std::env::temp_dir().join("factorhd_online_learning.fhd");
    artifact::save_model(&path, pipeline.taxonomy(), Some(&model))?;
    let (_taxonomy, reloaded) = artifact::load_model(&path)?;
    let reloaded = reloaded.expect("prototype section present");
    assert_eq!(reloaded.accumulators(), model.accumulators());
    assert_eq!(reloaded.counts(), model.counts());
    assert_eq!(reloaded.epoch(), model.epoch());
    assert_eq!(accuracy(&reloaded, &test_set), final_accuracy);
    println!(
        "saved to {} and reloaded: accumulators, counts, and epoch are bit-identical",
        path.display()
    );
    std::fs::remove_file(&path).ok();

    // The reloaded model keeps classifying; show a few predictions.
    let snapshot = reloaded.snapshot()?;
    println!("\nsample classifications from the reloaded model:");
    for class in [0usize, 3, 7] {
        let hv = pipeline.encode_features(class, &mut rng);
        let hit = snapshot.predict(&hv)?;
        println!(
            "  true {:<10} -> predicted {:<10} (sim {:+.3}) {}",
            cifar::CIFAR10_CLASSES[class],
            cifar::CIFAR10_CLASSES[hit.class],
            hit.sim,
            if hit.class == class { "✓" } else { "✗" }
        );
    }
    Ok(())
}
