//! Multi-model serving: two taxonomies persisted as `.fhd` artifacts,
//! loaded into one `ModelRegistry`, served concurrently through typed
//! ops, with one model hot-swapped mid-run.
//!
//! ```sh
//! cargo run --release --example multi_model
//! ```

use factorhd::prelude::*;
use std::sync::Arc;

fn fruit_taxonomy(seed: u64) -> Result<Taxonomy, FactorHdError> {
    TaxonomyBuilder::new(2048)
        .seed(seed)
        .class("species", &[12, 4])
        .class("ripeness", &[6])
        .build()
}

fn traffic_taxonomy() -> Result<Taxonomy, FactorHdError> {
    TaxonomyBuilder::new(4096)
        .seed(99)
        .class("vehicle", &[10])
        .class("color", &[8])
        .class("lane", &[4])
        .build()
}

/// Encodes `n` single-object Rep-2 ops against `taxonomy`.
fn rep2_ops(taxonomy: &Taxonomy, n: usize, seed: u64) -> Result<Vec<AnyOp>, FactorHdError> {
    let encoder = Encoder::new(taxonomy);
    let mut rng = hdc::rng_from_seed(seed);
    (0..n)
        .map(|_| {
            let object = taxonomy.sample_object(&mut rng);
            Ok(AnyOp::Rep2(FactorizeRep2 {
                scene: encoder.encode_scene(&Scene::single(object))?,
            }))
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Persist two different models as `.fhd` artifacts.
    let dir = std::env::temp_dir();
    let fruit_path = dir.join("multi_model_fruit.fhd");
    let traffic_path = dir.join("multi_model_traffic.fhd");
    ModelState::new(fruit_taxonomy(1)?, EngineConfig::default())?.save(&fruit_path)?;
    ModelState::new(traffic_taxonomy()?, EngineConfig::default())?.save(&traffic_path)?;

    // 2. Load both into one registry: two taxonomies, one serving
    //    surface.
    let registry = Arc::new(ModelRegistry::new());
    let fruit_gen = registry.load("fruit", &fruit_path, EngineConfig::default())?;
    registry.load("traffic", &traffic_path, EngineConfig::default())?;
    println!(
        "registry serves {:?} (fruit generation {fruit_gen})",
        registry.ids()
    );

    // 3. Serve both models concurrently from worker threads while the
    //    main thread hot-swaps the fruit model mid-run.
    let fruit_handle = registry.get("fruit")?; // pre-swap, generation-stamped
    let fruit_ops = rep2_ops(fruit_handle.state().taxonomy(), 24, 7)?;
    let traffic_ops = rep2_ops(registry.get("traffic")?.state().taxonomy(), 24, 8)?;

    std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
        let fruit_worker = {
            let handle = fruit_handle.clone();
            let ops = &fruit_ops;
            scope.spawn(move || {
                // In-flight work pinned to the handle keeps serving the
                // model it resolved, across however many batches, even
                // after the registry swaps the id.
                ops.iter()
                    .map(|op| handle.run(op))
                    .filter(|r| r.is_ok())
                    .count()
            })
        };
        let traffic_worker = {
            let registry = Arc::clone(&registry);
            let ops = &traffic_ops;
            scope.spawn(move || {
                registry
                    .execute_batch(
                        &ops.iter()
                            .map(|op| (ModelId::new("traffic"), op.clone()))
                            .collect::<Vec<_>>(),
                    )
                    .into_iter()
                    .filter(|r| r.is_ok())
                    .count()
            })
        };

        // Hot swap: a retrained fruit model (different seed) replaces the
        // artifact-loaded one while the workers are serving.
        let swapped_gen = registry.install(
            "fruit",
            ModelState::new(fruit_taxonomy(2)?, EngineConfig::default())?,
        );
        println!(
            "hot-swapped fruit: generation {} → {swapped_gen}",
            fruit_handle.generation()
        );

        let fruit_ok = fruit_worker.join().expect("fruit worker");
        let traffic_ok = traffic_worker.join().expect("traffic worker");
        println!("fruit worker decoded {fruit_ok}/24 on the pre-swap model");
        println!("traffic worker decoded {traffic_ok}/24");
        Ok(())
    })?;

    // 4. The old handle and the new registry state coexist: the handle
    //    still answers for the model it resolved, new lookups see the
    //    swap.
    assert_eq!(fruit_handle.state().taxonomy().seed(), 1);
    let fresh = registry.get("fruit")?;
    assert_eq!(fresh.state().taxonomy().seed(), 2);
    assert!(fresh.generation() > fruit_handle.generation());
    println!(
        "pre-swap handle: seed {} (gen {}); current: seed {} (gen {})",
        fruit_handle.state().taxonomy().seed(),
        fruit_handle.generation(),
        fresh.state().taxonomy().seed(),
        fresh.generation()
    );

    // 5. One heterogeneous multi-model batch: the planner groups ops by
    //    (model, kind) and returns results in input order.
    let fresh_fruit_ops = rep2_ops(fresh.state().taxonomy(), 4, 9)?;
    let mut routed: Vec<(ModelId, AnyOp)> = Vec::new();
    for op in fresh_fruit_ops {
        routed.push((ModelId::new("fruit"), op));
    }
    for op in rep2_ops(registry.get("traffic")?.state().taxonomy(), 4, 10)? {
        routed.push((ModelId::new("traffic"), op));
    }
    let results = registry.execute_batch(&routed);
    let ok = results.iter().filter(|r| r.is_ok()).count();
    println!("mixed-model batch: {ok}/{} ops served", results.len());

    std::fs::remove_file(&fruit_path)?;
    std::fs::remove_file(&traffic_path)?;
    Ok(())
}
