//! Multi-tenant classification serving: several independently trained
//! prototype models live side by side in one server, each tenant
//! trains and classifies over the wire, and `ListModels` reports every
//! tenant with its hot-swap generation.
//!
//! ```sh
//! cargo run --release --example multi_tenant_learning
//! ```

use std::sync::Arc;

use factorhd::core::TaxonomyBuilder;
use factorhd::engine::{
    AnyOp, AnyOutput, Classify, EngineConfig, LearnConfig, ModelRegistry, ModelState, Retrain,
    Train,
};
use factorhd::serve::{Client, Server, ServerConfig};
use hdc::{AccumHv, BipolarHv};

const DIM: usize = 256;
const EXAMPLES_PER_CLASS: usize = 12;

/// Each tenant is a named model with its own class universe.
const TENANTS: &[(&str, &[&str])] = &[
    ("fruit", &["apple", "banana", "cherry"]),
    ("vehicles", &["car", "bike", "boat", "train"]),
    ("weather", &["sun", "rain"]),
];

/// A deterministic labelled example: the tenant+class anchor with
/// per-sample noise mixed in.
fn example(tenant: usize, class: usize, sample: u64) -> AccumHv {
    let mut anchor_rng = hdc::rng_from_seed(hdc::derive_seed(&[77, tenant as u64, class as u64]));
    let mut noise_rng = hdc::rng_from_seed(hdc::derive_seed(&[78, tenant as u64, sample]));
    let mut acc = AccumHv::zeros(DIM);
    acc.add_bipolar(&BipolarHv::random(DIM, &mut anchor_rng), 2);
    acc.add_bipolar(&BipolarHv::random(DIM, &mut noise_rng), 1);
    acc
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One registry, one learnable model per tenant.
    let registry = Arc::new(ModelRegistry::new());
    for (name, classes) in TENANTS {
        let taxonomy = TaxonomyBuilder::new(DIM)
            .class("label", &[classes.len()])
            .build()?;
        let state = ModelState::new_learnable(
            taxonomy,
            EngineConfig::default(),
            LearnConfig::new(classes.len(), DIM),
        )?;
        registry.install(*name, state);
    }
    let server = Server::start(registry, "127.0.0.1:0", ServerConfig::default())?;
    let addr = server.local_addr();
    println!("serving {} tenants on {addr}", TENANTS.len());

    // Every tenant trains its own model over the wire; each successful
    // Train or Retrain hot-swaps a fresh snapshot for that tenant only.
    let mut client = Client::connect(addr)?;
    for (t, (name, classes)) in TENANTS.iter().enumerate() {
        for sample in 0..(classes.len() * EXAMPLES_PER_CLASS) as u64 {
            let class = sample as usize % classes.len();
            let out = client.run(
                name,
                &AnyOp::Train(Train {
                    class,
                    sample,
                    example: example(t, class, sample),
                    retain: true,
                }),
            )?;
            assert!(matches!(out, AnyOutput::Trained(_)));
        }
        let out = client.run(name, &AnyOp::Retrain(Retrain { epochs: 3 }))?;
        if let AnyOutput::Retrained(report) = out {
            println!(
                "  tenant {name:<9} trained {} examples, retrained {} epoch(s): errors {:?}",
                classes.len() * EXAMPLES_PER_CLASS,
                report.epochs_run,
                report.errors_per_epoch
            );
        }
    }

    // ListModels: every tenant, with the generation its current
    // snapshot was published under.
    println!("\nregistered models:");
    for info in client.list_models()? {
        println!("  {:<9} generation {}", info.name, info.generation);
    }

    // Tenants classify against their own prototypes — the same wire
    // connection, routed by model name.
    println!("\nclassifications:");
    for (t, (name, classes)) in TENANTS.iter().enumerate() {
        for class in 0..classes.len() {
            let query = example(t, class, 9_000 + class as u64);
            let out = client.run(name, &AnyOp::Classify(Classify { query, top_k: 1 }))?;
            let AnyOutput::Classified(c) = out else {
                panic!("expected a classification, got {out:?}")
            };
            let hit = c.hits[0];
            println!(
                "  {name:<9} true {:<7} -> predicted {:<7} (sim {:+.3}, epoch {}) {}",
                classes[class],
                classes[hit.class],
                hit.sim,
                c.epoch,
                if hit.class == class { "✓" } else { "✗" }
            );
        }
    }

    // Unknown tenants fail with a typed error that names what IS
    // registered.
    let err = client
        .run(
            "nosuch",
            &AnyOp::Classify(Classify {
                query: example(0, 0, 0),
                top_k: 1,
            }),
        )
        .expect_err("unknown tenant must be rejected");
    println!("\nunknown tenant: {err}");

    server.shutdown();
    Ok(())
}
