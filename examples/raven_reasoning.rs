//! RAVEN-style visual reasoning: encode a multi-object panel (position /
//! color / size-type attributes, extracted by the simulated neural
//! front-end) and factorize the full object list back out of one
//! hypervector.
//!
//! ```sh
//! cargo run --release --example raven_reasoning
//! ```

use factorhd::neural::datasets::raven::{RavenConfig, RavenScene};
use factorhd::neural::{RavenPipeline, RavenPipelineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = RavenConfig::Grid2x2;
    let pipeline = RavenPipeline::new(config, RavenPipelineConfig::default())?;
    let mut rng = hdc::rng_from_seed(2024);

    // Sample a ground-truth panel with 3 objects on the 2×2 grid.
    let scene = RavenScene::sample_with_count(config, 3, &mut rng);
    println!("panel ({}):", config.name());
    for obj in &scene.objects {
        println!(
            "  - position {} | color {} | size-type {}",
            obj.position, obj.color, obj.size_type
        );
    }

    // Encode through the noisy neural front-end, then factorize.
    let hv = pipeline.encode_scene(&scene, &mut rng)?;
    let mut decoded = pipeline.decode_scene(&hv)?;
    decoded.sort_unstable();
    println!("\nfactorized:");
    for (p, c, s) in &decoded {
        println!("  - position {p} | color {c} | size-type {s}");
    }

    let mut truth: Vec<(u16, u16, u16)> = scene
        .objects
        .iter()
        .map(|o| (o.position, o.color, o.size_type))
        .collect();
    truth.sort_unstable();
    assert_eq!(decoded, truth);
    println!("\npanel recovered exactly ✓");

    // Accuracy across all seven configurations (small sample).
    println!("\nper-configuration accuracy (60 panels each, D = 1000):");
    for config in RavenConfig::ALL {
        let pipeline = RavenPipeline::new(config, RavenPipelineConfig::default())?;
        let acc = pipeline.evaluate(60, 77)?;
        println!("  {:<8} {:.2}", config.name(), acc);
    }
    Ok(())
}
