//! Quickstart: encode one object with class–subclass structure and
//! factorize it back.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use factorhd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A taxonomy with three classes. "animal" has two subclass levels
    // (e.g. dog -> spaniel), the others one.
    let taxonomy = TaxonomyBuilder::new(2048)
        .seed(42)
        .class("animal", &[16, 8])
        .class("color", &[10])
        .class("size", &[6])
        .build()?;

    // The object: animal 3 -> sub-animal 5, color 7, size 2.
    let object = ObjectSpec::new(vec![
        Some(ItemPath::new(vec![3, 5])),
        Some(ItemPath::top(7)),
        Some(ItemPath::top(2)),
    ]);

    // Encode: clip(LABEL_animal + a3 + a3.5) ⊙ clip(LABEL_color + c7) ⊙ …
    let encoder = Encoder::new(&taxonomy);
    let hv = encoder.encode_scene(&Scene::single(object.clone()))?;
    println!(
        "encoded {} into a {}-dimensional hypervector",
        object,
        hv.dim()
    );

    // Factorize: unbind the other labels per class, similarity-scan the
    // codebooks, descend the hierarchy.
    let factorizer = Factorizer::new(&taxonomy, FactorizeConfig::default());
    let decoded = factorizer.factorize_single(&hv)?;
    println!(
        "decoded  {} (confidence {:.3})",
        decoded.object(),
        decoded.confidence()
    );
    assert_eq!(decoded.object(), &object);
    println!("round trip exact ✓");
    Ok(())
}
