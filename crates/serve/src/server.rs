//! The threaded TCP server: accept loop, per-connection reader/writer
//! threads, and the shared adaptive batcher.
//!
//! # Thread anatomy
//!
//! ```text
//! accept loop ──► reader thread (per connection)
//!                   │  decode frame → Request
//!                   │    op    → batcher queue ─► batcher worker
//!                   │    stats │ ping → answered inline    │
//!                   ▼                                      │
//!                 writer thread ◄──── responses by id ◄────┘
//!                   encode frame, write, record e2e latency
//! ```
//!
//! Each connection gets one reader and one writer thread joined by an
//! mpsc channel; the batcher worker holds a clone of that channel's
//! sender for every in-flight op, so responses are scattered back to
//! the right connection by construction. The writer drains its channel
//! greedily and flushes once per drain, so a coalesced batch's worth of
//! responses to one client goes out in few syscalls.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] (also run on drop) is graceful: stop accepting,
//! half-close every connection's read side (clients see their writes
//! rejected, queued responses still deliverable), flush the batcher so
//! every accepted op is answered, then join every thread. No accepted
//! request is dropped; clients observe clean EOF after their last
//! response.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use factorhd_engine::ModelRegistry;

use crate::batcher::{Batcher, BatcherConfig, Outgoing, Pending};
use crate::error::{ErrorCode, ServeError};
use crate::metrics::{ServeMetrics, ServingStats};
use crate::protocol::{
    self, peek_request_id, read_frame, write_frame, Request, Response, DEFAULT_MAX_FRAME_BYTES,
};

/// Per-connection read/write buffer capacity — above a typical scene-op
/// frame at the dimensions this repo runs, so pipelined traffic costs
/// few syscalls per burst rather than one-plus per frame.
const CONNECTION_BUFFER_BYTES: usize = 1 << 16;

/// Server knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// The adaptive batcher's dispatch policy.
    pub batcher: BatcherConfig,
    /// Per-frame payload cap; oversized frames close the connection.
    pub max_frame_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batcher: BatcherConfig::default(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// Shared state every server thread holds an `Arc` to.
struct Shared {
    metrics: Arc<ServeMetrics>,
    /// The served registry; reader threads answer `ListModels` from it
    /// inline (a lock-free-read listing, never routed through the
    /// batcher).
    registry: Arc<ModelRegistry>,
    shutting_down: AtomicBool,
    max_frame_bytes: usize,
    /// Read-half clones of live connections keyed by a token, so
    /// shutdown can unblock every reader thread; each entry is removed
    /// when its connection closes (no fd retention).
    connections: Mutex<HashMap<u64, TcpStream>>,
    next_token: AtomicU64,
    /// Reader-thread handles, joined on shutdown.
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

/// A running network front end over a [`ModelRegistry`].
///
/// ```no_run
/// use std::sync::Arc;
/// use factorhd_engine::ModelRegistry;
/// use factorhd_serve::{Server, ServerConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let registry = Arc::new(ModelRegistry::new());
/// let server = Server::start(registry, "127.0.0.1:0", ServerConfig::default())?;
/// println!("serving on {}", server.local_addr());
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    batcher: Arc<Batcher>,
    accept_worker: Mutex<Option<thread::JoinHandle<()>>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop and batcher worker.
    pub fn start(
        registry: Arc<ModelRegistry>,
        addr: &str,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::new());
        let shared = Arc::new(Shared {
            metrics: Arc::clone(&metrics),
            registry: Arc::clone(&registry),
            shutting_down: AtomicBool::new(false),
            max_frame_bytes: config.max_frame_bytes,
            connections: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        });
        let batcher = Arc::new(Batcher::new(registry, config.batcher, metrics));
        let accept_worker = {
            let shared = Arc::clone(&shared);
            let batcher = Arc::clone(&batcher);
            thread::Builder::new()
                .name("factorhd-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &batcher))
                .expect("spawn accept loop")
        };
        Ok(Server {
            addr,
            shared,
            batcher,
            accept_worker: Mutex::new(Some(accept_worker)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A copy of the server's telemetry, as the `Stats` op reports it.
    pub fn stats(&self) -> ServingStats {
        self.shared.metrics.stats()
    }

    /// The server's metrics block (full histogram snapshots for bench
    /// documents).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Graceful shutdown: stop accepting, flush the batcher so every
    /// accepted request is answered, then join every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a wake-up connection; it checks
        // the flag before handing the connection to a reader.
        let _ = TcpStream::connect(self.addr);
        if let Some(worker) = self
            .accept_worker
            .lock()
            .expect("accept worker lock")
            .take()
        {
            let _ = worker.join();
        }
        // Half-close every connection's read side: readers unblock with
        // EOF and stop feeding the batcher; queued responses can still
        // be written.
        for connection in self
            .shared
            .connections
            .lock()
            .expect("connections lock")
            .values()
        {
            let _ = connection.shutdown(Shutdown::Read);
        }
        // Flush the batcher: every queued op executes and its response
        // lands in some writer's queue before the worker exits.
        self.batcher.shutdown();
        // Readers have EOF'd and the batcher released its reply
        // senders, so writers drain and exit; join everything.
        let workers = std::mem::take(&mut *self.shared.workers.lock().expect("workers lock"));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, batcher: &Arc<Batcher>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (fd pressure, aborted
                // handshake); back off briefly instead of spinning.
                thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        shared.metrics.connection_accepted();
        let token = shared.next_token.fetch_add(1, Ordering::Relaxed);
        if let Ok(read_half) = stream.try_clone() {
            shared
                .connections
                .lock()
                .expect("connections lock")
                .insert(token, read_half);
        }
        let worker = {
            let shared = Arc::clone(shared);
            let batcher = Arc::clone(batcher);
            thread::Builder::new()
                .name("factorhd-conn".into())
                .spawn(move || serve_connection(stream, token, &shared, &batcher))
        };
        match worker {
            Ok(handle) => shared.workers.lock().expect("workers lock").push(handle),
            Err(_) => {
                shared
                    .connections
                    .lock()
                    .expect("connections lock")
                    .remove(&token);
                shared.metrics.connection_closed();
            }
        }
    }
}

/// Reader side of one connection; spawns and joins its writer.
fn serve_connection(stream: TcpStream, token: u64, shared: &Arc<Shared>, batcher: &Arc<Batcher>) {
    let (reply_tx, reply_rx) = mpsc::channel::<Outgoing>();
    let writer_stream = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => {
            shared.metrics.connection_closed();
            return;
        }
    };
    let writer = {
        let shared = Arc::clone(shared);
        thread::Builder::new()
            .name("factorhd-conn-writer".into())
            .spawn(move || write_loop(writer_stream, &reply_rx, &shared))
            .expect("spawn connection writer")
    };

    // Sized above a typical scene-op frame so pipelined bursts coalesce
    // into few syscalls instead of one-plus per frame.
    let mut reader = BufReader::with_capacity(CONNECTION_BUFFER_BYTES, stream);
    // Stop reading on clean EOF, I/O failure, or an oversized frame
    // (the only wire error framing can't recover from — the stream
    // offset is lost).
    while let Ok(Some(payload)) = read_frame(&mut reader, shared.max_frame_bytes) {
        match protocol::decode_request(&payload) {
            Ok((request_id, request)) => {
                shared.metrics.request_received();
                let received_at = Instant::now();
                match request {
                    Request::Op { model, op } => {
                        let accepted = batcher.submit(Pending {
                            model,
                            op,
                            request_id,
                            received_at,
                            reply: reply_tx.clone(),
                        });
                        if !accepted {
                            let _ = reply_tx.send(Outgoing {
                                request_id,
                                received_at,
                                response: Response::Error {
                                    code: ErrorCode::Shutdown,
                                    message: "server is shutting down".into(),
                                },
                            });
                        }
                    }
                    Request::Stats => {
                        let _ = reply_tx.send(Outgoing {
                            request_id,
                            received_at,
                            response: Response::Stats(shared.metrics.stats()),
                        });
                    }
                    Request::Ping => {
                        let _ = reply_tx.send(Outgoing {
                            request_id,
                            received_at,
                            response: Response::Pong,
                        });
                    }
                    Request::ListModels => {
                        let _ = reply_tx.send(Outgoing {
                            request_id,
                            received_at,
                            response: Response::Models(shared.registry.models_info()),
                        });
                    }
                }
            }
            Err(wire_err) => {
                // The frame was intact (length prefix honored) but the
                // payload is malformed: answer with a typed protocol
                // error on the salvaged request id and keep serving.
                shared.metrics.protocol_error();
                let _ = reply_tx.send(Outgoing {
                    request_id: peek_request_id(&payload).unwrap_or(0),
                    received_at: Instant::now(),
                    response: Response::Error {
                        code: ErrorCode::Protocol,
                        message: wire_err.to_string(),
                    },
                });
            }
        }
    }
    // Dropping our sender lets the writer exit once the batcher has
    // delivered (or dropped) every in-flight reply for this connection.
    drop(reply_tx);
    let _ = writer.join();
    shared
        .connections
        .lock()
        .expect("connections lock")
        .remove(&token);
    shared.metrics.connection_closed();
}

/// Writer side of one connection: drain the reply queue greedily,
/// flush once per drain, record end-to-end latency at write time.
fn write_loop(stream: TcpStream, replies: &mpsc::Receiver<Outgoing>, shared: &Arc<Shared>) {
    let mut writer = BufWriter::with_capacity(CONNECTION_BUFFER_BYTES, stream);
    while let Ok(first) = replies.recv() {
        let mut wrote = write_reply(&mut writer, &first, shared);
        while let Ok(next) = replies.try_recv() {
            wrote &= write_reply(&mut writer, &next, shared);
        }
        if !wrote || writer.flush().is_err() {
            // The client is gone; keep draining so batcher sends don't
            // pile up, but stop writing.
            for _ in replies.iter() {}
            return;
        }
    }
}

fn write_reply(writer: &mut impl Write, outgoing: &Outgoing, shared: &Arc<Shared>) -> bool {
    let payload = protocol::encode_response(outgoing.request_id, &outgoing.response);
    if write_frame(writer, &payload).is_err() {
        return false;
    }
    shared.metrics.response_sent();
    shared
        .metrics
        .e2e_latency(outgoing.received_at.elapsed().as_nanos() as u64);
    true
}
