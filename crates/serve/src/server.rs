//! The threaded TCP server: accept loop, per-connection reader/writer
//! threads, and the shared adaptive batcher.
//!
//! # Thread anatomy
//!
//! ```text
//! accept loop ──► reader thread (per connection)
//!                   │  decode frame → Request
//!                   │    op    → batcher queue ─► batcher worker
//!                   │    stats │ ping → answered inline    │
//!                   ▼                                      │
//!                 writer thread ◄──── responses by id ◄────┘
//!                   encode frame, write, record e2e latency
//! ```
//!
//! Each connection gets one reader and one writer thread joined by an
//! mpsc channel; the batcher worker holds a clone of that channel's
//! sender for every in-flight op, so responses are scattered back to
//! the right connection by construction. The writer drains its channel
//! greedily and flushes once per drain, so a coalesced batch's worth of
//! responses to one client goes out in few syscalls.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] (also run on drop) is graceful: stop accepting,
//! half-close every connection's read side (clients see their writes
//! rejected, queued responses still deliverable), flush the batcher so
//! every accepted op is answered, then join every thread. No accepted
//! request is dropped; clients observe clean EOF after their last
//! response.
//!
//! # Robustness
//!
//! (docs/ROBUSTNESS.md.) Admission refusals from the batcher become
//! typed `Overloaded` responses; requests carrying a wire deadline are
//! anchored at frame-decode time and expire typed-ly at dequeue. Reader
//! threads enforce two read budgets against slowloris peers: an **idle
//! timeout** between frames (expiry is a quiet close — the peer just
//! had nothing to say) and a **frame timeout** once a frame's first
//! byte arrives (expiry is an error close — the peer started a frame
//! and stalled). Mutex poisoning is recovered everywhere (`into_inner`;
//! the maps hold plain handles that stay structurally valid), and
//! thread-spawn failures degrade a connection, never the process.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use factorhd_engine::ModelRegistry;

use crate::batcher::{Batcher, BatcherConfig, Outgoing, Pending, SubmitOutcome};
use crate::error::{ErrorCode, ServeError, WireError};
use crate::metrics::{ServeMetrics, ServingStats};
use crate::protocol::{
    self, peek_request_id, write_frame, Request, Response, DEFAULT_MAX_FRAME_BYTES,
};

/// Locks a mutex, recovering from poisoning: server maps hold plain
/// handles/join-handles that stay structurally valid even if a thread
/// panicked while holding the lock, and the server must keep serving.
fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Per-connection read/write buffer capacity — above a typical scene-op
/// frame at the dimensions this repo runs, so pipelined traffic costs
/// few syscalls per burst rather than one-plus per frame.
const CONNECTION_BUFFER_BYTES: usize = 1 << 16;

/// Server knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// The adaptive batcher's dispatch policy.
    pub batcher: BatcherConfig,
    /// Per-frame payload cap; oversized frames close the connection.
    pub max_frame_bytes: usize,
    /// How long a connection may sit with **no** frame in progress
    /// before the server closes it (quietly — an idle peer is not an
    /// error). `None` keeps idle connections forever.
    pub idle_timeout: Option<Duration>,
    /// How long a frame may take from its first byte to its last once
    /// started; a peer that drip-feeds past this is closed with an
    /// error (slowloris defense). `None` disables the budget.
    pub frame_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    /// Idle connections are kept for 60 s; a started frame has 10 s to
    /// complete.
    fn default() -> Self {
        ServerConfig {
            batcher: BatcherConfig::default(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            idle_timeout: Some(Duration::from_secs(60)),
            frame_timeout: Some(Duration::from_secs(10)),
        }
    }
}

/// Shared state every server thread holds an `Arc` to.
struct Shared {
    metrics: Arc<ServeMetrics>,
    /// The served registry; reader threads answer `ListModels` from it
    /// inline (a lock-free-read listing, never routed through the
    /// batcher).
    registry: Arc<ModelRegistry>,
    shutting_down: AtomicBool,
    max_frame_bytes: usize,
    idle_timeout: Option<Duration>,
    frame_timeout: Option<Duration>,
    /// Read-half clones of live connections keyed by a token, so
    /// shutdown can unblock every reader thread; each entry is removed
    /// when its connection closes (no fd retention).
    connections: Mutex<HashMap<u64, TcpStream>>,
    next_token: AtomicU64,
    /// Reader-thread handles, joined on shutdown.
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

/// A running network front end over a [`ModelRegistry`].
///
/// ```no_run
/// use std::sync::Arc;
/// use factorhd_engine::ModelRegistry;
/// use factorhd_serve::{Server, ServerConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let registry = Arc::new(ModelRegistry::new());
/// let server = Server::start(registry, "127.0.0.1:0", ServerConfig::default())?;
/// println!("serving on {}", server.local_addr());
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    batcher: Arc<Batcher>,
    accept_worker: Mutex<Option<thread::JoinHandle<()>>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop and batcher worker.
    pub fn start(
        registry: Arc<ModelRegistry>,
        addr: &str,
        config: ServerConfig,
    ) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::new());
        let shared = Arc::new(Shared {
            metrics: Arc::clone(&metrics),
            registry: Arc::clone(&registry),
            shutting_down: AtomicBool::new(false),
            max_frame_bytes: config.max_frame_bytes,
            idle_timeout: config.idle_timeout,
            frame_timeout: config.frame_timeout,
            connections: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        });
        let batcher = Arc::new(Batcher::new(registry, config.batcher, metrics)?);
        let accept_worker = {
            let shared = Arc::clone(&shared);
            let batcher = Arc::clone(&batcher);
            thread::Builder::new()
                .name("factorhd-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &batcher))?
        };
        Ok(Server {
            addr,
            shared,
            batcher,
            accept_worker: Mutex::new(Some(accept_worker)),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A copy of the server's telemetry, as the `Stats` op reports it.
    pub fn stats(&self) -> ServingStats {
        self.shared.metrics.stats()
    }

    /// The server's metrics block (full histogram snapshots for bench
    /// documents).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.shared.metrics
    }

    /// Graceful shutdown: stop accepting, flush the batcher so every
    /// accepted request is answered, then join every thread.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a wake-up connection; it checks
        // the flag before handing the connection to a reader.
        let _ = TcpStream::connect(self.addr);
        if let Some(worker) = lock_recovering(&self.accept_worker).take() {
            let _ = worker.join();
        }
        // Half-close every connection's read side: readers unblock with
        // EOF and stop feeding the batcher; queued responses can still
        // be written.
        for connection in lock_recovering(&self.shared.connections).values() {
            let _ = connection.shutdown(Shutdown::Read);
        }
        // Flush the batcher: every queued op executes and its response
        // lands in some writer's queue before the worker exits.
        self.batcher.shutdown();
        // Readers have EOF'd and the batcher released its reply
        // senders, so writers drain and exit; join everything.
        let workers = std::mem::take(&mut *lock_recovering(&self.shared.workers));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, batcher: &Arc<Batcher>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (fd pressure, aborted
                // handshake); back off briefly instead of spinning.
                thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        shared.metrics.connection_accepted();
        let token = shared.next_token.fetch_add(1, Ordering::Relaxed);
        if let Ok(read_half) = stream.try_clone() {
            lock_recovering(&shared.connections).insert(token, read_half);
        }
        let worker = {
            let shared = Arc::clone(shared);
            let batcher = Arc::clone(batcher);
            thread::Builder::new()
                .name("factorhd-conn".into())
                .spawn(move || serve_connection(stream, token, &shared, &batcher))
        };
        match worker {
            Ok(handle) => lock_recovering(&shared.workers).push(handle),
            Err(_) => {
                // Thread exhaustion degrades this connection (dropped,
                // peer sees EOF), never the whole server.
                lock_recovering(&shared.connections).remove(&token);
                shared.metrics.connection_closed();
            }
        }
    }
}

/// Reader side of one connection; spawns and joins its writer.
fn serve_connection(stream: TcpStream, token: u64, shared: &Arc<Shared>, batcher: &Arc<Batcher>) {
    let (reply_tx, reply_rx) = mpsc::channel::<Outgoing>();
    let writer_stream = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => {
            shared.metrics.connection_closed();
            return;
        }
    };
    let writer = {
        let writer_shared = Arc::clone(shared);
        let spawned = thread::Builder::new()
            .name("factorhd-conn-writer".into())
            .spawn(move || write_loop(writer_stream, &reply_rx, &writer_shared));
        match spawned {
            Ok(handle) => handle,
            Err(_) => {
                // No writer means no way to answer; degrade this
                // connection (peer sees EOF), never the process.
                lock_recovering(&shared.connections).remove(&token);
                shared.metrics.connection_closed();
                return;
            }
        }
    };

    // A second handle to the socket just for adjusting read timeouts
    // (the timed reader flips between the idle and frame budgets).
    let control = stream.try_clone().ok();
    // Sized above a typical scene-op frame so pipelined bursts coalesce
    // into few syscalls instead of one-plus per frame.
    let mut reader = BufReader::with_capacity(CONNECTION_BUFFER_BYTES, stream);
    // Stop reading on clean EOF, idle expiry, I/O failure, a stalled
    // frame, or an oversized frame (the only wire error framing can't
    // recover from — the stream offset is lost).
    while let Ok(Some(payload)) = read_frame_timed(&mut reader, control.as_ref(), shared) {
        match protocol::decode_request(&payload) {
            Ok((request_id, request)) => {
                shared.metrics.request_received();
                let received_at = Instant::now();
                match request {
                    Request::Op {
                        model,
                        op,
                        deadline,
                    } => {
                        let outcome = batcher.submit(Pending {
                            model,
                            op,
                            request_id,
                            received_at,
                            // The wire budget is relative; anchor it at
                            // frame-decode time so client and server
                            // clocks never need to agree.
                            deadline: deadline.map(|budget| received_at + budget),
                            reply: reply_tx.clone(),
                        });
                        let refusal = match outcome {
                            SubmitOutcome::Accepted => None,
                            SubmitOutcome::Overloaded => {
                                shared.metrics.request_shed();
                                Some((
                                    ErrorCode::Overloaded,
                                    "server overloaded: admission queue full; op not executed",
                                ))
                            }
                            SubmitOutcome::ShuttingDown => {
                                Some((ErrorCode::Shutdown, "server is shutting down"))
                            }
                        };
                        if let Some((code, message)) = refusal {
                            let _ = reply_tx.send(Outgoing {
                                request_id,
                                received_at,
                                response: Response::Error {
                                    code,
                                    message: message.into(),
                                },
                            });
                        }
                    }
                    Request::Stats => {
                        let _ = reply_tx.send(Outgoing {
                            request_id,
                            received_at,
                            response: Response::Stats(shared.metrics.stats()),
                        });
                    }
                    Request::Ping => {
                        let _ = reply_tx.send(Outgoing {
                            request_id,
                            received_at,
                            response: Response::Pong,
                        });
                    }
                    Request::ListModels => {
                        let _ = reply_tx.send(Outgoing {
                            request_id,
                            received_at,
                            response: Response::Models(shared.registry.models_info()),
                        });
                    }
                }
            }
            Err(wire_err) => {
                // The frame was intact (length prefix honored) but the
                // payload is malformed: answer with a typed protocol
                // error on the salvaged request id and keep serving.
                shared.metrics.protocol_error();
                let _ = reply_tx.send(Outgoing {
                    request_id: peek_request_id(&payload).unwrap_or(0),
                    received_at: Instant::now(),
                    response: Response::Error {
                        code: ErrorCode::Protocol,
                        message: wire_err.to_string(),
                    },
                });
            }
        }
    }
    // Dropping our sender lets the writer exit once the batcher has
    // delivered (or dropped) every in-flight reply for this connection.
    drop(reply_tx);
    let _ = writer.join();
    lock_recovering(&shared.connections).remove(&token);
    shared.metrics.connection_closed();
}

/// Whether an I/O error is a socket read-timeout expiry (Unix reports
/// `WouldBlock`, Windows `TimedOut`).
fn is_timeout(err: &io::Error) -> bool {
    matches!(
        err.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one length-prefixed frame under the server's two read budgets
/// (module docs, "Robustness"): the **idle** budget while no frame has
/// started (expiry → `Ok(None)`, a quiet close) and the **frame**
/// budget from a frame's first byte to its last (expiry → error — the
/// peer started a frame and stalled). With per-read socket timeouts a
/// drip-feeding peer is bounded by `frame_timeout` of stall per read
/// and `frame_timeout` overall via the elapsed check, so the worst case
/// is ~2× the budget, not forever.
fn read_frame_timed(
    reader: &mut BufReader<TcpStream>,
    control: Option<&TcpStream>,
    shared: &Shared,
) -> Result<Option<Vec<u8>>, ServeError> {
    let set_timeout = |budget: Option<Duration>| {
        if let Some(control) = control {
            let _ = control.set_read_timeout(budget);
        }
    };
    set_timeout(shared.idle_timeout);
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    let mut frame_started: Option<Instant> = None;
    while filled < prefix.len() {
        match reader.read(&mut prefix[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(ServeError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length prefix",
                )));
            }
            Ok(n) => {
                if filled == 0 {
                    frame_started = Some(Instant::now());
                    set_timeout(shared.frame_timeout);
                }
                filled += n;
            }
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) if is_timeout(&err) => {
                if filled == 0 {
                    // Idle expiry between frames: not an error, the
                    // peer just had nothing more to say.
                    return Ok(None);
                }
                return Err(ServeError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "frame stalled inside length prefix",
                )));
            }
            Err(err) => return Err(ServeError::Io(err)),
        }
    }
    let declared = u32::from_le_bytes(prefix) as usize;
    if declared > shared.max_frame_bytes {
        return Err(ServeError::Wire(WireError::FrameTooLarge {
            declared,
            max: shared.max_frame_bytes,
        }));
    }
    let mut payload = vec![0u8; declared];
    let mut got = 0;
    while got < declared {
        if let (Some(started), Some(budget)) = (frame_started, shared.frame_timeout) {
            if started.elapsed() > budget {
                return Err(ServeError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "frame stalled past its read budget",
                )));
            }
        }
        match reader.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(ServeError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame payload",
                )))
            }
            Ok(n) => got += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) if is_timeout(&err) => {
                return Err(ServeError::Io(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "frame stalled inside payload",
                )))
            }
            Err(err) => return Err(ServeError::Io(err)),
        }
    }
    Ok(Some(payload))
}

/// Writer side of one connection: drain the reply queue greedily,
/// flush once per drain, record end-to-end latency at write time.
fn write_loop(stream: TcpStream, replies: &mpsc::Receiver<Outgoing>, shared: &Arc<Shared>) {
    let mut writer = BufWriter::with_capacity(CONNECTION_BUFFER_BYTES, stream);
    while let Ok(first) = replies.recv() {
        let mut wrote = write_reply(&mut writer, &first, shared);
        while let Ok(next) = replies.try_recv() {
            wrote &= write_reply(&mut writer, &next, shared);
        }
        if !wrote || writer.flush().is_err() {
            // The client is gone; keep draining so batcher sends don't
            // pile up, but stop writing.
            for _ in replies.iter() {}
            return;
        }
    }
}

fn write_reply(writer: &mut impl Write, outgoing: &Outgoing, shared: &Arc<Shared>) -> bool {
    let payload = protocol::encode_response(outgoing.request_id, &outgoing.response);
    if write_frame(writer, &payload).is_err() {
        return false;
    }
    shared.metrics.response_sent();
    // The latency histogram covers **admitted** requests only: sheds and
    // deadline expiries are answered in microseconds without executing,
    // and folding them in would make overload look like a latency win.
    let excluded = matches!(
        &outgoing.response,
        Response::Error {
            code: ErrorCode::Overloaded | ErrorCode::DeadlineExceeded,
            ..
        }
    );
    if !excluded {
        shared
            .metrics
            .e2e_latency(outgoing.received_at.elapsed().as_nanos() as u64);
    }
    true
}
