//! The binary wire protocol: length-prefixed frames carrying
//! checksummed, versioned payloads that map 1:1 onto the engine's typed
//! op API (docs/SERVING.md, "Network front end").
//!
//! # Frame
//!
//! ```text
//! [ u32 LE payload length ][ payload bytes ]
//! ```
//!
//! # Payload (both directions)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  0x89 'F' 'H' 'N'
//! 4       2     version (u16 LE, currently 1)
//! 6       1     kind byte
//! 7       1     flags (bit 0: deadline present; other bits reserved, must be 0)
//! 8       8     request id (u64 LE)
//! [16     8     deadline budget in microseconds (u64 LE), only when flag bit 0 set]
//! 16|24   …     body (kind-specific)
//! end-8   8     FNV-1a 64 checksum over payload[0 .. len-8]
//! ```
//!
//! The flags byte was the always-zero reserved byte before deadlines
//! existed, which keeps version skew graceful: a frame that carries no
//! deadline is **byte-identical** to the pre-deadline encoding, so old
//! and new peers interoperate fully as long as deadlines are unused. A
//! deadline-bearing frame sent to a pre-deadline server misparses into a
//! typed error response (never a panic, never a desync — framing is
//! length-prefixed), and unknown flag bits are rejected as
//! [`WireError::Corrupt`] so a *future* flag can never be silently
//! misread as body bytes. Deadlines are **relative budgets** (not
//! absolute timestamps) so client and server clocks never need to
//! agree; the server anchors the budget at frame-decode time.
//!
//! The same magic/version/checksum discipline as the `.fhd` artifact
//! codec: decoding is fully bounds-checked, every malformed input maps
//! to a typed [`WireError`], and a flipped bit anywhere is caught by
//! the checksum before the body is interpreted.
//!
//! Request kinds `0..=8` are [`OpKind::index`] values (the body is a
//! model name plus the op payload — including the learning ops
//! `Train`/`Retrain`/`Classify` at kinds 6/7/8); `0x10` is `Stats`,
//! `0x11` is `Ping`, `0x12` is `ListModels`. Response kinds reuse
//! `0..=8` for the matching outputs, plus `0x10` stats, `0x11` pong,
//! `0x12` the model listing, and `0x7F` for a typed error. All
//! multi-byte integers are little-endian; floats travel as IEEE-754
//! bit patterns ([`f64::to_bits`]), so a decoded response is
//! bit-identical to what the server computed.

use std::io::{self, Read, Write};
use std::time::Duration;

use factorhd_core::{
    ClassDecode, DecodedObject, DecodedScene, FactorizeStats, ItemPath, ObjectSpec, QueryAnswer,
    Scene,
};
use factorhd_engine::{
    AnyOp, AnyOutput, ClassHit, Classification, Classify, EncodeScene, FactorizeRep1,
    FactorizeRep2, FactorizeRep3, MembershipProbe, ModelInfo, OpKind, PartialDecode, Retrain,
    RetrainReport, Train, TrainAck,
};
use hdc::AccumHv;

use crate::error::{ErrorCode, ServeError, WireError, MAX_ERROR_MESSAGE_BYTES};
use crate::metrics::{HistogramSummary, ServingStats};

/// Payload magic: 0x89 (non-ASCII guard) + "FHN" (FactorHD Network).
pub const MAGIC: [u8; 4] = [0x89, b'F', b'H', b'N'];

/// Protocol version this build speaks.
pub const VERSION: u16 = 1;

/// Default cap on a single payload (16 MiB) — far above any realistic
/// op at the dimensions this repo runs, low enough that a hostile
/// length prefix cannot force an absurd allocation.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 24;

/// Fixed header bytes before the body.
const HEADER_BYTES: usize = 16;
/// Checksum trailer bytes after the body.
const TRAILER_BYTES: usize = 8;
/// Smallest well-formed payload (empty body).
const MIN_PAYLOAD_BYTES: usize = HEADER_BYTES + TRAILER_BYTES;

/// Request kind byte for a `Stats` request.
const KIND_STATS: u8 = 0x10;
/// Request kind byte for a `Ping` request.
const KIND_PING: u8 = 0x11;
/// Request kind byte for a `ListModels` request.
const KIND_LIST_MODELS: u8 = 0x12;
/// Response kind byte for a typed error. Public so load generators can
/// cheaply reject error frames (byte 6 of the payload) without a full
/// decode on the hot path.
pub const KIND_ERROR: u8 = 0x7F;

/// Header flag bit 0: the payload carries a deadline field after the
/// request id.
const FLAG_DEADLINE: u8 = 0x01;

/// One decoded client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one typed op against a named model.
    Op {
        /// Registry name of the model to run against.
        model: String,
        /// The op itself.
        op: AnyOp,
        /// Optional deadline budget, anchored at server frame-decode
        /// time: if the op is still queued when the budget expires, the
        /// server answers [`crate::ErrorCode::DeadlineExceeded`] without
        /// executing it. Travels with microsecond granularity (on the
        /// wire only when set, keeping deadline-free frames
        /// byte-identical to the pre-deadline encoding).
        deadline: Option<Duration>,
    },
    /// Fetch the server's [`ServingStats`].
    Stats,
    /// Liveness probe; answered inline with [`Response::Pong`].
    Ping,
    /// List the registered models and their generations; answered
    /// inline with [`Response::Models`].
    ListModels,
}

/// One decoded server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The typed output of a successfully executed op.
    Output(AnyOutput),
    /// Answer to [`Request::Stats`].
    Stats(ServingStats),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::ListModels`]: registered models sorted by
    /// name, each with its current generation.
    Models(Vec<ModelInfo>),
    /// A typed failure (protocol error, unknown model, engine error).
    Error {
        /// What failed.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// FNV-1a 64 over `bytes` — same function the `.fhd` artifact codec
/// uses for its trailer.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Bounded reader
// ---------------------------------------------------------------------------

/// A bounds-checked reader over a payload body; every read that would
/// pass the end returns [`WireError::Truncated`].
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    // The `expect`s below cannot fire: `take(n)` either returns exactly
    // `n` bytes or a typed `Truncated` error, so the slice length always
    // matches the array the integer is built from.

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Corrupt(format!(
                "{} trailing bytes after body",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Body encoders
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, value: u16) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, value: f64) {
    put_u64(out, value.to_bits());
}

/// Accumulators travel at the narrowest component width that fits the
/// whole vector (1, 2, or 4 bytes, little-endian two's complement). The
/// scene vectors this protocol actually carries are sums of a handful
/// of ±1 vectors, so components almost always fit in one byte — a 4–8×
/// cut in frame size, checksum work, and loopback bytes on the serving
/// hot path, while arbitrary `i32` accumulators still round-trip at
/// full width.
fn accum_width(hv: &AccumHv) -> u8 {
    let mut width = 1u8;
    for &component in hv.components() {
        if i8::try_from(component).is_ok() {
            continue;
        }
        if i16::try_from(component).is_ok() {
            width = width.max(2);
        } else {
            return 4;
        }
    }
    width
}

fn put_accum(out: &mut Vec<u8>, hv: &AccumHv) {
    put_u32(out, hv.dim() as u32);
    let width = accum_width(hv);
    out.push(width);
    match width {
        1 => {
            for &component in hv.components() {
                out.push(component as i8 as u8);
            }
        }
        2 => {
            for &component in hv.components() {
                out.extend_from_slice(&(component as i16).to_le_bytes());
            }
        }
        _ => {
            for &component in hv.components() {
                out.extend_from_slice(&component.to_le_bytes());
            }
        }
    }
}

fn put_path(out: &mut Vec<u8>, path: &ItemPath) {
    put_u16(out, path.depth() as u16);
    for &index in path.indices() {
        put_u16(out, index);
    }
}

fn put_object(out: &mut Vec<u8>, object: &ObjectSpec) {
    put_u16(out, object.assignments().len() as u16);
    for assignment in object.assignments() {
        match assignment {
            Some(path) => {
                out.push(1);
                put_path(out, path);
            }
            None => out.push(0),
        }
    }
}

fn put_scene(out: &mut Vec<u8>, scene: &Scene) {
    put_u16(out, scene.objects().len() as u16);
    for object in scene.objects() {
        put_object(out, object);
    }
}

fn put_decoded_object(out: &mut Vec<u8>, decoded: &DecodedObject) {
    put_object(out, decoded.object());
    put_f64(out, decoded.confidence());
}

fn put_op_body(out: &mut Vec<u8>, op: &AnyOp) {
    match op {
        AnyOp::Rep1(FactorizeRep1 { scene })
        | AnyOp::Rep2(FactorizeRep2 { scene })
        | AnyOp::Rep3(FactorizeRep3 { scene }) => put_accum(out, scene),
        AnyOp::Partial(PartialDecode { scene, classes }) => {
            put_accum(out, scene);
            put_u16(out, classes.len() as u16);
            for &class in classes {
                put_u32(out, class as u32);
            }
        }
        AnyOp::Membership(MembershipProbe {
            scene,
            items,
            absent,
        }) => {
            put_accum(out, scene);
            put_u16(out, items.len() as u16);
            for (class, path) in items {
                put_u32(out, *class as u32);
                put_path(out, path);
            }
            put_u16(out, absent.len() as u16);
            for &class in absent {
                put_u32(out, class as u32);
            }
        }
        AnyOp::Encode(EncodeScene { scene }) => put_scene(out, scene),
        AnyOp::Train(Train {
            class,
            sample,
            example,
            retain,
        }) => {
            put_u32(out, *class as u32);
            put_u64(out, *sample);
            out.push(u8::from(*retain));
            put_accum(out, example);
        }
        AnyOp::Retrain(Retrain { epochs }) => put_u32(out, *epochs),
        AnyOp::Classify(Classify { query, top_k }) => {
            put_u16(out, (*top_k).min(u16::MAX as usize) as u16);
            put_accum(out, query);
        }
    }
}

fn put_output_body(out: &mut Vec<u8>, output: &AnyOutput) {
    match output {
        AnyOutput::Rep1(decoded) | AnyOutput::Rep2(decoded) => put_decoded_object(out, decoded),
        AnyOutput::Rep3(scene) => {
            put_u16(out, scene.objects.len() as u16);
            for decoded in &scene.objects {
                put_decoded_object(out, decoded);
            }
            put_u64(out, scene.stats.similarity_checks);
            put_u64(out, scene.stats.combination_tests);
            put_u64(out, scene.stats.unbind_ops);
            put_u64(out, scene.stats.objects_found as u64);
            out.push(u8::from(scene.stats.truncated_combinations));
            put_f64(out, scene.residual_norm);
        }
        AnyOutput::Partial(decodes) => {
            put_u16(out, decodes.len() as u16);
            for decode in decodes {
                put_u32(out, decode.class as u32);
                match &decode.path {
                    Some(path) => {
                        out.push(1);
                        put_path(out, path);
                    }
                    None => out.push(0),
                }
                put_f64(out, decode.sim);
            }
        }
        AnyOutput::Membership(answer) => {
            out.push(u8::from(answer.present));
            put_f64(out, answer.evidence);
            put_f64(out, answer.threshold);
        }
        AnyOutput::Encoded(hv) => put_accum(out, hv),
        AnyOutput::Trained(ack) => {
            put_u32(out, ack.class as u32);
            put_u64(out, ack.examples);
            put_u64(out, ack.retained);
            put_u64(out, ack.epoch);
        }
        AnyOutput::Retrained(report) => {
            put_u32(out, report.epochs_requested);
            put_u32(out, report.epochs_run);
            put_u16(out, report.errors_per_epoch.len() as u16);
            for &errors in &report.errors_per_epoch {
                put_u64(out, errors);
            }
            put_u64(out, report.retained);
            put_u64(out, report.epoch);
        }
        AnyOutput::Classified(classification) => {
            put_u16(out, classification.hits.len() as u16);
            for hit in &classification.hits {
                put_u32(out, hit.class as u32);
                put_f64(out, hit.sim);
            }
            put_u64(out, classification.epoch);
        }
    }
}

fn put_models_body(out: &mut Vec<u8>, models: &[ModelInfo]) {
    put_u32(out, models.len() as u32);
    for model in models {
        put_u16(out, model.name.len() as u16);
        out.extend_from_slice(model.name.as_bytes());
        put_u64(out, model.generation);
    }
}

fn put_histogram_summary(out: &mut Vec<u8>, summary: &HistogramSummary) {
    put_u64(out, summary.count);
    put_u64(out, summary.p50);
    put_u64(out, summary.p95);
    put_u64(out, summary.p99);
}

fn put_stats_body(out: &mut Vec<u8>, stats: &ServingStats) {
    put_u64(out, stats.connections_accepted);
    put_u64(out, stats.connections_closed);
    put_u64(out, stats.requests_received);
    put_u64(out, stats.responses_sent);
    put_u64(out, stats.protocol_errors);
    put_u64(out, stats.batches_dispatched);
    put_histogram_summary(out, &stats.coalesced_batch);
    put_histogram_summary(out, &stats.e2e_latency_ns);
    // Robustness counters, appended after the original fields so an old
    // client's decoder (which stops before them) still reads the rest.
    put_u64(out, stats.requests_shed);
    put_u64(out, stats.deadline_expired);
    put_u64(out, stats.ops_panicked);
}

// ---------------------------------------------------------------------------
// Body decoders
// ---------------------------------------------------------------------------

fn get_accum(cursor: &mut Cursor<'_>) -> Result<AccumHv, WireError> {
    let dim = cursor.u32()? as usize;
    let width = cursor.u8()? as usize;
    if !matches!(width, 1 | 2 | 4) {
        return Err(WireError::Corrupt(format!(
            "accumulator component width {width} (must be 1, 2, or 4)"
        )));
    }
    let byte_len = dim
        .checked_mul(width)
        .ok_or_else(|| WireError::Corrupt(format!("accumulator dimension {dim} overflows")))?;
    let bytes = cursor.take(byte_len)?;
    let components: Vec<i32> = match width {
        1 => bytes.iter().map(|&b| b as i8 as i32).collect(),
        2 => bytes
            .chunks_exact(2)
            .map(|pair| i16::from_le_bytes([pair[0], pair[1]]) as i32)
            .collect(),
        _ => bytes
            .chunks_exact(4)
            .map(|quad| i32::from_le_bytes([quad[0], quad[1], quad[2], quad[3]]))
            .collect(),
    };
    if components.is_empty() {
        return Err(WireError::Corrupt("zero-dimension accumulator".into()));
    }
    Ok(AccumHv::from_components(components))
}

fn get_path(cursor: &mut Cursor<'_>) -> Result<ItemPath, WireError> {
    let depth = cursor.u16()? as usize;
    if depth == 0 {
        return Err(WireError::Corrupt("zero-depth item path".into()));
    }
    let mut indices = Vec::with_capacity(depth);
    for _ in 0..depth {
        indices.push(cursor.u16()?);
    }
    Ok(ItemPath::new(indices))
}

fn get_presence(cursor: &mut Cursor<'_>) -> Result<bool, WireError> {
    match cursor.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(WireError::Corrupt(format!("presence byte {other}"))),
    }
}

fn get_object(cursor: &mut Cursor<'_>) -> Result<ObjectSpec, WireError> {
    let classes = cursor.u16()? as usize;
    let mut assignments = Vec::with_capacity(classes);
    for _ in 0..classes {
        assignments.push(if get_presence(cursor)? {
            Some(get_path(cursor)?)
        } else {
            None
        });
    }
    Ok(ObjectSpec::new(assignments))
}

fn get_scene(cursor: &mut Cursor<'_>) -> Result<Scene, WireError> {
    let count = cursor.u16()? as usize;
    let mut objects = Vec::with_capacity(count);
    for _ in 0..count {
        objects.push(get_object(cursor)?);
    }
    Ok(Scene::new(objects))
}

fn get_decoded_object(cursor: &mut Cursor<'_>) -> Result<DecodedObject, WireError> {
    let object = get_object(cursor)?;
    let confidence = cursor.f64()?;
    Ok(DecodedObject::from_parts(object, confidence))
}

fn get_op_body(kind: OpKind, cursor: &mut Cursor<'_>) -> Result<AnyOp, WireError> {
    Ok(match kind {
        OpKind::Rep1 => AnyOp::Rep1(FactorizeRep1 {
            scene: get_accum(cursor)?,
        }),
        OpKind::Rep2 => AnyOp::Rep2(FactorizeRep2 {
            scene: get_accum(cursor)?,
        }),
        OpKind::Rep3 => AnyOp::Rep3(FactorizeRep3 {
            scene: get_accum(cursor)?,
        }),
        OpKind::Partial => {
            let scene = get_accum(cursor)?;
            let count = cursor.u16()? as usize;
            let mut classes = Vec::with_capacity(count);
            for _ in 0..count {
                classes.push(cursor.u32()? as usize);
            }
            AnyOp::Partial(PartialDecode { scene, classes })
        }
        OpKind::Membership => {
            let scene = get_accum(cursor)?;
            let item_count = cursor.u16()? as usize;
            let mut items = Vec::with_capacity(item_count);
            for _ in 0..item_count {
                let class = cursor.u32()? as usize;
                items.push((class, get_path(cursor)?));
            }
            let absent_count = cursor.u16()? as usize;
            let mut absent = Vec::with_capacity(absent_count);
            for _ in 0..absent_count {
                absent.push(cursor.u32()? as usize);
            }
            AnyOp::Membership(MembershipProbe {
                scene,
                items,
                absent,
            })
        }
        OpKind::Encode => AnyOp::Encode(EncodeScene {
            scene: get_scene(cursor)?,
        }),
        OpKind::Train => {
            let class = cursor.u32()? as usize;
            let sample = cursor.u64()?;
            let retain = get_presence(cursor)?;
            let example = get_accum(cursor)?;
            AnyOp::Train(Train {
                class,
                sample,
                example,
                retain,
            })
        }
        OpKind::Retrain => AnyOp::Retrain(Retrain {
            epochs: cursor.u32()?,
        }),
        OpKind::Classify => {
            let top_k = cursor.u16()? as usize;
            let query = get_accum(cursor)?;
            AnyOp::Classify(Classify { query, top_k })
        }
    })
}

fn get_output_body(kind: OpKind, cursor: &mut Cursor<'_>) -> Result<AnyOutput, WireError> {
    Ok(match kind {
        OpKind::Rep1 => AnyOutput::Rep1(get_decoded_object(cursor)?),
        OpKind::Rep2 => AnyOutput::Rep2(get_decoded_object(cursor)?),
        OpKind::Rep3 => {
            let count = cursor.u16()? as usize;
            let mut objects = Vec::with_capacity(count);
            for _ in 0..count {
                objects.push(get_decoded_object(cursor)?);
            }
            let stats = FactorizeStats {
                similarity_checks: cursor.u64()?,
                combination_tests: cursor.u64()?,
                unbind_ops: cursor.u64()?,
                objects_found: cursor.u64()? as usize,
                truncated_combinations: get_presence(cursor)?,
            };
            let residual_norm = cursor.f64()?;
            AnyOutput::Rep3(DecodedScene {
                objects,
                stats,
                residual_norm,
            })
        }
        OpKind::Partial => {
            let count = cursor.u16()? as usize;
            let mut decodes = Vec::with_capacity(count);
            for _ in 0..count {
                let class = cursor.u32()? as usize;
                let path = if get_presence(cursor)? {
                    Some(get_path(cursor)?)
                } else {
                    None
                };
                let sim = cursor.f64()?;
                decodes.push(ClassDecode { class, path, sim });
            }
            AnyOutput::Partial(decodes)
        }
        OpKind::Membership => AnyOutput::Membership(QueryAnswer {
            present: get_presence(cursor)?,
            evidence: cursor.f64()?,
            threshold: cursor.f64()?,
        }),
        OpKind::Encode => AnyOutput::Encoded(get_accum(cursor)?),
        OpKind::Train => AnyOutput::Trained(TrainAck {
            class: cursor.u32()? as usize,
            examples: cursor.u64()?,
            retained: cursor.u64()?,
            epoch: cursor.u64()?,
        }),
        OpKind::Retrain => {
            let epochs_requested = cursor.u32()?;
            let epochs_run = cursor.u32()?;
            let count = cursor.u16()? as usize;
            let mut errors_per_epoch = Vec::with_capacity(count);
            for _ in 0..count {
                errors_per_epoch.push(cursor.u64()?);
            }
            AnyOutput::Retrained(RetrainReport {
                epochs_requested,
                epochs_run,
                errors_per_epoch,
                retained: cursor.u64()?,
                epoch: cursor.u64()?,
            })
        }
        OpKind::Classify => {
            let count = cursor.u16()? as usize;
            let mut hits = Vec::with_capacity(count);
            for _ in 0..count {
                let class = cursor.u32()? as usize;
                let sim = cursor.f64()?;
                hits.push(ClassHit { class, sim });
            }
            AnyOutput::Classified(Classification {
                hits,
                epoch: cursor.u64()?,
            })
        }
    })
}

fn get_models_body(cursor: &mut Cursor<'_>) -> Result<Vec<ModelInfo>, WireError> {
    let count = cursor.u32()? as usize;
    let mut models = Vec::new();
    for _ in 0..count {
        let name_len = cursor.u16()? as usize;
        let name_bytes = cursor.take(name_len)?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| WireError::Corrupt("model name is not UTF-8".into()))?
            .to_owned();
        let generation = cursor.u64()?;
        models.push(ModelInfo { name, generation });
    }
    Ok(models)
}

fn get_histogram_summary(cursor: &mut Cursor<'_>) -> Result<HistogramSummary, WireError> {
    Ok(HistogramSummary {
        count: cursor.u64()?,
        p50: cursor.u64()?,
        p95: cursor.u64()?,
        p99: cursor.u64()?,
    })
}

fn get_stats_body(cursor: &mut Cursor<'_>) -> Result<ServingStats, WireError> {
    let mut stats = ServingStats {
        connections_accepted: cursor.u64()?,
        connections_closed: cursor.u64()?,
        requests_received: cursor.u64()?,
        responses_sent: cursor.u64()?,
        protocol_errors: cursor.u64()?,
        batches_dispatched: cursor.u64()?,
        coalesced_batch: get_histogram_summary(cursor)?,
        e2e_latency_ns: get_histogram_summary(cursor)?,
        ..ServingStats::default()
    };
    // The robustness counters were appended to the body later; a stats
    // frame from a server that predates them simply ends here, and they
    // stay zero. (Tolerant decode = new client ↔ old server works.)
    if cursor.remaining() > 0 {
        stats.requests_shed = cursor.u64()?;
        stats.deadline_expired = cursor.u64()?;
        stats.ops_panicked = cursor.u64()?;
    }
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Payload assembly
// ---------------------------------------------------------------------------

fn op_kind_from_byte(byte: u8) -> Option<OpKind> {
    OpKind::ALL
        .into_iter()
        .find(|kind| kind.index() as u8 == byte)
}

/// Builds a full payload: header, body, checksum trailer. No deadline —
/// the frame is byte-identical to the pre-deadline encoding.
fn seal(kind: u8, request_id: u64, body: &[u8]) -> Vec<u8> {
    seal_with(kind, request_id, None, body)
}

/// Builds a full payload, optionally carrying a deadline budget (sets
/// flag bit 0 and inserts the microsecond field after the request id).
fn seal_with(kind: u8, request_id: u64, deadline_micros: Option<u64>, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(MIN_PAYLOAD_BYTES + 8 + body.len());
    payload.extend_from_slice(&MAGIC);
    payload.extend_from_slice(&VERSION.to_le_bytes());
    payload.push(kind);
    payload.push(if deadline_micros.is_some() {
        FLAG_DEADLINE
    } else {
        0
    });
    payload.extend_from_slice(&request_id.to_le_bytes());
    if let Some(micros) = deadline_micros {
        payload.extend_from_slice(&micros.to_le_bytes());
    }
    payload.extend_from_slice(body);
    let checksum = fnv1a(&payload);
    payload.extend_from_slice(&checksum.to_le_bytes());
    payload
}

/// A verified frame header: `(kind, request id, deadline budget in
/// microseconds, body)`.
type OpenedFrame<'a> = (u8, u64, Option<u64>, &'a [u8]);

/// Verifies magic, version, checksum, and flags; returns the
/// [`OpenedFrame`] on success. Any flag bit other than [`FLAG_DEADLINE`]
/// is rejected as [`WireError::Corrupt`] so a future flag's extra field
/// can never be misread as body bytes.
fn open(payload: &[u8]) -> Result<OpenedFrame<'_>, WireError> {
    if payload.len() < MIN_PAYLOAD_BYTES {
        return Err(WireError::Truncated {
            needed: MIN_PAYLOAD_BYTES,
            remaining: payload.len(),
        });
    }
    // The slice-to-array conversions below cannot fail: each slice is
    // taken with a constant length that matches the array, and the
    // length check above guarantees the bytes exist.
    let found: [u8; 4] = payload[..4].try_into().expect("4 bytes");
    if found != MAGIC {
        return Err(WireError::BadMagic { found });
    }
    let version = u16::from_le_bytes(payload[4..6].try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let split = payload.len() - TRAILER_BYTES;
    let stored = u64::from_le_bytes(payload[split..].try_into().expect("8 bytes"));
    let computed = fnv1a(&payload[..split]);
    if stored != computed {
        return Err(WireError::ChecksumMismatch { stored, computed });
    }
    let flags = payload[7];
    if flags & !FLAG_DEADLINE != 0 {
        return Err(WireError::Corrupt(format!(
            "unknown header flag bits {flags:#04x}"
        )));
    }
    let kind = payload[6];
    let request_id = u64::from_le_bytes(payload[8..16].try_into().expect("8 bytes"));
    let mut body = &payload[HEADER_BYTES..split];
    let deadline_micros = if flags & FLAG_DEADLINE != 0 {
        if body.len() < 8 {
            return Err(WireError::Truncated {
                needed: 8,
                remaining: body.len(),
            });
        }
        let micros = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
        body = &body[8..];
        Some(micros)
    } else {
        None
    };
    Ok((kind, request_id, deadline_micros, body))
}

/// Encodes one request into a payload (frame it with [`write_frame`] or
/// [`append_frame`]).
pub fn encode_request(request_id: u64, request: &Request) -> Vec<u8> {
    let (kind, deadline_micros, body) = match request {
        Request::Op {
            model,
            op,
            deadline,
        } => {
            let mut body = Vec::new();
            put_u16(&mut body, model.len() as u16);
            body.extend_from_slice(model.as_bytes());
            put_op_body(&mut body, op);
            // Saturate rather than wrap: a budget beyond ~584k years is
            // indistinguishable from "no hurry".
            let micros = deadline.map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
            (op.kind().index() as u8, micros, body)
        }
        Request::Stats => (KIND_STATS, None, Vec::new()),
        Request::Ping => (KIND_PING, None, Vec::new()),
        Request::ListModels => (KIND_LIST_MODELS, None, Vec::new()),
    };
    seal_with(kind, request_id, deadline_micros, &body)
}

/// Decodes one request payload into `(request id, request)`.
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), WireError> {
    let (kind, request_id, deadline_micros, body) = open(payload)?;
    let mut cursor = Cursor::new(body);
    let request = match kind {
        KIND_STATS | KIND_PING | KIND_LIST_MODELS => {
            if deadline_micros.is_some() {
                return Err(WireError::Corrupt(
                    "deadline flag on a non-op request".into(),
                ));
            }
            match kind {
                KIND_STATS => Request::Stats,
                KIND_PING => Request::Ping,
                _ => Request::ListModels,
            }
        }
        byte => {
            let op_kind = op_kind_from_byte(byte).ok_or(WireError::UnknownKind(byte))?;
            let name_len = cursor.u16()? as usize;
            let name_bytes = cursor.take(name_len)?;
            let model = std::str::from_utf8(name_bytes)
                .map_err(|_| WireError::Corrupt("model name is not UTF-8".into()))?
                .to_owned();
            let op = get_op_body(op_kind, &mut cursor)?;
            Request::Op {
                model,
                op,
                deadline: deadline_micros.map(Duration::from_micros),
            }
        }
    };
    cursor.done()?;
    Ok((request_id, request))
}

/// Encodes one response into a payload.
pub fn encode_response(request_id: u64, response: &Response) -> Vec<u8> {
    let (kind, body) = match response {
        Response::Output(output) => {
            let mut body = Vec::new();
            put_output_body(&mut body, output);
            (output.kind().index() as u8, body)
        }
        Response::Stats(stats) => {
            let mut body = Vec::new();
            put_stats_body(&mut body, stats);
            (KIND_STATS, body)
        }
        Response::Pong => (KIND_PING, Vec::new()),
        Response::Models(models) => {
            let mut body = Vec::new();
            put_models_body(&mut body, models);
            (KIND_LIST_MODELS, body)
        }
        Response::Error { code, message } => {
            let mut body = Vec::new();
            put_u16(&mut body, code.to_u16());
            let end = message
                .char_indices()
                .map(|(at, ch)| at + ch.len_utf8())
                .take_while(|&end| end <= MAX_ERROR_MESSAGE_BYTES)
                .last()
                .unwrap_or(0);
            let clipped = &message[..end];
            put_u16(&mut body, clipped.len() as u16);
            body.extend_from_slice(clipped.as_bytes());
            (KIND_ERROR, body)
        }
    };
    seal(kind, request_id, &body)
}

/// Decodes one response payload into `(request id, response)`.
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), WireError> {
    let (kind, request_id, deadline_micros, body) = open(payload)?;
    if deadline_micros.is_some() {
        return Err(WireError::Corrupt("deadline flag on a response".into()));
    }
    let mut cursor = Cursor::new(body);
    let response = match kind {
        KIND_STATS => Response::Stats(get_stats_body(&mut cursor)?),
        KIND_PING => Response::Pong,
        KIND_LIST_MODELS => Response::Models(get_models_body(&mut cursor)?),
        KIND_ERROR => {
            let code = ErrorCode::from_u16(cursor.u16()?);
            let message_len = cursor.u16()? as usize;
            let message_bytes = cursor.take(message_len)?;
            let message = std::str::from_utf8(message_bytes)
                .map_err(|_| WireError::Corrupt("error message is not UTF-8".into()))?
                .to_owned();
            Response::Error { code, message }
        }
        byte => {
            let op_kind = op_kind_from_byte(byte).ok_or(WireError::UnknownKind(byte))?;
            Response::Output(get_output_body(op_kind, &mut cursor)?)
        }
    };
    cursor.done()?;
    Ok((request_id, response))
}

/// Best-effort request-id extraction from a payload that may fail full
/// decoding, so a typed error response can still be routed. `None` when
/// the payload is too short to contain the id field.
pub fn peek_request_id(payload: &[u8]) -> Option<u64> {
    payload
        .get(8..16)
        .map(|bytes| u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame. Does not flush.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    writer.write_all(&(payload.len() as u32).to_le_bytes())?;
    writer.write_all(payload)
}

/// Appends one length-prefixed frame to a buffer — how the load
/// generator pre-assembles a whole burst into a single write.
pub fn append_frame(buf: &mut Vec<u8>, payload: &[u8]) {
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on clean EOF at
/// a frame boundary; EOF mid-frame is an I/O error, and a length prefix
/// above `max_payload_bytes` is [`WireError::FrameTooLarge`] (the
/// payload is not read).
pub fn read_frame(
    reader: &mut impl Read,
    max_payload_bytes: usize,
) -> Result<Option<Vec<u8>>, ServeError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match reader.read(&mut prefix[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(ServeError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length prefix",
                )));
            }
            Ok(n) => filled += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(ServeError::Io(err)),
        }
    }
    let declared = u32::from_le_bytes(prefix) as usize;
    if declared > max_payload_bytes {
        return Err(ServeError::Wire(WireError::FrameTooLarge {
            declared,
            max: max_payload_bytes,
        }));
    }
    let mut payload = vec![0u8; declared];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips_through_a_buffer() {
        let payload = seal(KIND_PING, 7, &[]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut appended = Vec::new();
        append_frame(&mut appended, &payload);
        assert_eq!(buf, appended);

        let mut reader = &buf[..];
        let read = read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .expect("one frame");
        assert_eq!(read, payload);
        assert!(read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .is_none());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut &buf[..], 1024).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Wire(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn eof_inside_prefix_is_an_io_error() {
        let buf = [1u8, 0];
        let err = read_frame(&mut &buf[..], 1024).unwrap_err();
        assert!(matches!(err, ServeError::Io(_)));
    }

    #[test]
    fn ping_and_stats_round_trip() {
        for (id, request) in [(0u64, Request::Ping), (u64::MAX, Request::Stats)] {
            let payload = encode_request(id, &request);
            assert_eq!(decode_request(&payload).unwrap(), (id, request));
        }
        let stats = ServingStats {
            requests_received: 17,
            coalesced_batch: HistogramSummary {
                count: 3,
                p50: 63,
                p95: 63,
                p99: 63,
            },
            ..ServingStats::default()
        };
        let payload = encode_response(9, &Response::Stats(stats));
        assert_eq!(
            decode_response(&payload).unwrap(),
            (9, Response::Stats(stats))
        );
    }

    #[test]
    fn error_message_is_clipped_at_the_cap() {
        let long = "é".repeat(MAX_ERROR_MESSAGE_BYTES); // 2 bytes per char
        let payload = encode_response(
            1,
            &Response::Error {
                code: ErrorCode::Engine,
                message: long,
            },
        );
        let (_, decoded) = decode_response(&payload).unwrap();
        match decoded {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::Engine);
                assert!(message.len() <= MAX_ERROR_MESSAGE_BYTES);
                assert_eq!(message.len(), MAX_ERROR_MESSAGE_BYTES); // even split
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn learning_ops_and_outputs_round_trip() {
        let example = AccumHv::from_components(vec![3, -2, 0, 7]);
        let requests = [
            Request::Op {
                model: "tenant-a".into(),
                op: AnyOp::Train(Train {
                    class: 2,
                    sample: 41,
                    example: example.clone(),
                    retain: true,
                }),
                deadline: None,
            },
            Request::Op {
                model: "tenant-a".into(),
                op: AnyOp::Retrain(Retrain { epochs: 9 }),
                deadline: Some(Duration::from_millis(250)),
            },
            Request::Op {
                model: "tenant-b".into(),
                op: AnyOp::Classify(Classify {
                    query: example,
                    top_k: 3,
                }),
                deadline: None,
            },
        ];
        for (id, request) in requests.into_iter().enumerate() {
            let payload = encode_request(id as u64, &request);
            assert_eq!(decode_request(&payload).unwrap(), (id as u64, request));
        }

        let outputs = [
            AnyOutput::Trained(TrainAck {
                class: 2,
                examples: 100,
                retained: 64,
                epoch: 5,
            }),
            AnyOutput::Retrained(RetrainReport {
                epochs_requested: 9,
                epochs_run: 4,
                errors_per_epoch: vec![17, 6, 1, 0],
                retained: 64,
                epoch: 9,
            }),
            AnyOutput::Classified(Classification {
                hits: vec![
                    ClassHit {
                        class: 2,
                        sim: 0.75,
                    },
                    ClassHit {
                        class: 0,
                        sim: -0.125,
                    },
                ],
                epoch: 9,
            }),
        ];
        for (id, output) in outputs.into_iter().enumerate() {
            let payload = encode_response(id as u64, &Response::Output(output.clone()));
            assert_eq!(
                decode_response(&payload).unwrap(),
                (id as u64, Response::Output(output))
            );
        }
    }

    #[test]
    fn list_models_round_trips() {
        let payload = encode_request(5, &Request::ListModels);
        assert_eq!(decode_request(&payload).unwrap(), (5, Request::ListModels));

        for models in [
            Vec::new(),
            vec![
                ModelInfo {
                    name: "alpha".into(),
                    generation: 3,
                },
                ModelInfo {
                    name: "beta".into(),
                    generation: 17,
                },
            ],
        ] {
            let payload = encode_response(6, &Response::Models(models.clone()));
            assert_eq!(
                decode_response(&payload).unwrap(),
                (6, Response::Models(models))
            );
        }
    }

    #[test]
    fn peek_request_id_matches_decode() {
        let payload = encode_request(0xDEAD_BEEF, &Request::Ping);
        assert_eq!(peek_request_id(&payload), Some(0xDEAD_BEEF));
        assert_eq!(peek_request_id(&payload[..12]), None);
    }

    fn op_request(deadline: Option<Duration>) -> Request {
        Request::Op {
            model: "m".into(),
            op: AnyOp::Retrain(Retrain { epochs: 1 }),
            deadline,
        }
    }

    #[test]
    fn deadline_round_trips_at_microsecond_granularity() {
        let request = op_request(Some(Duration::from_micros(1_234_567)));
        let payload = encode_request(3, &request);
        assert_eq!(decode_request(&payload).unwrap(), (3, request));
    }

    /// A deadline-free frame must be byte-identical to the pre-deadline
    /// encoding (flags byte zero, no extra field) — this is the whole
    /// version-skew story for old servers.
    #[test]
    fn frames_without_deadline_are_byte_identical_to_v1() {
        let payload = encode_request(3, &op_request(None));
        assert_eq!(payload[7], 0, "flags byte must stay zero");
        let with = encode_request(3, &op_request(Some(Duration::from_millis(5))));
        assert_eq!(with[7], FLAG_DEADLINE);
        assert_eq!(with.len(), payload.len() + 8);
    }

    #[test]
    fn unknown_flag_bits_are_rejected_as_corrupt() {
        let mut payload = encode_request(1, &Request::Ping);
        payload[7] = 0x02; // a future flag this build does not know
        let split = payload.len() - TRAILER_BYTES;
        let checksum = fnv1a(&payload[..split]);
        payload[split..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            decode_request(&payload).unwrap_err(),
            WireError::Corrupt(_)
        ));
    }

    #[test]
    fn deadline_flag_on_non_op_request_or_response_is_corrupt() {
        let payload = seal_with(KIND_PING, 1, Some(9), &[]);
        assert!(matches!(
            decode_request(&payload).unwrap_err(),
            WireError::Corrupt(_)
        ));
        let payload = seal_with(KIND_PING, 1, Some(9), &[]);
        assert!(matches!(
            decode_response(&payload).unwrap_err(),
            WireError::Corrupt(_)
        ));
    }

    /// A stats body from a server that predates the robustness counters
    /// (original 6 counters + 2 histograms, nothing appended) decodes
    /// with the new counters at zero — never a decode failure.
    #[test]
    fn stats_from_an_old_server_decode_with_zero_robustness_counters() {
        let stats = ServingStats {
            requests_received: 11,
            requests_shed: 0,
            deadline_expired: 0,
            ops_panicked: 0,
            ..ServingStats::default()
        };
        let mut body = Vec::new();
        // Re-encode only the pre-robustness fields, as an old server would.
        put_u64(&mut body, stats.connections_accepted);
        put_u64(&mut body, stats.connections_closed);
        put_u64(&mut body, stats.requests_received);
        put_u64(&mut body, stats.responses_sent);
        put_u64(&mut body, stats.protocol_errors);
        put_u64(&mut body, stats.batches_dispatched);
        put_histogram_summary(&mut body, &stats.coalesced_batch);
        put_histogram_summary(&mut body, &stats.e2e_latency_ns);
        let payload = seal(KIND_STATS, 4, &body);
        assert_eq!(
            decode_response(&payload).unwrap(),
            (4, Response::Stats(stats))
        );
    }

    /// Simulates a pre-deadline decoder receiving a deadline-bearing
    /// frame: it reads the deadline bytes as body and fails with a typed
    /// error (here the op-kind/body misparse), never a panic — so an old
    /// server answers with a typed protocol error and stays framed.
    #[test]
    fn old_decoder_fails_typed_on_a_deadline_frame() {
        let payload = encode_request(6, &op_request(Some(Duration::from_millis(1))));
        // An old decoder has no flags check and no deadline field: its
        // body starts at HEADER_BYTES unconditionally.
        let split = payload.len() - TRAILER_BYTES;
        let body = &payload[HEADER_BYTES..split];
        let mut cursor = Cursor::new(body);
        let old_view = (|| -> Result<(), WireError> {
            let name_len = cursor.u16()? as usize;
            let name_bytes = cursor.take(name_len)?;
            std::str::from_utf8(name_bytes)
                .map_err(|_| WireError::Corrupt("model name is not UTF-8".into()))?;
            get_op_body(OpKind::Retrain, &mut cursor)?;
            cursor.done()
        })();
        assert!(old_view.is_err(), "misparse must surface as a typed error");
    }
}
