//! Per-server serving telemetry, layered on the engine's metrics
//! machinery (docs/OBSERVABILITY.md).
//!
//! Unlike the engine's process-global tables, serving metrics are
//! per-[`Server`](crate::Server): each server owns one [`ServeMetrics`],
//! so concurrent servers (and tests) never bleed counts into each
//! other. Counters are plain relaxed atomics; the two distributions —
//! coalesced engine-batch sizes and end-to-end request latency — reuse
//! the engine's [`LogHistogram`] (same log2 buckets, same
//! conservative-quantile convention, same `metrics-off` /
//! `set_metrics_recording(false)` gate).
//!
//! A snapshot travels to clients as [`ServingStats`] via the protocol's
//! `Stats` op, with each histogram condensed to a [`HistogramSummary`]
//! (count + p50/p95/p99) to keep the response frame small.

use std::sync::atomic::{AtomicU64, Ordering};

use factorhd_engine::metrics::{HistogramSnapshot, LogHistogram};

/// A histogram condensed for the wire: observation count plus the
/// conservative p50/p95/p99 bucket edges (values are never understated
/// by more than one power of two; see the engine's
/// [`HistogramSnapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Total observations recorded.
    pub count: u64,
    /// Median (upper edge of the bucket holding rank ⌈0.50·count⌉).
    pub p50: u64,
    /// 95th percentile (same bucket-edge convention).
    pub p95: u64,
    /// 99th percentile (same bucket-edge convention).
    pub p99: u64,
}

impl HistogramSummary {
    /// Condenses a full snapshot to the wire summary.
    pub fn from_snapshot(snapshot: &HistogramSnapshot) -> Self {
        HistogramSummary {
            count: snapshot.count,
            p50: snapshot.p50,
            p95: snapshot.p95,
            p99: snapshot.p99,
        }
    }
}

/// A point-in-time copy of one server's counters and distributions —
/// what the protocol's `Stats` op returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServingStats {
    /// Connections the accept loop has handed to reader threads.
    pub connections_accepted: u64,
    /// Connections whose reader thread has exited.
    pub connections_closed: u64,
    /// Frames that decoded into a request (op, stats, or ping).
    pub requests_received: u64,
    /// Response frames written back to clients.
    pub responses_sent: u64,
    /// Frames that failed to decode (answered with a typed protocol
    /// error when the request id could be salvaged).
    pub protocol_errors: u64,
    /// Engine batches the adaptive batcher has dispatched.
    pub batches_dispatched: u64,
    /// Distribution of coalesced engine-batch sizes.
    pub coalesced_batch: HistogramSummary,
    /// Distribution of end-to-end request latency (frame decoded →
    /// response written), in nanoseconds. **Admitted requests only** —
    /// shed and deadline-expired requests are answered in microseconds
    /// and would drag the distribution into meaninglessness under
    /// overload (docs/ROBUSTNESS.md, "Load shedding").
    pub e2e_latency_ns: HistogramSummary,
    /// Requests refused at admission because the batcher queue was full
    /// (answered with `ErrorCode::Overloaded`, never executed).
    pub requests_shed: u64,
    /// Requests whose deadline expired while queued (answered with
    /// `ErrorCode::DeadlineExceeded` at dequeue, never executed).
    pub deadline_expired: u64,
    /// Ops whose execution panicked; the panic was contained to that
    /// request (`ErrorCode::OpPanicked`) and the batch completed.
    pub ops_panicked: u64,
}

/// One server's telemetry: construct-free counters plus the two
/// serving histograms. Shared as an `Arc` between the accept loop,
/// connection threads, and the batcher worker.
#[derive(Default)]
pub struct ServeMetrics {
    connections_accepted: AtomicU64,
    connections_closed: AtomicU64,
    requests_received: AtomicU64,
    responses_sent: AtomicU64,
    protocol_errors: AtomicU64,
    batches_dispatched: AtomicU64,
    requests_shed: AtomicU64,
    deadline_expired: AtomicU64,
    ops_panicked: AtomicU64,
    coalesced_batch: LogHistogram,
    e2e_latency_ns: LogHistogram,
}

impl ServeMetrics {
    /// A new, zeroed metrics block.
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    pub(crate) fn connection_accepted(&self) {
        self.connections_accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn connection_closed(&self) {
        self.connections_closed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn request_received(&self) {
        self.requests_received.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn response_sent(&self) {
        self.responses_sent.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn batch_dispatched(&self, coalesced: u64) {
        self.batches_dispatched.fetch_add(1, Ordering::Relaxed);
        self.coalesced_batch.record(coalesced);
    }

    pub(crate) fn e2e_latency(&self, nanos: u64) {
        self.e2e_latency_ns.record(nanos);
    }

    pub(crate) fn request_shed(&self) {
        self.requests_shed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn op_panicked(&self) {
        self.ops_panicked.fetch_add(1, Ordering::Relaxed);
    }

    /// The full (bucketed) snapshot of the coalesced-batch-size
    /// distribution, for bench documents that want the buckets.
    pub fn coalesced_batch_snapshot(&self) -> HistogramSnapshot {
        self.coalesced_batch.snapshot()
    }

    /// The full (bucketed) snapshot of the end-to-end latency
    /// distribution.
    pub fn e2e_latency_snapshot(&self) -> HistogramSnapshot {
        self.e2e_latency_ns.snapshot()
    }

    /// Copies every counter and condenses both histograms.
    pub fn stats(&self) -> ServingStats {
        ServingStats {
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_closed: self.connections_closed.load(Ordering::Relaxed),
            requests_received: self.requests_received.load(Ordering::Relaxed),
            responses_sent: self.responses_sent.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            batches_dispatched: self.batches_dispatched.load(Ordering::Relaxed),
            coalesced_batch: HistogramSummary::from_snapshot(&self.coalesced_batch.snapshot()),
            e2e_latency_ns: HistogramSummary::from_snapshot(&self.e2e_latency_ns.snapshot()),
            requests_shed: self.requests_shed.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            ops_panicked: self.ops_panicked.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let metrics = ServeMetrics::new();
        metrics.connection_accepted();
        metrics.request_received();
        metrics.request_received();
        metrics.response_sent();
        metrics.protocol_error();
        metrics.batch_dispatched(2);
        metrics.batch_dispatched(64);
        metrics.e2e_latency(1_000);
        metrics.request_shed();
        metrics.deadline_expired();
        metrics.deadline_expired();
        metrics.op_panicked();
        metrics.connection_closed();

        let stats = metrics.stats();
        assert_eq!(stats.connections_accepted, 1);
        assert_eq!(stats.connections_closed, 1);
        assert_eq!(stats.requests_received, 2);
        assert_eq!(stats.responses_sent, 1);
        assert_eq!(stats.protocol_errors, 1);
        assert_eq!(stats.batches_dispatched, 2);
        assert_eq!(stats.requests_shed, 1);
        assert_eq!(stats.deadline_expired, 2);
        assert_eq!(stats.ops_panicked, 1);
        if factorhd_engine::metrics::snapshot().recording {
            assert_eq!(stats.coalesced_batch.count, 2);
            assert_eq!(stats.e2e_latency_ns.count, 1);
        }
    }
}
