//! A loopback fault-injecting TCP proxy for the chaos test battery
//! (docs/ROBUSTNESS.md, "Chaos harness").
//!
//! [`ChaosProxy`] sits between a [`Client`](crate::Client) and a
//! [`Server`](crate::Server) on loopback and corrupts traffic in
//! precisely controlled ways — truncate the byte stream mid-frame, flip
//! a single bit, hard-drop the connection after N bytes, or delay every
//! chunk. Each direction carries its own independent [`ChaosFault`], so
//! a test can corrupt a request without touching responses (and vice
//! versa).
//!
//! The point of proxy-level faults (vs. mocked streams) is that the
//! real server and the real client see them through real sockets: the
//! assertions in `tests/chaos.rs` — typed errors only, zero lost
//! request ids, the server keeps answering — hold against the exact
//! code that serves production traffic.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// One per-direction fault. Byte offsets count from the start of the
/// connection's stream in that direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFault {
    /// Forward only the first `n` bytes, then half-close the write
    /// side: the receiver sees EOF, possibly mid-frame.
    TruncateAfter(usize),
    /// Invert one bit (`1 << (bit % 8)`) of the byte at stream offset
    /// `offset`; everything else passes through untouched. The frame's
    /// checksum must catch it.
    FlipBit {
        /// Stream offset of the byte to corrupt.
        offset: usize,
        /// Which bit of that byte to invert (taken modulo 8).
        bit: u8,
    },
    /// Forward `n` bytes, then hard-close **both** directions of the
    /// connection — a mid-flight disconnect.
    DropAfter(usize),
    /// Sleep this long before forwarding each chunk — a slow network
    /// (or a deliberate drip-feed when combined with small writes).
    DelayChunks(Duration),
}

struct ProxyShared {
    shutting_down: AtomicBool,
    /// Clones of every live stream (both legs of every connection), so
    /// shutdown can unblock all pump threads.
    streams: Mutex<Vec<TcpStream>>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
}

/// A running loopback proxy; connect clients to
/// [`local_addr`](ChaosProxy::local_addr) instead of the server.
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<ProxyShared>,
    accept_worker: Mutex<Option<thread::JoinHandle<()>>>,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port and starts proxying to
    /// `upstream`, applying `client_to_server` to request bytes and
    /// `server_to_client` to response bytes (either may be `None` for a
    /// clean direction). Faults apply per connection.
    pub fn start(
        upstream: SocketAddr,
        client_to_server: Option<ChaosFault>,
        server_to_client: Option<ChaosFault>,
    ) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            shutting_down: AtomicBool::new(false),
            streams: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
        });
        let accept_worker = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("factorhd-chaos-accept".into())
                .spawn(move || {
                    accept_loop(
                        &listener,
                        upstream,
                        client_to_server,
                        server_to_client,
                        &shared,
                    )
                })?
        };
        Ok(ChaosProxy {
            addr,
            shared,
            accept_worker: Mutex::new(Some(accept_worker)),
        })
    }

    /// The proxy's listening address — what the client under test dials.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, severs every proxied connection, and joins all
    /// pump threads. Idempotent; also runs on drop.
    pub fn shutdown(&self) {
        if self.shared.shutting_down.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(worker) = lock(&self.accept_worker).take() {
            let _ = worker.join();
        }
        for stream in lock(&self.shared.streams).drain(..) {
            let _ = stream.shutdown(Shutdown::Both);
        }
        let workers = std::mem::take(&mut *lock(&self.shared.workers));
        for worker in workers {
            let _ = worker.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Locks a mutex, recovering from poisoning — the proxy must keep
/// tearing connections down even mid-chaos.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn accept_loop(
    listener: &TcpListener,
    upstream: SocketAddr,
    client_to_server: Option<ChaosFault>,
    server_to_client: Option<ChaosFault>,
    shared: &Arc<ProxyShared>,
) {
    loop {
        let downstream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let Ok(upstream_stream) = TcpStream::connect(upstream) else {
            // Upstream refused; drop the client, keep accepting.
            continue;
        };
        let _ = downstream.set_nodelay(true);
        let _ = upstream_stream.set_nodelay(true);
        {
            let mut streams = lock(&shared.streams);
            if let Ok(clone) = downstream.try_clone() {
                streams.push(clone);
            }
            if let Ok(clone) = upstream_stream.try_clone() {
                streams.push(clone);
            }
        }
        let legs = [
            (
                downstream.try_clone(),
                upstream_stream.try_clone(),
                client_to_server,
                "factorhd-chaos-c2s",
            ),
            (
                Ok(upstream_stream),
                Ok(downstream),
                server_to_client,
                "factorhd-chaos-s2c",
            ),
        ];
        for (from, to, fault, name) in legs {
            let (Ok(from), Ok(to)) = (from, to) else {
                continue;
            };
            let spawned = thread::Builder::new()
                .name(name.into())
                .spawn(move || pump(from, to, fault));
            if let Ok(handle) = spawned {
                lock(&shared.workers).push(handle);
            }
        }
    }
}

/// Copies bytes `from` → `to`, applying `fault`. Exits (closing its
/// write side) on EOF, I/O failure, or a terminal fault.
fn pump(mut from: TcpStream, to: TcpStream, fault: Option<ChaosFault>) {
    let mut writer = to;
    let mut buf = [0u8; 4096];
    let mut offset = 0usize;
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let chunk = &mut buf[..n];
        match fault {
            None => {}
            Some(ChaosFault::DelayChunks(delay)) => thread::sleep(delay),
            Some(ChaosFault::FlipBit { offset: at, bit }) if at >= offset && at < offset + n => {
                chunk[at - offset] ^= 1 << (bit % 8);
            }
            Some(ChaosFault::FlipBit { .. }) => {}
            Some(ChaosFault::TruncateAfter(limit)) => {
                if offset >= limit {
                    let _ = writer.shutdown(Shutdown::Write);
                    return;
                }
                if offset + n > limit {
                    let keep = limit - offset;
                    let _ = writer.write_all(&chunk[..keep]);
                    let _ = writer.flush();
                    let _ = writer.shutdown(Shutdown::Write);
                    return;
                }
            }
            Some(ChaosFault::DropAfter(limit)) if offset + n > limit => {
                let keep = limit.saturating_sub(offset);
                let _ = writer.write_all(&chunk[..keep]);
                let _ = writer.flush();
                // A hard disconnect: both directions die at once.
                let _ = writer.shutdown(Shutdown::Both);
                let _ = from.shutdown(Shutdown::Both);
                return;
            }
            Some(ChaosFault::DropAfter(_)) => {}
        }
        offset += n;
        if writer.write_all(chunk).is_err() || writer.flush().is_err() {
            break;
        }
    }
    let _ = writer.shutdown(Shutdown::Write);
}
