//! A blocking TCP client for the wire protocol.
//!
//! [`Client`] owns one connection. [`Client::run`] is the simple path
//! (one op in flight); [`Client::run_pipelined`] keeps a whole burst of
//! ops in flight at once — the shape that lets the server's adaptive
//! batcher coalesce work from few connections, and what the loopback
//! load generator uses.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use factorhd_engine::{AnyOp, AnyOutput, ModelInfo};

use crate::error::ServeError;
use crate::metrics::ServingStats;
use crate::protocol::{
    append_frame, decode_response, encode_request, read_frame, write_frame, Request, Response,
    DEFAULT_MAX_FRAME_BYTES,
};

/// One blocking protocol connection.
///
/// ```no_run
/// use factorhd_serve::Client;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut client = Client::connect("127.0.0.1:9191")?;
/// client.ping()?;
/// println!("{:?}", client.stats()?);
/// # Ok(())
/// # }
/// ```
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    max_frame_bytes: usize,
}

impl Client {
    /// Connects to a server (with `TCP_NODELAY`, matching the server
    /// side).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        // Sized above a typical scene-op frame, matching the server's
        // per-connection buffers, so bursts coalesce into few syscalls.
        let reader = BufReader::with_capacity(1 << 16, stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::with_capacity(1 << 16, stream),
            next_id: 0,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    fn send(&mut self, request_id: u64, request: &Request) -> Result<(), ServeError> {
        let payload = encode_request(request_id, request);
        write_frame(&mut self.writer, &payload)?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<(u64, Response), ServeError> {
        let payload =
            read_frame(&mut self.reader, self.max_frame_bytes)?.ok_or(ServeError::Closed)?;
        Ok(decode_response(&payload)?)
    }

    /// Sends one request and waits for its response, checking the
    /// echoed request id.
    fn call(&mut self, request: &Request) -> Result<Response, ServeError> {
        let request_id = self.fresh_id();
        self.send(request_id, request)?;
        let (echoed, response) = self.recv()?;
        if echoed != request_id {
            return Err(ServeError::UnexpectedResponse(format!(
                "response for request {echoed}, expected {request_id}"
            )));
        }
        Ok(response)
    }

    /// Runs one typed op against a named model and returns its typed
    /// output; a typed server error becomes [`ServeError::Remote`].
    pub fn run(&mut self, model: &str, op: &AnyOp) -> Result<AnyOutput, ServeError> {
        match self.call(&Request::Op {
            model: model.to_owned(),
            op: op.clone(),
        })? {
            Response::Output(output) => Ok(output),
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches the server's [`ServingStats`].
    pub fn stats(&mut self) -> Result<ServingStats, ServeError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Lists the server's registered models (name + generation, sorted
    /// by name).
    pub fn list_models(&mut self) -> Result<Vec<ModelInfo>, ServeError> {
        match self.call(&Request::ListModels)? {
            Response::Models(models) => Ok(models),
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Runs a burst of ops with all of them in flight at once: encodes
    /// every request into one buffer, writes it in a single syscall,
    /// then collects responses (which may arrive in any order) and
    /// returns them in op order. Each slot is `Ok(output)` or the typed
    /// error the server sent for that op; a transport failure fails the
    /// whole call.
    pub fn run_pipelined(
        &mut self,
        model: &str,
        ops: &[AnyOp],
    ) -> Result<Vec<Result<AnyOutput, ServeError>>, ServeError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let base = self.next_id;
        self.next_id = self.next_id.wrapping_add(ops.len() as u64);
        let mut burst = Vec::new();
        for (offset, op) in ops.iter().enumerate() {
            let request = Request::Op {
                model: model.to_owned(),
                op: op.clone(),
            };
            append_frame(
                &mut burst,
                &encode_request(base.wrapping_add(offset as u64), &request),
            );
        }
        self.writer.write_all(&burst)?;
        self.writer.flush()?;

        let mut results: Vec<Option<Result<AnyOutput, ServeError>>> =
            (0..ops.len()).map(|_| None).collect();
        for _ in 0..ops.len() {
            let (request_id, response) = self.recv()?;
            let offset = request_id.wrapping_sub(base) as usize;
            let slot = results.get_mut(offset).ok_or_else(|| {
                ServeError::UnexpectedResponse(format!("response for unknown request {request_id}"))
            })?;
            if slot.is_some() {
                return Err(ServeError::UnexpectedResponse(format!(
                    "duplicate response for request {request_id}"
                )));
            }
            *slot = Some(match response {
                Response::Output(output) => Ok(output),
                Response::Error { code, message } => Err(ServeError::Remote { code, message }),
                other => Err(ServeError::UnexpectedResponse(format!("{other:?}"))),
            });
        }
        Ok(results
            .into_iter()
            .map(|slot| slot.expect("all slots filled"))
            .collect())
    }
}
