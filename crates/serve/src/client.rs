//! A blocking TCP client for the wire protocol.
//!
//! [`Client`] owns one connection. [`Client::run`] is the simple path
//! (one op in flight); [`Client::run_pipelined`] keeps a whole burst of
//! ops in flight at once — the shape that lets the server's adaptive
//! batcher coalesce work from few connections, and what the loopback
//! load generator uses.
//!
//! # Resilience
//!
//! (docs/ROBUSTNESS.md, "Client retry contract".) Configured via
//! [`ClientConfig`]:
//!
//! * **Read timeout** — a response that never arrives fails the call
//!   with a typed I/O error instead of hanging the caller forever.
//! * **Reconnect + bounded retry** — transport failures (connection
//!   reset, timeout, corrupt response stream) and typed `Overloaded`
//!   refusals are retried with capped jittered exponential backoff,
//!   **but only for idempotent ops** ([`AnyOp::is_idempotent`]):
//!   `Train`/`Retrain` mutate model state, and a retry after a timeout
//!   could apply them twice. Non-idempotent ops surface the first
//!   failure to the caller, who owns the dedup decision.
//! * **Default deadline** — attached to every op that doesn't carry its
//!   own, so one slow request can't silently monopolize server queue
//!   space.
//!
//! Retries are transparent to the result but visible in
//! [`Client::retries`], so tests (and capacity planners) can tell a
//! clean run from a stormy one.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use factorhd_engine::{AnyOp, AnyOutput, ModelInfo};

use crate::error::{ErrorCode, ServeError};
use crate::metrics::ServingStats;
use crate::protocol::{
    append_frame, decode_response, encode_request, read_frame, write_frame, Request, Response,
    DEFAULT_MAX_FRAME_BYTES,
};

/// Bounded, jittered exponential backoff for transparent retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `3` means up to 4 attempts).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Backoff cap, reached after a few doublings.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    /// 3 retries, 10 ms base, 500 ms cap.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(500),
        }
    }
}

/// Client knobs; [`Default`] is the resilient configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Fail a blocking read that waits longer than this ([`None`]
    /// waits forever, the pre-robustness behavior).
    pub read_timeout: Option<Duration>,
    /// Deadline attached to ops that don't carry their own ([`None`]
    /// sends no deadline).
    pub default_deadline: Option<Duration>,
    /// Retry policy for idempotent ops; [`None`] disables retries.
    pub retry: Option<RetryPolicy>,
    /// Per-frame payload cap for responses.
    pub max_frame_bytes: usize,
}

impl Default for ClientConfig {
    /// 30 s read timeout, no default deadline, default retries.
    fn default() -> Self {
        ClientConfig {
            read_timeout: Some(Duration::from_secs(30)),
            default_deadline: None,
            retry: Some(RetryPolicy::default()),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// One blocking protocol connection.
///
/// ```no_run
/// use factorhd_serve::Client;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut client = Client::connect("127.0.0.1:9191")?;
/// client.ping()?;
/// println!("{:?}", client.stats()?);
/// # Ok(())
/// # }
/// ```
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    config: ClientConfig,
    /// Where to reconnect after a transport failure.
    peer: SocketAddr,
    /// Transparent retries performed so far (all calls combined).
    retries: u64,
    /// Jitter state for backoff (xorshift64).
    jitter: u64,
}

impl Client {
    /// Connects with the default (resilient) [`ClientConfig`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        Client::connect_with(addr, ClientConfig::default())
    }

    /// Connects to a server (with `TCP_NODELAY`, matching the server
    /// side) under an explicit configuration.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        config: ClientConfig,
    ) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr()?;
        let (reader, writer) = split_stream(stream, &config)?;
        // Any nonzero seed works for xorshift; derive one from the
        // wall clock so concurrent clients don't march in lockstep.
        let jitter = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15)
            | 1;
        Ok(Client {
            reader,
            writer,
            next_id: 0,
            config,
            peer,
            retries: 0,
            jitter,
        })
    }

    /// Transparent retries performed so far, across every call on this
    /// client.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Drops the broken connection and dials the same peer again.
    fn reconnect(&mut self) -> Result<(), ServeError> {
        let stream = TcpStream::connect(self.peer)?;
        let (reader, writer) = split_stream(stream, &self.config)?;
        self.reader = reader;
        self.writer = writer;
        Ok(())
    }

    /// Next backoff: exponential in `attempt`, capped, then jittered to
    /// 50–150% so a fleet of retrying clients doesn't stampede in sync.
    fn backoff(&mut self, policy: &RetryPolicy, attempt: u32) -> Duration {
        let doubled = policy
            .base_backoff
            .saturating_mul(1u32 << attempt.min(16))
            .min(policy.max_backoff);
        // xorshift64 step.
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        let percent = 50 + (self.jitter % 101); // 50..=150
        doubled.saturating_mul(percent as u32) / 100
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        id
    }

    fn send(&mut self, request_id: u64, request: &Request) -> Result<(), ServeError> {
        let payload = encode_request(request_id, request);
        write_frame(&mut self.writer, &payload)?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<(u64, Response), ServeError> {
        let payload =
            read_frame(&mut self.reader, self.config.max_frame_bytes)?.ok_or(ServeError::Closed)?;
        Ok(decode_response(&payload)?)
    }

    /// Sends one request and waits for its response, checking the
    /// echoed request id.
    fn call_once(&mut self, request: &Request) -> Result<Response, ServeError> {
        let request_id = self.fresh_id();
        self.send(request_id, request)?;
        let (echoed, response) = self.recv()?;
        if echoed != request_id {
            return Err(ServeError::UnexpectedResponse(format!(
                "response for request {echoed}, expected {request_id}"
            )));
        }
        Ok(response)
    }

    /// [`call_once`](Self::call_once) wrapped in the retry contract:
    /// when `idempotent`, transport failures and typed `Overloaded`
    /// refusals are retried (reconnecting first when the stream state
    /// is unknown) up to the policy's cap with jittered backoff.
    fn call(&mut self, request: &Request, idempotent: bool) -> Result<Response, ServeError> {
        let Some(policy) = self.config.retry.filter(|_| idempotent) else {
            return self.call_once(request);
        };
        let mut attempt = 0u32;
        loop {
            let outcome = match self.call_once(request) {
                Ok(Response::Error { code, message }) if code == ErrorCode::Overloaded => {
                    // The server refused at admission; the connection
                    // itself is healthy, so back off without redialing.
                    Err((ServeError::Remote { code, message }, false))
                }
                // Transport failures leave the stream state unknown
                // (a response may be half-read); redial before retrying.
                Err(err @ (ServeError::Io(_) | ServeError::Closed | ServeError::Wire(_))) => {
                    Err((err, true))
                }
                other => Ok(other),
            };
            let (err, redial) = match outcome {
                Ok(result) => return result,
                Err(pair) => pair,
            };
            if attempt >= policy.max_retries {
                return Err(err);
            }
            attempt += 1;
            self.retries += 1;
            std::thread::sleep(self.backoff(&policy, attempt - 1));
            if redial {
                // A failed redial is final: the server is unreachable,
                // and further attempts would just re-dial again.
                self.reconnect()?;
            }
        }
    }

    /// Runs one typed op against a named model and returns its typed
    /// output; a typed server error becomes [`ServeError::Remote`].
    /// Attaches the configured default deadline, and retries per the
    /// retry contract when the op is idempotent.
    pub fn run(&mut self, model: &str, op: &AnyOp) -> Result<AnyOutput, ServeError> {
        self.run_with_deadline(model, op, self.config.default_deadline)
    }

    /// [`run`](Self::run) with an explicit per-call deadline budget
    /// (`None` sends no deadline, overriding any configured default).
    pub fn run_with_deadline(
        &mut self,
        model: &str,
        op: &AnyOp,
        deadline: Option<Duration>,
    ) -> Result<AnyOutput, ServeError> {
        let request = Request::Op {
            model: model.to_owned(),
            op: op.clone(),
            deadline,
        };
        match self.call(&request, op.is_idempotent())? {
            Response::Output(output) => Ok(output),
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches the server's [`ServingStats`].
    pub fn stats(&mut self) -> Result<ServingStats, ServeError> {
        match self.call(&Request::Stats, true)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Lists the server's registered models (name + generation, sorted
    /// by name).
    pub fn list_models(&mut self) -> Result<Vec<ModelInfo>, ServeError> {
        match self.call(&Request::ListModels, true)? {
            Response::Models(models) => Ok(models),
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        match self.call(&Request::Ping, true)? {
            Response::Pong => Ok(()),
            Response::Error { code, message } => Err(ServeError::Remote { code, message }),
            other => Err(ServeError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Runs a burst of ops with all of them in flight at once: encodes
    /// every request into one buffer, writes it in a single syscall,
    /// then collects responses (which may arrive in any order) and
    /// returns them in op order. Each slot is `Ok(output)` or the typed
    /// error the server sent for that op; a transport failure fails the
    /// whole call (no transparent retry — a burst may mix idempotent
    /// and non-idempotent ops, so re-sending is the caller's decision).
    /// Ops carry the configured default deadline.
    pub fn run_pipelined(
        &mut self,
        model: &str,
        ops: &[AnyOp],
    ) -> Result<Vec<Result<AnyOutput, ServeError>>, ServeError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let base = self.next_id;
        self.next_id = self.next_id.wrapping_add(ops.len() as u64);
        let mut burst = Vec::new();
        for (offset, op) in ops.iter().enumerate() {
            let request = Request::Op {
                model: model.to_owned(),
                op: op.clone(),
                deadline: self.config.default_deadline,
            };
            append_frame(
                &mut burst,
                &encode_request(base.wrapping_add(offset as u64), &request),
            );
        }
        self.writer.write_all(&burst)?;
        self.writer.flush()?;

        let mut results: Vec<Option<Result<AnyOutput, ServeError>>> =
            (0..ops.len()).map(|_| None).collect();
        for _ in 0..ops.len() {
            let (request_id, response) = self.recv()?;
            let offset = request_id.wrapping_sub(base) as usize;
            let slot = results.get_mut(offset).ok_or_else(|| {
                ServeError::UnexpectedResponse(format!("response for unknown request {request_id}"))
            })?;
            if slot.is_some() {
                return Err(ServeError::UnexpectedResponse(format!(
                    "duplicate response for request {request_id}"
                )));
            }
            *slot = Some(match response {
                Response::Output(output) => Ok(output),
                Response::Error { code, message } => Err(ServeError::Remote { code, message }),
                other => Err(ServeError::UnexpectedResponse(format!("{other:?}"))),
            });
        }
        Ok(results
            .into_iter()
            // This `expect` cannot fire: the loop above fills exactly
            // `ops.len()` distinct slots (duplicates and out-of-range
            // ids error out), so every slot is `Some` here.
            .map(|slot| slot.expect("all slots filled"))
            .collect())
    }
}

/// Applies socket options and splits a stream into the buffered
/// reader/writer halves (sized to match the server's per-connection
/// buffers, so bursts coalesce into few syscalls).
fn split_stream(
    stream: TcpStream,
    config: &ClientConfig,
) -> Result<(BufReader<TcpStream>, BufWriter<TcpStream>), ServeError> {
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(config.read_timeout)?;
    let reader = BufReader::with_capacity(1 << 16, stream.try_clone()?);
    Ok((reader, BufWriter::with_capacity(1 << 16, stream)))
}
