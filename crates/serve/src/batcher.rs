//! The deadline-or-full adaptive batcher: coalesces in-flight requests
//! from many connections into engine batches.
//!
//! Requests enqueue into a shared queue; a dedicated worker thread
//! dispatches the queue to [`ModelRegistry::execute_batch`] when either
//! trigger fires, whichever comes first:
//!
//! * **full** — the queue holds `max_batch` requests, or
//! * **deadline** — the oldest queued request has waited `max_delay`.
//!
//! Bigger coalesced batches are strictly better warm (the engine's
//! planner groups same-shape ops into contiguous packed-shard scans),
//! so under load the batcher converges on full `max_batch` dispatches;
//! under trickle traffic the deadline bounds each request's queueing
//! delay. Shutdown flushes: every queued request is dispatched (in
//! `max_batch` chunks) before the worker exits, so no accepted request
//! is ever dropped.
//!
//! The queue uses `std::sync` primitives (the vendored `parking_lot`
//! shim has no condvar) — one mutex + condvar pair, with the worker
//! sleeping on `wait_timeout` until the oldest request's deadline.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use factorhd_engine::{AnyOp, EngineError, ModelId, ModelRegistry};

use crate::error::ErrorCode;
use crate::metrics::ServeMetrics;
use crate::protocol::Response;

/// Knobs for the deadline-or-full dispatch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Dispatch as soon as this many requests are queued. `1` degrades
    /// to pass-through (every request is its own engine batch).
    pub max_batch: usize,
    /// Dispatch when the oldest queued request has waited this long,
    /// even if the batch is not full. `Duration::ZERO` dispatches on
    /// every enqueue.
    pub max_delay: Duration,
}

impl Default for BatcherConfig {
    /// `max_batch` 64 (the warm sweet spot in BENCH_engine.json),
    /// `max_delay` 2 ms.
    fn default() -> Self {
        BatcherConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// One queued request: the op, its routing metadata, and the channel
/// its response travels back on.
pub(crate) struct Pending {
    /// Registry name of the target model.
    pub model: String,
    /// The op to execute.
    pub op: AnyOp,
    /// Client-chosen request id, echoed in the response.
    pub request_id: u64,
    /// When the request's frame finished decoding (anchors both the
    /// dispatch deadline and the end-to-end latency histogram).
    pub received_at: Instant,
    /// Where the response goes (a connection's writer queue).
    pub reply: mpsc::Sender<Outgoing>,
}

/// One response ready to be written back to a connection.
pub(crate) struct Outgoing {
    /// Echoed request id.
    pub request_id: u64,
    /// Latency anchor (see [`Pending::received_at`]).
    pub received_at: Instant,
    /// The typed response.
    pub response: Response,
}

struct Queue {
    pending: VecDeque<Pending>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    wake: Condvar,
    config: BatcherConfig,
}

/// The batcher: a shared queue plus the worker thread draining it into
/// [`ModelRegistry::execute_batch`].
pub(crate) struct Batcher {
    shared: Arc<Shared>,
    worker: Mutex<Option<thread::JoinHandle<()>>>,
    /// Batches dispatched so far; read by the unit tests (the
    /// user-facing count lives in [`ServeMetrics`]).
    #[cfg_attr(not(test), allow(dead_code))]
    dispatched: Arc<AtomicU64>,
}

impl Batcher {
    pub(crate) fn new(
        registry: Arc<ModelRegistry>,
        config: BatcherConfig,
        metrics: Arc<ServeMetrics>,
    ) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                pending: VecDeque::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            config: BatcherConfig {
                max_batch: config.max_batch.max(1),
                max_delay: config.max_delay,
            },
        });
        let dispatched = Arc::new(AtomicU64::new(0));
        let worker = {
            let shared = Arc::clone(&shared);
            let dispatched = Arc::clone(&dispatched);
            thread::Builder::new()
                .name("factorhd-batcher".into())
                .spawn(move || worker_loop(&shared, &registry, &metrics, &dispatched))
                .expect("spawn batcher worker")
        };
        Batcher {
            shared,
            worker: Mutex::new(Some(worker)),
            dispatched,
        }
    }

    /// Enqueues one request. Returns `false` (and drops the request)
    /// if the batcher has already shut down.
    pub(crate) fn submit(&self, pending: Pending) -> bool {
        let mut queue = self.shared.queue.lock().expect("batcher lock");
        if queue.shutdown {
            return false;
        }
        queue.pending.push_back(pending);
        // Wake the worker: it either dispatches (batch now full) or
        // re-arms its deadline timer for the new oldest request.
        self.shared.wake.notify_one();
        true
    }

    /// Engine batches dispatched so far (test observability).
    #[cfg(test)]
    pub(crate) fn batches_dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Flushes every queued request and stops the worker. Idempotent.
    pub(crate) fn shutdown(&self) {
        {
            let mut queue = self.shared.queue.lock().expect("batcher lock");
            queue.shutdown = true;
            self.shared.wake.notify_one();
        }
        if let Some(worker) = self.worker.lock().expect("batcher worker lock").take() {
            let _ = worker.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    shared: &Shared,
    registry: &ModelRegistry,
    metrics: &ServeMetrics,
    dispatched: &AtomicU64,
) {
    let max_batch = shared.config.max_batch;
    let max_delay = shared.config.max_delay;
    loop {
        let batch: Vec<Pending> = {
            let mut queue = shared.queue.lock().expect("batcher lock");
            loop {
                if queue.pending.len() >= max_batch || queue.shutdown {
                    break;
                }
                match queue.pending.front() {
                    None => {
                        queue = shared.wake.wait(queue).expect("batcher lock");
                    }
                    Some(oldest) => {
                        let deadline = oldest.received_at + max_delay;
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        let (guard, _) = shared
                            .wake
                            .wait_timeout(queue, deadline - now)
                            .expect("batcher lock");
                        queue = guard;
                    }
                }
            }
            if queue.pending.is_empty() {
                debug_assert!(queue.shutdown, "woke with empty queue outside shutdown");
                return;
            }
            let take = queue.pending.len().min(max_batch);
            queue.pending.drain(..take).collect()
        };
        // Count before dispatching so an observer that has already
        // received a reply sees the batch that produced it.
        dispatched.fetch_add(1, Ordering::Relaxed);
        dispatch(registry, metrics, batch);
    }
}

/// Runs one coalesced batch through the engine and scatters the typed
/// results back to each request's connection by request id.
fn dispatch(registry: &ModelRegistry, metrics: &ServeMetrics, batch: Vec<Pending>) {
    metrics.batch_dispatched(batch.len() as u64);
    let mut ops = Vec::with_capacity(batch.len());
    let mut routes = Vec::with_capacity(batch.len());
    for pending in batch {
        ops.push((ModelId::new(&pending.model), pending.op));
        routes.push((pending.request_id, pending.received_at, pending.reply));
    }
    let results = registry.execute_batch(&ops);
    for ((request_id, received_at, reply), result) in routes.into_iter().zip(results) {
        let response = match result {
            Ok(output) => Response::Output(output),
            Err(err) => Response::Error {
                code: engine_error_code(&err),
                message: err.to_string(),
            },
        };
        // A send error means the connection is gone; the response is
        // dropped, matching what TCP would do to it anyway.
        let _ = reply.send(Outgoing {
            request_id,
            received_at,
            response,
        });
    }
}

/// Maps an engine failure onto its wire error code.
fn engine_error_code(err: &EngineError) -> ErrorCode {
    match err {
        EngineError::UnknownModel { .. } => ErrorCode::UnknownModel,
        _ => ErrorCode::Engine,
    }
}

/// The result of draining one reply receiver after `n` submissions.
#[cfg(test)]
fn expect_outputs(rx: &mpsc::Receiver<Outgoing>, n: usize) -> Vec<Outgoing> {
    (0..n)
        .map(|_| {
            rx.recv_timeout(Duration::from_secs(10))
                .expect("response within timeout")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorhd_core::TaxonomyBuilder;
    use factorhd_engine::{EncodeScene, EngineConfig, ModelState};

    fn test_registry() -> Arc<ModelRegistry> {
        let registry = Arc::new(ModelRegistry::new());
        let taxonomy = TaxonomyBuilder::new(256)
            .seed(11)
            .class("animal", &[4])
            .class("color", &[4])
            .build()
            .expect("valid taxonomy");
        registry.install(
            "m",
            ModelState::new(taxonomy, EngineConfig::default()).expect("valid model"),
        );
        registry
    }

    fn encode_op(registry: &ModelRegistry) -> AnyOp {
        let mut rng = hdc::rng_from_seed(3);
        let object = registry
            .get("m")
            .expect("installed")
            .state()
            .taxonomy()
            .sample_object(&mut rng);
        AnyOp::Encode(EncodeScene {
            scene: factorhd_core::Scene::single(object),
        })
    }

    fn pending(op: &AnyOp, id: u64, reply: &mpsc::Sender<Outgoing>) -> Pending {
        Pending {
            model: "m".into(),
            op: op.clone(),
            request_id: id,
            received_at: Instant::now(),
            reply: reply.clone(),
        }
    }

    /// Full trigger: `max_batch` requests with a far-off deadline
    /// dispatch as one batch, without waiting out the delay.
    #[test]
    fn full_batch_dispatches_without_deadline() {
        let registry = test_registry();
        let batcher = Batcher::new(
            Arc::clone(&registry),
            BatcherConfig {
                max_batch: 4,
                max_delay: Duration::from_secs(3600),
            },
            Arc::new(ServeMetrics::new()),
        );
        let op = encode_op(&registry);
        let (tx, rx) = mpsc::channel();
        let start = Instant::now();
        for id in 0..4 {
            assert!(batcher.submit(pending(&op, id, &tx)));
        }
        let replies = expect_outputs(&rx, 4);
        assert!(
            start.elapsed() < Duration::from_secs(600),
            "dispatch must not wait out the one-hour deadline"
        );
        assert_eq!(batcher.batches_dispatched(), 1, "one coalesced batch");
        let mut ids: Vec<u64> = replies.iter().map(|o| o.request_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        for reply in &replies {
            assert!(matches!(reply.response, Response::Output(_)));
        }
    }

    /// Deadline trigger: a lone request dispatches once `max_delay`
    /// elapses, even though the batch never fills.
    #[test]
    fn lone_request_dispatches_at_deadline() {
        let registry = test_registry();
        let batcher = Batcher::new(
            Arc::clone(&registry),
            BatcherConfig {
                max_batch: 64,
                max_delay: Duration::from_millis(20),
            },
            Arc::new(ServeMetrics::new()),
        );
        let op = encode_op(&registry);
        let (tx, rx) = mpsc::channel();
        let submitted = Instant::now();
        assert!(batcher.submit(pending(&op, 42, &tx)));
        let reply = expect_outputs(&rx, 1).pop().expect("one reply");
        assert!(
            submitted.elapsed() >= Duration::from_millis(20),
            "lone request must wait for the deadline, not dispatch eagerly"
        );
        assert_eq!(reply.request_id, 42);
        assert!(matches!(reply.response, Response::Output(_)));
    }

    /// Shutdown flush: requests still queued (deadline far away, batch
    /// not full) are all dispatched before the worker exits.
    #[test]
    fn shutdown_flushes_queued_requests() {
        let registry = test_registry();
        let batcher = Batcher::new(
            Arc::clone(&registry),
            BatcherConfig {
                max_batch: 64,
                max_delay: Duration::from_secs(3600),
            },
            Arc::new(ServeMetrics::new()),
        );
        let op = encode_op(&registry);
        let (tx, rx) = mpsc::channel();
        for id in 0..5 {
            assert!(batcher.submit(pending(&op, id, &tx)));
        }
        batcher.shutdown();
        let mut ids: Vec<u64> = expect_outputs(&rx, 5)
            .iter()
            .map(|o| o.request_id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4], "flush may not drop requests");
        // After shutdown, submissions are refused.
        assert!(!batcher.submit(pending(&op, 99, &tx)));
    }

    /// `max_batch = 1` degenerates to pass-through: every request is
    /// its own engine batch.
    #[test]
    fn max_batch_one_is_pass_through() {
        let registry = test_registry();
        let batcher = Batcher::new(
            Arc::clone(&registry),
            BatcherConfig {
                max_batch: 1,
                max_delay: Duration::from_secs(3600),
            },
            Arc::new(ServeMetrics::new()),
        );
        let op = encode_op(&registry);
        let (tx, rx) = mpsc::channel();
        for id in 0..3 {
            assert!(batcher.submit(pending(&op, id, &tx)));
            let reply = expect_outputs(&rx, 1).pop().expect("one reply");
            assert_eq!(reply.request_id, id);
        }
        assert_eq!(
            batcher.batches_dispatched(),
            3,
            "pass-through means one batch per request"
        );
    }

    /// Unknown models come back as typed error responses, not dropped
    /// requests.
    #[test]
    fn unknown_model_yields_typed_error() {
        let registry = test_registry();
        let batcher = Batcher::new(
            Arc::clone(&registry),
            BatcherConfig {
                max_batch: 1,
                max_delay: Duration::ZERO,
            },
            Arc::new(ServeMetrics::new()),
        );
        let op = encode_op(&registry);
        let (tx, rx) = mpsc::channel();
        let mut missing = pending(&op, 7, &tx);
        missing.model = "no-such-model".into();
        assert!(batcher.submit(missing));
        let reply = expect_outputs(&rx, 1).pop().expect("one reply");
        match &reply.response {
            Response::Error { code, .. } => assert_eq!(*code, ErrorCode::UnknownModel),
            other => panic!("expected error, got {other:?}"),
        }
    }
}
