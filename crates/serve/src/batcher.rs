//! The deadline-or-full adaptive batcher: coalesces in-flight requests
//! from many connections into engine batches.
//!
//! Requests enqueue into a shared queue; a dedicated worker thread
//! dispatches the queue to [`ModelRegistry::execute_batch`] when either
//! trigger fires, whichever comes first:
//!
//! * **full** — the queue holds `max_batch` requests, or
//! * **deadline** — the oldest queued request has waited `max_delay`.
//!
//! Bigger coalesced batches are strictly better warm (the engine's
//! planner groups same-shape ops into contiguous packed-shard scans),
//! so under load the batcher converges on full `max_batch` dispatches;
//! under trickle traffic the deadline bounds each request's queueing
//! delay. Shutdown flushes: every queued request is dispatched (in
//! `max_batch` chunks) before the worker exits, so no accepted request
//! is ever dropped.
//!
//! Two robustness policies live here (docs/ROBUSTNESS.md):
//!
//! * **Admission control** — the queue is bounded at
//!   [`BatcherConfig::max_queue`]; [`Batcher::submit`] refuses beyond
//!   it ([`SubmitOutcome::Overloaded`]) so an overloaded server answers
//!   a typed `Overloaded` error in microseconds instead of building an
//!   unbounded backlog whose every entry times out.
//! * **Deadline enforcement** — a request that carried a deadline and
//!   is still queued when it expires is answered
//!   `DeadlineExceeded` at dequeue, without executing: the client has
//!   already given up, so running the op would only steal capacity from
//!   requests that still have a waiter.
//!
//! The queue uses `std::sync` primitives (the vendored `parking_lot`
//! shim has no condvar) — one mutex + condvar pair, with the worker
//! sleeping on `wait_timeout` until the oldest request's deadline.
//! Lock poisoning is recovered (`into_inner`): the queue is plain data
//! that stays structurally valid, and the batcher must keep serving
//! even if a thread panicked while holding the lock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use factorhd_engine::{failpoint, AnyOp, EngineError, ModelId, ModelRegistry};

use crate::error::ErrorCode;
use crate::metrics::ServeMetrics;
use crate::protocol::Response;

/// Knobs for the deadline-or-full dispatch policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatcherConfig {
    /// Dispatch as soon as this many requests are queued. `1` degrades
    /// to pass-through (every request is its own engine batch).
    pub max_batch: usize,
    /// Dispatch when the oldest queued request has waited this long,
    /// even if the batch is not full. `Duration::ZERO` dispatches on
    /// every enqueue.
    pub max_delay: Duration,
    /// Admission bound: [`Batcher::submit`] refuses
    /// ([`SubmitOutcome::Overloaded`]) while this many requests are
    /// already queued. Sized in requests, not bytes — the queue holds
    /// decoded ops, so the byte bound is `max_queue × max_frame_bytes`.
    pub max_queue: usize,
}

impl Default for BatcherConfig {
    /// `max_batch` 64 (the warm sweet spot in BENCH_engine.json),
    /// `max_delay` 2 ms, `max_queue` 1024 (16 full batches of headroom
    /// before shedding).
    fn default() -> Self {
        BatcherConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(2),
            max_queue: 1024,
        }
    }
}

/// What [`Batcher::submit`] did with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SubmitOutcome {
    /// Queued; a response will arrive on the reply channel.
    Accepted,
    /// Refused: the queue is at `max_queue`. The op did not execute and
    /// no response will arrive — the caller answers `Overloaded`.
    Overloaded,
    /// Refused: the batcher has shut down. The caller answers
    /// `Shutdown`.
    ShuttingDown,
}

/// One queued request: the op, its routing metadata, and the channel
/// its response travels back on.
pub(crate) struct Pending {
    /// Registry name of the target model.
    pub model: String,
    /// The op to execute.
    pub op: AnyOp,
    /// Client-chosen request id, echoed in the response.
    pub request_id: u64,
    /// When the request's frame finished decoding (anchors both the
    /// dispatch deadline and the end-to-end latency histogram).
    pub received_at: Instant,
    /// Absolute expiry (the wire budget anchored at `received_at`);
    /// `None` means the request waits as long as it takes.
    pub deadline: Option<Instant>,
    /// Where the response goes (a connection's writer queue).
    pub reply: mpsc::Sender<Outgoing>,
}

/// One response ready to be written back to a connection.
pub(crate) struct Outgoing {
    /// Echoed request id.
    pub request_id: u64,
    /// Latency anchor (see [`Pending::received_at`]).
    pub received_at: Instant,
    /// The typed response.
    pub response: Response,
}

struct Queue {
    pending: VecDeque<Pending>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    wake: Condvar,
    config: BatcherConfig,
}

impl Shared {
    /// Locks the queue, recovering from poisoning (see module docs).
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, Queue> {
        self.queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// The batcher: a shared queue plus the worker thread draining it into
/// [`ModelRegistry::execute_batch`].
pub(crate) struct Batcher {
    shared: Arc<Shared>,
    worker: Mutex<Option<thread::JoinHandle<()>>>,
    /// Batches dispatched so far; read by the unit tests (the
    /// user-facing count lives in [`ServeMetrics`]).
    #[cfg_attr(not(test), allow(dead_code))]
    dispatched: Arc<AtomicU64>,
}

impl Batcher {
    /// Spawns the worker thread; fails only if the OS refuses a thread
    /// (resource exhaustion), which the caller surfaces as an I/O error
    /// instead of a panic.
    pub(crate) fn new(
        registry: Arc<ModelRegistry>,
        config: BatcherConfig,
        metrics: Arc<ServeMetrics>,
    ) -> std::io::Result<Self> {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                pending: VecDeque::new(),
                shutdown: false,
            }),
            wake: Condvar::new(),
            config: BatcherConfig {
                max_batch: config.max_batch.max(1),
                max_delay: config.max_delay,
                // The queue must hold at least one full batch or the
                // full trigger could never fire.
                max_queue: config.max_queue.max(config.max_batch.max(1)),
            },
        });
        let dispatched = Arc::new(AtomicU64::new(0));
        let worker = {
            let shared = Arc::clone(&shared);
            let dispatched = Arc::clone(&dispatched);
            thread::Builder::new()
                .name("factorhd-batcher".into())
                .spawn(move || worker_loop(&shared, &registry, &metrics, &dispatched))?
        };
        Ok(Batcher {
            shared,
            worker: Mutex::new(Some(worker)),
            dispatched,
        })
    }

    /// Enqueues one request, refusing typed-ly when the queue is at its
    /// admission bound or the batcher has shut down (the request is
    /// dropped and no reply will arrive in either refusal case).
    pub(crate) fn submit(&self, pending: Pending) -> SubmitOutcome {
        let mut queue = self.shared.lock_queue();
        if queue.shutdown {
            return SubmitOutcome::ShuttingDown;
        }
        if queue.pending.len() >= self.shared.config.max_queue {
            return SubmitOutcome::Overloaded;
        }
        queue.pending.push_back(pending);
        // Wake the worker: it either dispatches (batch now full) or
        // re-arms its deadline timer for the new oldest request.
        self.shared.wake.notify_one();
        SubmitOutcome::Accepted
    }

    /// Engine batches dispatched so far (test observability).
    #[cfg(test)]
    pub(crate) fn batches_dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Flushes every queued request and stops the worker. Idempotent.
    pub(crate) fn shutdown(&self) {
        {
            let mut queue = self.shared.lock_queue();
            queue.shutdown = true;
            self.shared.wake.notify_one();
        }
        let worker = self
            .worker
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take();
        if let Some(worker) = worker {
            let _ = worker.join();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    shared: &Shared,
    registry: &ModelRegistry,
    metrics: &ServeMetrics,
    dispatched: &AtomicU64,
) {
    let max_batch = shared.config.max_batch;
    let max_delay = shared.config.max_delay;
    loop {
        let batch: Vec<Pending> = {
            let mut queue = shared.lock_queue();
            loop {
                if queue.pending.len() >= max_batch || queue.shutdown {
                    break;
                }
                match queue.pending.front() {
                    None => {
                        queue = shared
                            .wake
                            .wait(queue)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                    }
                    Some(oldest) => {
                        let deadline = oldest.received_at + max_delay;
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        let (guard, _) = shared
                            .wake
                            .wait_timeout(queue, deadline - now)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                        queue = guard;
                    }
                }
            }
            if queue.pending.is_empty() {
                debug_assert!(queue.shutdown, "woke with empty queue outside shutdown");
                return;
            }
            let take = queue.pending.len().min(max_batch);
            queue.pending.drain(..take).collect()
        };
        // Chaos site: lets fault-injection tests hold the queue at its
        // admission bound deterministically (the worker sleeps here,
        // outside the lock, so `submit` keeps refusing typed-ly).
        failpoint::sleep("serve/batcher_stall");
        // Count before dispatching so an observer that has already
        // received a reply sees the batch that produced it.
        dispatched.fetch_add(1, Ordering::Relaxed);
        dispatch(registry, metrics, batch);
    }
}

/// Runs one coalesced batch through the engine and scatters the typed
/// results back to each request's connection by request id. Requests
/// whose deadline has already passed are answered `DeadlineExceeded`
/// here, at dequeue, without executing.
fn dispatch(registry: &ModelRegistry, metrics: &ServeMetrics, batch: Vec<Pending>) {
    let now = Instant::now();
    let mut ops = Vec::with_capacity(batch.len());
    let mut routes = Vec::with_capacity(batch.len());
    for pending in batch {
        if pending.deadline.is_some_and(|deadline| now >= deadline) {
            metrics.deadline_expired();
            let _ = pending.reply.send(Outgoing {
                request_id: pending.request_id,
                received_at: pending.received_at,
                response: Response::Error {
                    code: ErrorCode::DeadlineExceeded,
                    message: "deadline expired while queued; op not executed".into(),
                },
            });
            continue;
        }
        ops.push((ModelId::new(&pending.model), pending.op));
        routes.push((pending.request_id, pending.received_at, pending.reply));
    }
    if ops.is_empty() {
        return;
    }
    metrics.batch_dispatched(ops.len() as u64);
    let results = registry.execute_batch(&ops);
    for ((request_id, received_at, reply), result) in routes.into_iter().zip(results) {
        let response = match result {
            Ok(output) => Response::Output(output),
            Err(err) => {
                let code = engine_error_code(&err);
                if code == ErrorCode::OpPanicked {
                    metrics.op_panicked();
                }
                Response::Error {
                    code,
                    message: err.to_string(),
                }
            }
        };
        // A send error means the connection is gone; the response is
        // dropped, matching what TCP would do to it anyway.
        let _ = reply.send(Outgoing {
            request_id,
            received_at,
            response,
        });
    }
}

/// Maps an engine failure onto its wire error code.
fn engine_error_code(err: &EngineError) -> ErrorCode {
    match err {
        EngineError::UnknownModel { .. } => ErrorCode::UnknownModel,
        EngineError::OpPanicked { .. } => ErrorCode::OpPanicked,
        _ => ErrorCode::Engine,
    }
}

/// The result of draining one reply receiver after `n` submissions.
#[cfg(test)]
fn expect_outputs(rx: &mpsc::Receiver<Outgoing>, n: usize) -> Vec<Outgoing> {
    (0..n)
        .map(|_| {
            rx.recv_timeout(Duration::from_secs(10))
                .expect("response within timeout")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use factorhd_core::TaxonomyBuilder;
    use factorhd_engine::{EncodeScene, EngineConfig, ModelState};

    fn test_registry() -> Arc<ModelRegistry> {
        let registry = Arc::new(ModelRegistry::new());
        let taxonomy = TaxonomyBuilder::new(256)
            .seed(11)
            .class("animal", &[4])
            .class("color", &[4])
            .build()
            .expect("valid taxonomy");
        registry.install(
            "m",
            ModelState::new(taxonomy, EngineConfig::default()).expect("valid model"),
        );
        registry
    }

    fn encode_op(registry: &ModelRegistry) -> AnyOp {
        let mut rng = hdc::rng_from_seed(3);
        let object = registry
            .get("m")
            .expect("installed")
            .state()
            .taxonomy()
            .sample_object(&mut rng);
        AnyOp::Encode(EncodeScene {
            scene: factorhd_core::Scene::single(object),
        })
    }

    fn pending(op: &AnyOp, id: u64, reply: &mpsc::Sender<Outgoing>) -> Pending {
        Pending {
            model: "m".into(),
            op: op.clone(),
            request_id: id,
            received_at: Instant::now(),
            deadline: None,
            reply: reply.clone(),
        }
    }

    fn batcher(registry: &Arc<ModelRegistry>, config: BatcherConfig) -> Batcher {
        Batcher::new(Arc::clone(registry), config, Arc::new(ServeMetrics::new()))
            .expect("spawn batcher worker")
    }

    /// Full trigger: `max_batch` requests with a far-off deadline
    /// dispatch as one batch, without waiting out the delay.
    #[test]
    fn full_batch_dispatches_without_deadline() {
        let registry = test_registry();
        let batcher = batcher(
            &registry,
            BatcherConfig {
                max_batch: 4,
                max_delay: Duration::from_secs(3600),
                max_queue: 4096,
            },
        );
        let op = encode_op(&registry);
        let (tx, rx) = mpsc::channel();
        let start = Instant::now();
        for id in 0..4 {
            assert_eq!(
                batcher.submit(pending(&op, id, &tx)),
                SubmitOutcome::Accepted
            );
        }
        let replies = expect_outputs(&rx, 4);
        assert!(
            start.elapsed() < Duration::from_secs(600),
            "dispatch must not wait out the one-hour deadline"
        );
        assert_eq!(batcher.batches_dispatched(), 1, "one coalesced batch");
        let mut ids: Vec<u64> = replies.iter().map(|o| o.request_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        for reply in &replies {
            assert!(matches!(reply.response, Response::Output(_)));
        }
    }

    /// Deadline trigger: a lone request dispatches once `max_delay`
    /// elapses, even though the batch never fills.
    #[test]
    fn lone_request_dispatches_at_deadline() {
        let registry = test_registry();
        let batcher = batcher(
            &registry,
            BatcherConfig {
                max_batch: 64,
                max_delay: Duration::from_millis(20),
                max_queue: 4096,
            },
        );
        let op = encode_op(&registry);
        let (tx, rx) = mpsc::channel();
        let submitted = Instant::now();
        assert_eq!(
            batcher.submit(pending(&op, 42, &tx)),
            SubmitOutcome::Accepted
        );
        let reply = expect_outputs(&rx, 1).pop().expect("one reply");
        assert!(
            submitted.elapsed() >= Duration::from_millis(20),
            "lone request must wait for the deadline, not dispatch eagerly"
        );
        assert_eq!(reply.request_id, 42);
        assert!(matches!(reply.response, Response::Output(_)));
    }

    /// Shutdown flush: requests still queued (deadline far away, batch
    /// not full) are all dispatched before the worker exits.
    #[test]
    fn shutdown_flushes_queued_requests() {
        let registry = test_registry();
        let batcher = batcher(
            &registry,
            BatcherConfig {
                max_batch: 64,
                max_delay: Duration::from_secs(3600),
                max_queue: 4096,
            },
        );
        let op = encode_op(&registry);
        let (tx, rx) = mpsc::channel();
        for id in 0..5 {
            assert_eq!(
                batcher.submit(pending(&op, id, &tx)),
                SubmitOutcome::Accepted
            );
        }
        batcher.shutdown();
        let mut ids: Vec<u64> = expect_outputs(&rx, 5)
            .iter()
            .map(|o| o.request_id)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4], "flush may not drop requests");
        // After shutdown, submissions are refused.
        assert_eq!(
            batcher.submit(pending(&op, 99, &tx)),
            SubmitOutcome::ShuttingDown
        );
    }

    /// `max_batch = 1` degenerates to pass-through: every request is
    /// its own engine batch.
    #[test]
    fn max_batch_one_is_pass_through() {
        let registry = test_registry();
        let batcher = batcher(
            &registry,
            BatcherConfig {
                max_batch: 1,
                max_delay: Duration::from_secs(3600),
                max_queue: 4096,
            },
        );
        let op = encode_op(&registry);
        let (tx, rx) = mpsc::channel();
        for id in 0..3 {
            assert_eq!(
                batcher.submit(pending(&op, id, &tx)),
                SubmitOutcome::Accepted
            );
            let reply = expect_outputs(&rx, 1).pop().expect("one reply");
            assert_eq!(reply.request_id, id);
        }
        assert_eq!(
            batcher.batches_dispatched(),
            3,
            "pass-through means one batch per request"
        );
    }

    /// Unknown models come back as typed error responses, not dropped
    /// requests.
    #[test]
    fn unknown_model_yields_typed_error() {
        let registry = test_registry();
        let batcher = batcher(
            &registry,
            BatcherConfig {
                max_batch: 1,
                max_delay: Duration::ZERO,
                max_queue: 4096,
            },
        );
        let op = encode_op(&registry);
        let (tx, rx) = mpsc::channel();
        let mut missing = pending(&op, 7, &tx);
        missing.model = "no-such-model".into();
        assert_eq!(batcher.submit(missing), SubmitOutcome::Accepted);
        let reply = expect_outputs(&rx, 1).pop().expect("one reply");
        match &reply.response {
            Response::Error { code, .. } => assert_eq!(*code, ErrorCode::UnknownModel),
            other => panic!("expected error, got {other:?}"),
        }
    }

    /// Admission control: with the worker stalled, submissions beyond
    /// `max_queue` are refused as `Overloaded`, and every accepted
    /// request is still answered once the stall clears.
    /// Serializes the tests that arm the (process-global)
    /// `serve/batcher_stall` failpoint.
    static STALL_FAILPOINT: Mutex<()> = Mutex::new(());

    #[test]
    fn queue_at_capacity_refuses_overloaded() {
        let _guard = STALL_FAILPOINT
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let registry = test_registry();
        failpoint::arm(
            "serve/batcher_stall",
            factorhd_engine::failpoint::FailMode::Sleep(Duration::from_millis(100)),
        );
        let batcher = batcher(
            &registry,
            BatcherConfig {
                max_batch: 2,
                max_delay: Duration::ZERO,
                max_queue: 3,
            },
        );
        let op = encode_op(&registry);
        let (tx, rx) = mpsc::channel();
        // The worker grabs up to max_batch then stalls 100 ms; keep
        // submitting until the queue itself reports full.
        let mut accepted = 0u64;
        let mut shed = 0u64;
        for id in 0..64 {
            match batcher.submit(pending(&op, id, &tx)) {
                SubmitOutcome::Accepted => accepted += 1,
                SubmitOutcome::Overloaded => shed += 1,
                SubmitOutcome::ShuttingDown => panic!("not shutting down"),
            }
        }
        failpoint::disarm("serve/batcher_stall");
        assert!(shed > 0, "64 submissions into a 3-deep queue must shed");
        // Every *accepted* request is answered — sheds are the caller's
        // to answer, and none of them ever reach the queue.
        let replies = expect_outputs(&rx, accepted as usize);
        assert_eq!(replies.len() as u64, accepted);
        assert!(
            rx.recv_timeout(Duration::from_millis(50)).is_err(),
            "no replies beyond the accepted count"
        );
    }

    /// Deadline enforcement: a request whose deadline has passed by
    /// dispatch time is answered `DeadlineExceeded` without executing;
    /// a fresh one in the same batch still runs.
    #[test]
    fn expired_deadline_is_answered_at_dequeue() {
        let _guard = STALL_FAILPOINT
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let registry = test_registry();
        failpoint::arm(
            "serve/batcher_stall",
            factorhd_engine::failpoint::FailMode::Sleep(Duration::from_millis(30)),
        );
        let batcher = batcher(
            &registry,
            BatcherConfig {
                max_batch: 2,
                max_delay: Duration::ZERO,
                max_queue: 4096,
            },
        );
        let op = encode_op(&registry);
        let (tx, rx) = mpsc::channel();
        let mut expired = pending(&op, 1, &tx);
        // Already expired when dispatched (the stall guarantees ≥30 ms
        // in queue against a 1 ms budget).
        expired.deadline = Some(Instant::now() + Duration::from_millis(1));
        let fresh = pending(&op, 2, &tx);
        assert_eq!(batcher.submit(expired), SubmitOutcome::Accepted);
        assert_eq!(batcher.submit(fresh), SubmitOutcome::Accepted);
        let replies = expect_outputs(&rx, 2);
        failpoint::disarm("serve/batcher_stall");
        for reply in &replies {
            match reply.request_id {
                1 => match &reply.response {
                    Response::Error { code, .. } => {
                        assert_eq!(*code, ErrorCode::DeadlineExceeded)
                    }
                    other => panic!("expected deadline error, got {other:?}"),
                },
                2 => assert!(matches!(reply.response, Response::Output(_))),
                id => panic!("unexpected request id {id}"),
            }
        }
    }
}
