//! Error types for the network front end.
//!
//! Two layers of failure exist and the types keep them apart:
//!
//! * [`WireError`] — the bytes themselves are bad (truncated frame, bad
//!   magic, checksum mismatch, …). Mirrors the typed corruption errors
//!   of the `.fhd` artifact codec: every malformed input maps to a
//!   variant, never a panic.
//! * [`ServeError`] — everything a client call can fail with: transport
//!   I/O, a [`WireError`] from decoding, a typed error the server sent
//!   back ([`ServeError::Remote`]), or a closed connection.

use std::fmt;
use std::io;

/// Maximum bytes a decoded error message may occupy on the wire; longer
/// messages are truncated by the encoder so a malicious peer cannot
/// force unbounded allocation.
pub const MAX_ERROR_MESSAGE_BYTES: usize = 4096;

/// A malformed wire payload. Every variant is a typed decode failure —
/// corrupt input can never panic the codec (property-tested in
/// `tests/protocol_proptest.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before a field could be read.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// The payload does not start with the protocol magic.
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// The payload declares a protocol version this build cannot speak.
    UnsupportedVersion(u16),
    /// The FNV-1a checksum trailer does not match the payload bytes.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// The kind byte names no known request or response.
    UnknownKind(u8),
    /// A length prefix exceeds the configured frame cap.
    FrameTooLarge {
        /// Declared payload length.
        declared: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// A structurally invalid field (bad UTF-8, zero-depth path,
    /// out-of-range count, trailing bytes, …).
    Corrupt(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => write!(
                f,
                "truncated payload: needed {needed} more bytes, {remaining} remaining"
            ),
            WireError::BadMagic { found } => write!(f, "bad protocol magic {found:02x?}"),
            WireError::UnsupportedVersion(version) => {
                write!(f, "unsupported protocol version {version}")
            }
            WireError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            WireError::UnknownKind(kind) => write!(f, "unknown message kind {kind:#04x}"),
            WireError::FrameTooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds cap of {max}")
            }
            WireError::Corrupt(message) => write!(f, "corrupt payload: {message}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Error codes a server-side failure travels under on the wire. The
/// numeric values are part of the protocol; new codes may be appended
/// but existing ones never renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request payload failed to decode (the server echoes what it
    /// could parse of the request id).
    Protocol,
    /// The named model is not installed in the registry.
    UnknownModel,
    /// The engine rejected or failed the op (encode/factorize error,
    /// invalid config, artifact failure, …).
    Engine,
    /// The server is shutting down and did not execute the op.
    Shutdown,
    /// The server shed the request at admission: its in-flight budget
    /// (the batcher's `max_queue`) was full. The op did not execute;
    /// idempotent requests may be retried after backing off
    /// (docs/ROBUSTNESS.md, "Load shedding").
    Overloaded,
    /// The request's deadline expired while it was queued; the op was
    /// answered at dequeue without executing.
    DeadlineExceeded,
    /// The op panicked during batch execution; the panic was contained
    /// to this request and the rest of the batch completed.
    OpPanicked,
    /// A code minted by a newer peer; carried through verbatim.
    Other(u16),
}

impl ErrorCode {
    /// The wire representation.
    pub fn to_u16(self) -> u16 {
        match self {
            ErrorCode::Protocol => 1,
            ErrorCode::UnknownModel => 2,
            ErrorCode::Engine => 3,
            ErrorCode::Shutdown => 4,
            ErrorCode::Overloaded => 5,
            ErrorCode::DeadlineExceeded => 6,
            ErrorCode::OpPanicked => 7,
            ErrorCode::Other(code) => code,
        }
    }

    /// Decodes a wire code; unknown values become [`ErrorCode::Other`]
    /// so version skew in codes is never a decode failure.
    pub fn from_u16(code: u16) -> Self {
        match code {
            1 => ErrorCode::Protocol,
            2 => ErrorCode::UnknownModel,
            3 => ErrorCode::Engine,
            4 => ErrorCode::Shutdown,
            5 => ErrorCode::Overloaded,
            6 => ErrorCode::DeadlineExceeded,
            7 => ErrorCode::OpPanicked,
            other => ErrorCode::Other(other),
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorCode::Protocol => write!(f, "protocol"),
            ErrorCode::UnknownModel => write!(f, "unknown-model"),
            ErrorCode::Engine => write!(f, "engine"),
            ErrorCode::Shutdown => write!(f, "shutdown"),
            ErrorCode::Overloaded => write!(f, "overloaded"),
            ErrorCode::DeadlineExceeded => write!(f, "deadline-exceeded"),
            ErrorCode::OpPanicked => write!(f, "op-panicked"),
            ErrorCode::Other(code) => write!(f, "other({code})"),
        }
    }
}

/// Anything a serving call can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// Transport-level I/O failure.
    Io(io::Error),
    /// The peer sent bytes that do not decode.
    Wire(WireError),
    /// The server answered with a typed error response.
    Remote {
        /// The server's error code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The connection closed before a response arrived.
    Closed,
    /// The response decoded but was not the shape the call expected
    /// (e.g. a pong where an output was due).
    UnexpectedResponse(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(err) => write!(f, "i/o error: {err}"),
            ServeError::Wire(err) => write!(f, "wire error: {err}"),
            ServeError::Remote { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
            ServeError::Closed => write!(f, "connection closed"),
            ServeError::UnexpectedResponse(what) => {
                write!(f, "unexpected response: {what}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(err) => Some(err),
            ServeError::Wire(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(err: io::Error) -> Self {
        ServeError::Io(err)
    }
}

impl From<WireError> for ServeError {
    fn from(err: WireError) -> Self {
        ServeError::Wire(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_round_trip() {
        for code in [
            ErrorCode::Protocol,
            ErrorCode::UnknownModel,
            ErrorCode::Engine,
            ErrorCode::Shutdown,
            ErrorCode::Overloaded,
            ErrorCode::DeadlineExceeded,
            ErrorCode::OpPanicked,
            ErrorCode::Other(900),
        ] {
            assert_eq!(ErrorCode::from_u16(code.to_u16()), code);
        }
    }

    /// Version skew in codes: a peer that predates `Overloaded` /
    /// `DeadlineExceeded` / `OpPanicked` decodes them as `Other(n)` —
    /// a typed error, never a decode failure. (Pinned here by value so
    /// renumbering, which would break old peers, fails a test.)
    #[test]
    fn new_codes_keep_their_appended_values() {
        assert_eq!(ErrorCode::Overloaded.to_u16(), 5);
        assert_eq!(ErrorCode::DeadlineExceeded.to_u16(), 6);
        assert_eq!(ErrorCode::OpPanicked.to_u16(), 7);
        assert_eq!(ErrorCode::from_u16(99), ErrorCode::Other(99));
    }

    #[test]
    fn displays_are_stable() {
        let err = WireError::Truncated {
            needed: 8,
            remaining: 3,
        };
        assert!(err.to_string().contains("needed 8"));
        let err = ServeError::Remote {
            code: ErrorCode::UnknownModel,
            message: "no model 'x'".into(),
        };
        assert!(err.to_string().contains("unknown-model"));
    }
}
