//! # factorhd-serve — the network front end
//!
//! A hand-rolled threaded TCP serving layer over the engine's typed op
//! API — no external dependencies, in the same spirit as the vendored
//! shims. Three pieces (docs/SERVING.md, "Network front end"):
//!
//! * **Wire protocol** ([`protocol`]): length-prefixed frames carrying
//!   magic/version/request-id/kind payloads with an FNV-1a checksum
//!   trailer, mirroring the `.fhd` artifact codec's corruption
//!   discipline — every malformed input decodes to a typed
//!   [`WireError`], never a panic. Requests map 1:1 onto
//!   [`AnyOp`](factorhd_engine::AnyOp); responses are bit-identical
//!   round trips of [`AnyOutput`](factorhd_engine::AnyOutput) (floats
//!   travel as IEEE-754 bit patterns).
//! * **Adaptive batcher** ([`BatcherConfig`]): in-flight requests from
//!   all connections coalesce into one queue, dispatched to
//!   [`ModelRegistry::execute_batch`](factorhd_engine::ModelRegistry::execute_batch)
//!   when the batch is full (`max_batch`) or the oldest request has
//!   waited `max_delay`, whichever comes first. Responses scatter back
//!   to their connections by request id.
//! * **Server & client** ([`Server`], [`Client`]): one reader and one
//!   writer thread per connection; `Stats` and `Ping` ops answered
//!   inline; graceful shutdown that answers every accepted request.
//!   Per-server telemetry ([`ServingStats`]) rides on the engine's
//!   metrics machinery and is exposed over the wire via the `Stats` op.
//! * **Robustness** (docs/ROBUSTNESS.md): bounded admission with typed
//!   `Overloaded` shedding, optional per-request wire deadlines
//!   enforced at dequeue, slowloris read budgets on the server,
//!   reconnect + bounded jittered retry on the client
//!   ([`ClientConfig`] / [`RetryPolicy`]), and a fault-injection
//!   [`chaos`] proxy for the test battery.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use factorhd_core::TaxonomyBuilder;
//! use factorhd_engine::{AnyOp, EncodeScene, EngineConfig, ModelRegistry, ModelState};
//! use factorhd_serve::{Client, Server, ServerConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let registry = Arc::new(ModelRegistry::new());
//! let taxonomy = TaxonomyBuilder::new(512).class("animal", &[4]).build()?;
//! registry.install("zoo", ModelState::new(taxonomy, EngineConfig::default())?);
//!
//! let server = Server::start(Arc::clone(&registry), "127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//!
//! let mut rng = hdc::rng_from_seed(1);
//! let object = registry.get("zoo")?.state().taxonomy().sample_object(&mut rng);
//! let op = AnyOp::Encode(EncodeScene { scene: factorhd_core::Scene::single(object) });
//! let output = client.run("zoo", &op)?;
//! assert_eq!(output.kind(), factorhd_engine::OpKind::Encode);
//!
//! client.ping()?;
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batcher;
pub mod chaos;
mod client;
mod error;
pub mod metrics;
pub mod protocol;
mod server;

pub use batcher::BatcherConfig;
pub use chaos::{ChaosFault, ChaosProxy};
pub use client::{Client, ClientConfig, RetryPolicy};
pub use error::{ErrorCode, ServeError, WireError, MAX_ERROR_MESSAGE_BYTES};
pub use metrics::{HistogramSummary, ServeMetrics, ServingStats};
pub use protocol::{Request, Response};
pub use server::{Server, ServerConfig};

/// Convenient glob import of the serving front-end types.
pub mod prelude {
    pub use crate::{
        BatcherConfig, ChaosFault, ChaosProxy, Client, ClientConfig, ErrorCode, HistogramSummary,
        Request, Response, RetryPolicy, ServeError, ServeMetrics, Server, ServerConfig,
        ServingStats, WireError,
    };
}
