//! The chaos battery (docs/ROBUSTNESS.md, "Chaos harness"): the real
//! server and real client under injected faults — corrupted byte
//! streams via [`ChaosProxy`], engine-level failures via the
//! [`factorhd_engine::failpoint`] registry.
//!
//! Every test asserts the same three invariants from the robustness
//! contract:
//!
//! 1. **Typed errors only** — no panic ever crosses a crate boundary;
//!    every fault surfaces as a [`ServeError`] variant or a typed
//!    error response.
//! 2. **Zero lost request ids** — each accepted request gets exactly
//!    one response (possibly an error response), and requests the
//!    client retries transparently still succeed exactly once.
//! 3. **The server keeps serving** — after the fault, a fresh
//!    connection completes ops normally.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use factorhd_core::{Scene, Taxonomy, TaxonomyBuilder};
use factorhd_engine::failpoint::{self, FailMode};
use factorhd_engine::{artifact, AnyOp, EncodeScene, EngineConfig, ModelRegistry, ModelState};
use factorhd_serve::{
    BatcherConfig, ChaosFault, ChaosProxy, Client, ClientConfig, ErrorCode, RetryPolicy,
    ServeError, Server, ServerConfig,
};

/// Failpoints are process-global; tests that arm one hold this lock so
/// parallel test threads can't see each other's faults.
static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

fn failpoint_guard() -> std::sync::MutexGuard<'static, ()> {
    FAILPOINT_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Disarms a failpoint on drop, so a failing assertion can't leak an
/// armed fault into the next test.
struct Armed(&'static str);

impl Armed {
    fn arm(name: &'static str, mode: FailMode) -> Armed {
        failpoint::arm(name, mode);
        Armed(name)
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        failpoint::disarm(self.0);
    }
}

fn build_taxonomy(seed: u64) -> Taxonomy {
    TaxonomyBuilder::new(256)
        .seed(seed)
        .class("animal", &[4])
        .class("color", &[4])
        .build()
        .expect("valid taxonomy")
}

fn start_server(config: ServerConfig) -> Server {
    let registry = Arc::new(ModelRegistry::new());
    let state = ModelState::new(build_taxonomy(7), EngineConfig::default()).expect("valid model");
    registry.install("m", state);
    Server::start(registry, "127.0.0.1:0", config).expect("server starts")
}

/// A deterministic encode op; `objects` controls its
/// [`AnyOp::chaos_tag`] (300 + object count).
fn encode_op(taxonomy: &Taxonomy, seed: u64, objects: usize) -> AnyOp {
    let mut rng = hdc::rng_from_seed(seed);
    let scene = Scene::new(
        (0..objects)
            .map(|_| taxonomy.sample_object(&mut rng))
            .collect(),
    );
    AnyOp::Encode(EncodeScene { scene })
}

/// A client that surfaces the first failure instead of retrying — what
/// the fault-observation side of each test wants.
fn no_retry_client(addr: SocketAddr) -> Client {
    Client::connect_with(
        addr,
        ClientConfig {
            retry: None,
            read_timeout: Some(Duration::from_secs(5)),
            ..ClientConfig::default()
        },
    )
    .expect("client connects")
}

/// Post-fault liveness probe: a fresh direct connection must complete
/// a real op.
fn assert_still_serving(server: &Server) {
    let mut probe = no_retry_client(server.local_addr());
    let taxonomy = build_taxonomy(7);
    let op = encode_op(&taxonomy, 99, 1);
    probe
        .run("m", &op)
        .expect("server must keep serving after the fault");
}

// ---------------------------------------------------------------------------
// Stream corruption (via the chaos proxy)
// ---------------------------------------------------------------------------

#[test]
fn truncated_request_fails_typed_and_server_keeps_answering() {
    let server = start_server(ServerConfig::default());
    // Cut the client→server stream 20 bytes in: mid-frame (the length
    // prefix is 4 bytes and every op payload is longer than 16).
    let proxy = ChaosProxy::start(
        server.local_addr(),
        Some(ChaosFault::TruncateAfter(20)),
        None,
    )
    .expect("proxy starts");

    let taxonomy = build_taxonomy(7);
    let mut client = no_retry_client(proxy.local_addr());
    let err = client
        .run("m", &encode_op(&taxonomy, 1, 1))
        .expect_err("a truncated request cannot produce an output");
    assert!(
        matches!(err, ServeError::Closed | ServeError::Io(_)),
        "truncation must surface as a typed transport error, got {err:?}"
    );

    proxy.shutdown();
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn flipped_bit_in_response_fails_typed_not_misparsed() {
    let server = start_server(ServerConfig::default());
    // Server→client stream offset 10 = response payload byte 6, well
    // inside the checksummed region (header kind byte).
    let proxy = ChaosProxy::start(
        server.local_addr(),
        None,
        Some(ChaosFault::FlipBit { offset: 10, bit: 3 }),
    )
    .expect("proxy starts");

    let taxonomy = build_taxonomy(7);
    let mut client = no_retry_client(proxy.local_addr());
    let err = client
        .run("m", &encode_op(&taxonomy, 2, 1))
        .expect_err("a corrupted response must not decode");
    assert!(
        matches!(err, ServeError::Wire(_)),
        "a flipped bit must be caught by the codec, got {err:?}"
    );

    proxy.shutdown();
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn mid_flight_disconnects_are_survived_by_the_retry_contract() {
    let server = start_server(ServerConfig::default());
    // Kill each proxied connection after ~2 pong frames of s2c bytes;
    // every reconnect gets a fresh budget, so a retrying client makes
    // steady progress through repeated disconnects.
    let proxy = ChaosProxy::start(server.local_addr(), None, Some(ChaosFault::DropAfter(70)))
        .expect("proxy starts");

    let mut client = Client::connect_with(
        proxy.local_addr(),
        ClientConfig {
            read_timeout: Some(Duration::from_secs(5)),
            retry: Some(RetryPolicy {
                max_retries: 4,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(20),
            }),
            ..ClientConfig::default()
        },
    )
    .expect("client connects");

    // Zero lost requests: every ping must eventually succeed exactly
    // once, with the disconnects absorbed as transparent retries.
    for i in 0..10 {
        client.ping().unwrap_or_else(|err| {
            panic!("ping {i} must survive mid-flight disconnects, got {err:?}")
        });
    }
    assert!(
        client.retries() > 0,
        "the drop fault must have forced at least one retry"
    );

    proxy.shutdown();
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn pipelined_burst_through_disconnect_loses_no_answered_ids() {
    let server = start_server(ServerConfig::default());
    // Let roughly half the burst's responses through, then disconnect.
    let proxy = ChaosProxy::start(
        server.local_addr(),
        None,
        Some(ChaosFault::DropAfter(4 * 1024)),
    )
    .expect("proxy starts");

    let taxonomy = build_taxonomy(7);
    let ops: Vec<AnyOp> = (0..16).map(|i| encode_op(&taxonomy, i, 1)).collect();
    let mut client = no_retry_client(proxy.local_addr());
    match client.run_pipelined("m", &ops) {
        // The whole call fails typed once the stream dies: the burst
        // may mix idempotent and non-idempotent ops, so the client
        // never silently re-sends (the caller owns the dedup decision).
        Err(err) => assert!(
            matches!(
                err,
                ServeError::Closed | ServeError::Io(_) | ServeError::Wire(_)
            ),
            "disconnect mid-burst must be a typed transport error, got {err:?}"
        ),
        // Tiny frames can slip under the byte budget; then every slot
        // must hold a real per-op result.
        Ok(results) => assert_eq!(results.len(), ops.len()),
    }

    proxy.shutdown();
    assert_still_serving(&server);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Slow peers (server-side read budgets)
// ---------------------------------------------------------------------------

#[test]
fn slowloris_partial_frame_is_cut_off_by_the_read_budget() {
    let server = start_server(ServerConfig {
        frame_timeout: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    });

    // A raw socket that starts a frame and then stalls forever.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connects");
    stream
        .write_all(&[0x30, 0x00])
        .expect("partial length prefix writes");
    stream.flush().expect("flushes");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");

    // The server must give up on the half-frame and close: our read
    // unblocks with EOF (or a reset) well before the 10 s guard.
    let start = Instant::now();
    let mut buf = [0u8; 16];
    match stream.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("server must not answer a half-frame, sent {n} bytes"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "the read budget must cut the connection promptly, took {:?}",
        start.elapsed()
    );

    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn idle_connections_are_closed_quietly() {
    let server = start_server(ServerConfig {
        idle_timeout: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    });

    // Connect and send nothing at all.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout sets");
    let mut buf = [0u8; 16];
    match stream.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!("server must not send to an idle peer, sent {n} bytes"),
    }

    // An idle hangup is not a protocol error.
    let stats = server.stats();
    assert_eq!(
        stats.protocol_errors, 0,
        "idle expiry must not count as a protocol error"
    );
    assert_still_serving(&server);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Engine faults (failpoints)
// ---------------------------------------------------------------------------

#[test]
fn injected_op_panic_is_contained_to_its_request() {
    let _guard = failpoint_guard();
    let server = start_server(ServerConfig::default());
    let taxonomy = build_taxonomy(7);

    // Nine single-object encodes (tag 301) around one two-object
    // encode (tag 302); poison exactly the latter.
    let mut ops: Vec<AnyOp> = (0..9).map(|i| encode_op(&taxonomy, i, 1)).collect();
    ops.insert(4, encode_op(&taxonomy, 40, 2));
    assert_ne!(ops[0].chaos_tag(), ops[4].chaos_tag());
    let _armed = Armed::arm("engine/op_panic", FailMode::Tag(ops[4].chaos_tag()));

    let mut client = no_retry_client(server.local_addr());
    let results = client
        .run_pipelined("m", &ops)
        .expect("the transport must survive a contained panic");
    assert_eq!(results.len(), ops.len(), "every request id must answer");
    for (i, result) in results.iter().enumerate() {
        if i == 4 {
            match result {
                Err(ServeError::Remote { code, .. }) => {
                    assert_eq!(*code, ErrorCode::OpPanicked, "poisoned op fails typed")
                }
                other => panic!("poisoned op must fail with OpPanicked, got {other:?}"),
            }
        } else {
            result
                .as_ref()
                .unwrap_or_else(|err| panic!("op {i} shares no fate with op 4: {err:?}"));
        }
    }

    let stats = server.stats();
    assert!(
        stats.ops_panicked >= 1,
        "the panic must be visible in telemetry, stats: {stats:?}"
    );
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn overloaded_queue_sheds_typed_and_recovers() {
    let _guard = failpoint_guard();
    // A tiny admission queue plus a stalled batcher: submissions pile
    // up against `max_queue` while the worker sleeps.
    let server = start_server(ServerConfig {
        batcher: BatcherConfig {
            max_batch: 2,
            max_delay: Duration::ZERO,
            max_queue: 2,
        },
        ..ServerConfig::default()
    });
    let _armed = Armed::arm(
        "serve/batcher_stall",
        FailMode::Sleep(Duration::from_millis(40)),
    );

    let taxonomy = build_taxonomy(7);
    let ops: Vec<AnyOp> = (0..32).map(|i| encode_op(&taxonomy, i, 1)).collect();
    let mut client = no_retry_client(server.local_addr());
    let results = client
        .run_pipelined("m", &ops)
        .expect("shedding must not break the transport");

    // Zero lost ids: all 32 requests answer, each either executing or
    // refusing typed.
    assert_eq!(results.len(), ops.len());
    let mut executed = 0usize;
    let mut shed = 0usize;
    for result in &results {
        match result {
            Ok(_) => executed += 1,
            Err(ServeError::Remote { code, .. }) if *code == ErrorCode::Overloaded => shed += 1,
            other => panic!("only Output or typed Overloaded is acceptable, got {other:?}"),
        }
    }
    assert!(shed > 0, "32 ops against a queue of 2 must shed");
    assert!(executed > 0, "admitted requests must still execute");
    assert_eq!(
        server.stats().requests_shed,
        shed as u64,
        "telemetry must count exactly the shed requests"
    );

    drop(_armed);
    assert_still_serving(&server);
    server.shutdown();
}

#[test]
fn expired_deadline_is_refused_without_executing() {
    let _guard = failpoint_guard();
    let server = start_server(ServerConfig::default());
    let _armed = Armed::arm(
        "serve/batcher_stall",
        FailMode::Sleep(Duration::from_millis(40)),
    );

    let taxonomy = build_taxonomy(7);
    let mut client = no_retry_client(server.local_addr());
    let err = client
        .run_with_deadline(
            "m",
            &encode_op(&taxonomy, 1, 1),
            Some(Duration::from_micros(1)),
        )
        .expect_err("a 1 µs budget cannot survive a 40 ms stall");
    match err {
        ServeError::Remote { code, .. } => assert_eq!(code, ErrorCode::DeadlineExceeded),
        other => panic!("expected a typed DeadlineExceeded, got {other:?}"),
    }
    let stats = server.stats();
    assert!(stats.deadline_expired >= 1, "telemetry counts the expiry");
    // The expired request was answered instantly, never executed.
    assert_eq!(
        stats.e2e_latency_ns.count, 0,
        "refused requests must not enter the admitted-latency histogram"
    );

    drop(_armed);
    assert_still_serving(&server);
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Crash-safe artifacts
// ---------------------------------------------------------------------------

#[test]
fn kill_mid_artifact_write_never_publishes_a_torn_file() {
    let _guard = failpoint_guard();
    let dir = std::env::temp_dir().join(format!("factorhd_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.fhd");

    // A good artifact is on disk first.
    let original = build_taxonomy(7);
    artifact::save_model(&path, &original, None).expect("clean save succeeds");

    // Crash the next save mid-write: it must error out *before* the
    // atomic rename, leaving the published path untouched. The
    // replacement has a different dimension so a torn or blended load
    // would be detectable.
    let _armed = Armed::arm("engine/artifact_partial_write", FailMode::Once);
    let replacement = TaxonomyBuilder::new(512)
        .seed(8)
        .class("animal", &[4])
        .build()
        .expect("valid taxonomy");
    artifact::save_model(&path, &replacement, None)
        .expect_err("a simulated crash mid-save must surface as an error");

    // The torn temp file exists (a real crash couldn't clean up) …
    let torn: Vec<_> = std::fs::read_dir(&dir)
        .expect("dir lists")
        .filter_map(|entry| entry.ok())
        .filter(|entry| entry.file_name().to_string_lossy().contains(".tmp-"))
        .collect();
    assert!(!torn.is_empty(), "the simulated crash leaves its torn temp");

    // … but the loader only ever sees the original, intact artifact.
    let (loaded, _) = artifact::load_model(&path).expect("published artifact still loads");
    assert_eq!(
        loaded.dim(),
        original.dim(),
        "the published artifact must still be the pre-crash one"
    );

    // After the fault clears, the same path saves and loads cleanly.
    artifact::save_model(&path, &replacement, None).expect("post-crash save succeeds");
    artifact::load_model(&path).expect("replacement artifact loads");

    let _ = std::fs::remove_dir_all(&dir);
}
