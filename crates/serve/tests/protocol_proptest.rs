//! Property coverage for the wire codec, mirroring the `.fhd` artifact
//! corruption suite: encode → decode is identity for every request and
//! response variant, and corrupted bytes — truncation at every length,
//! bad magic, version skew, a flipped bit anywhere — fail with a typed
//! [`WireError`] instead of a panic.

use factorhd_core::{
    ClassDecode, DecodedObject, DecodedScene, FactorizeStats, ItemPath, ObjectSpec, QueryAnswer,
    Scene,
};
use factorhd_engine::{
    AnyOp, AnyOutput, Classify, EncodeScene, FactorizeRep1, FactorizeRep2, FactorizeRep3,
    MembershipProbe, PartialDecode, Retrain, Train,
};
use factorhd_serve::protocol::{
    self, decode_request, decode_response, encode_request, encode_response, Request, Response,
    MAGIC, VERSION,
};
use factorhd_serve::{ErrorCode, HistogramSummary, ServingStats, WireError};
use hdc::AccumHv;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

fn accum_strategy() -> BoxedStrategy<AccumHv> {
    proptest::collection::vec(any::<i32>(), 1..48)
        .prop_map(|components| {
            let mut bytes = Vec::with_capacity(components.len() * 4);
            for component in &components {
                bytes.extend_from_slice(&component.to_le_bytes());
            }
            AccumHv::from_le_bytes(components.len(), &bytes).expect("well-formed accumulator")
        })
        .boxed()
}

fn path_strategy() -> BoxedStrategy<ItemPath> {
    proptest::collection::vec(any::<u16>(), 1..4)
        .prop_map(ItemPath::new)
        .boxed()
}

fn opt_path_strategy() -> BoxedStrategy<Option<ItemPath>> {
    prop_oneof![Just(None), path_strategy().prop_map(Some),].boxed()
}

fn object_strategy() -> BoxedStrategy<ObjectSpec> {
    proptest::collection::vec(opt_path_strategy(), 1..4)
        .prop_map(ObjectSpec::new)
        .boxed()
}

fn scene_strategy() -> BoxedStrategy<Scene> {
    proptest::collection::vec(object_strategy(), 0..3)
        .prop_map(Scene::new)
        .boxed()
}

fn model_strategy() -> BoxedStrategy<String> {
    prop_oneof![
        Just(String::new()),
        Just("zoo".to_owned()),
        Just("a-model-with-a-long-name-αβγ".to_owned()),
    ]
    .boxed()
}

/// Optional per-request deadline budget, in whole microseconds — the
/// wire carries `u64` micros, so round-trip equality holds exactly for
/// any `Duration` built from micros.
fn deadline_strategy() -> BoxedStrategy<Option<std::time::Duration>> {
    prop_oneof![
        Just(None),
        (0u64..u64::from(u32::MAX))
            .prop_map(|micros| Some(std::time::Duration::from_micros(micros))),
    ]
    .boxed()
}

fn op_strategy() -> BoxedStrategy<AnyOp> {
    prop_oneof![
        accum_strategy().prop_map(|scene| AnyOp::Rep1(FactorizeRep1 { scene })),
        accum_strategy().prop_map(|scene| AnyOp::Rep2(FactorizeRep2 { scene })),
        accum_strategy().prop_map(|scene| AnyOp::Rep3(FactorizeRep3 { scene })),
        (
            accum_strategy(),
            proptest::collection::vec(0usize..64, 0..4)
        )
            .prop_map(|(scene, classes)| AnyOp::Partial(PartialDecode { scene, classes })),
        (
            accum_strategy(),
            proptest::collection::vec((0usize..64, path_strategy()), 0..3),
            proptest::collection::vec(0usize..64, 0..3),
        )
            .prop_map(|(scene, items, absent)| AnyOp::Membership(MembershipProbe {
                scene,
                items,
                absent,
            })),
        scene_strategy().prop_map(|scene| AnyOp::Encode(EncodeScene { scene })),
        (accum_strategy(), any::<u64>(), 0usize..64, any::<bool>()).prop_map(
            |(example, sample, class, retain)| {
                AnyOp::Train(Train {
                    class,
                    sample,
                    example,
                    retain,
                })
            }
        ),
        (0u32..1024).prop_map(|epochs| AnyOp::Retrain(Retrain { epochs })),
        (accum_strategy(), 1usize..8)
            .prop_map(|(query, top_k)| AnyOp::Classify(Classify { query, top_k })),
    ]
    .boxed()
}

fn request_strategy() -> BoxedStrategy<Request> {
    prop_oneof![
        (model_strategy(), op_strategy(), deadline_strategy()).prop_map(|(model, op, deadline)| {
            Request::Op {
                model,
                op,
                deadline,
            }
        }),
        Just(Request::Stats),
        Just(Request::Ping),
    ]
    .boxed()
}

fn decoded_object_strategy() -> BoxedStrategy<DecodedObject> {
    (object_strategy(), any::<f64>())
        .prop_map(|(object, confidence)| DecodedObject::from_parts(object, confidence))
        .boxed()
}

fn stats_strategy() -> BoxedStrategy<ServingStats> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(|(a, b, c, d)| ServingStats {
            connections_accepted: a.0,
            connections_closed: a.1,
            requests_received: a.2,
            responses_sent: a.3,
            protocol_errors: b.0,
            batches_dispatched: b.1,
            requests_shed: b.2,
            deadline_expired: b.3,
            ops_panicked: b.4,
            coalesced_batch: HistogramSummary {
                count: c.0,
                p50: c.1,
                p95: c.2,
                p99: c.3,
            },
            e2e_latency_ns: HistogramSummary {
                count: d.0,
                p50: d.1,
                p95: d.2,
                p99: d.3,
            },
        })
        .boxed()
}

fn output_strategy() -> BoxedStrategy<AnyOutput> {
    prop_oneof![
        decoded_object_strategy().prop_map(AnyOutput::Rep1),
        decoded_object_strategy().prop_map(AnyOutput::Rep2),
        (
            proptest::collection::vec(decoded_object_strategy(), 0..3),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
            any::<bool>(),
            any::<f64>(),
        )
            .prop_map(|(objects, counters, truncated, residual_norm)| {
                AnyOutput::Rep3(DecodedScene {
                    objects,
                    stats: FactorizeStats {
                        similarity_checks: counters.0,
                        combination_tests: counters.1,
                        unbind_ops: counters.2,
                        objects_found: counters.3 as usize,
                        truncated_combinations: truncated,
                    },
                    residual_norm,
                })
            }),
        proptest::collection::vec(
            (0usize..64, opt_path_strategy(), any::<f64>())
                .prop_map(|(class, path, sim)| ClassDecode { class, path, sim }),
            0..4
        )
        .prop_map(AnyOutput::Partial),
        (any::<bool>(), any::<f64>(), any::<f64>()).prop_map(|(present, evidence, threshold)| {
            AnyOutput::Membership(QueryAnswer {
                present,
                evidence,
                threshold,
            })
        }),
        accum_strategy().prop_map(AnyOutput::Encoded),
    ]
    .boxed()
}

fn response_strategy() -> BoxedStrategy<Response> {
    prop_oneof![
        output_strategy().prop_map(Response::Output),
        stats_strategy().prop_map(Response::Stats),
        Just(Response::Pong),
        (0u16..8, model_strategy()).prop_map(|(code, message)| Response::Error {
            code: ErrorCode::from_u16(code),
            message,
        }),
    ]
    .boxed()
}

/// Recomputes a payload's checksum trailer after a deliberate header
/// mutation, so the mutation (not the checksum) is what decode sees.
fn reseal(payload: &mut [u8]) {
    let split = payload.len() - 8;
    let checksum = protocol::fnv1a(&payload[..split]);
    payload[split..].copy_from_slice(&checksum.to_le_bytes());
}

fn assert_typed(result: Result<(u64, Request), WireError>) {
    // Any Err is acceptable — the property is that corruption maps to a
    // typed error (this call returning at all proves no panic).
    result.expect_err("corrupted payload must not decode");
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn request_round_trips(id in any::<u64>(), request in request_strategy()) {
        let payload = encode_request(id, &request);
        let (decoded_id, decoded) = decode_request(&payload).expect("valid payload decodes");
        prop_assert_eq!(decoded_id, id);
        prop_assert_eq!(decoded, request);
    }

    #[test]
    fn response_round_trips(id in any::<u64>(), response in response_strategy()) {
        let payload = encode_response(id, &response);
        let (decoded_id, decoded) = decode_response(&payload).expect("valid payload decodes");
        prop_assert_eq!(decoded_id, id);
        prop_assert_eq!(decoded, response);
    }

    #[test]
    fn truncation_is_typed_at_every_length(id in any::<u64>(), request in request_strategy()) {
        let payload = encode_request(id, &request);
        for cut in 0..payload.len() {
            let result = decode_request(&payload[..cut]);
            prop_assert!(
                result.is_err(),
                "payload cut to {} of {} bytes must not decode",
                cut,
                payload.len()
            );
        }
    }

    #[test]
    fn response_truncation_is_typed(id in any::<u64>(), response in response_strategy()) {
        let payload = encode_response(id, &response);
        for cut in 0..payload.len() {
            prop_assert!(decode_response(&payload[..cut]).is_err());
        }
    }

    #[test]
    fn bad_magic_is_typed(id in any::<u64>(), request in request_strategy(), byte in 0usize..4) {
        let mut payload = encode_request(id, &request);
        payload[byte] ^= 0xFF;
        reseal(&mut payload);
        match decode_request(&payload) {
            Err(WireError::BadMagic { found }) => {
                prop_assert_ne!(found.to_vec(), MAGIC.to_vec());
            }
            other => prop_assert!(false, "expected BadMagic, got {:?}", other),
        }
    }

    #[test]
    fn version_skew_is_typed(id in any::<u64>(), request in request_strategy(), skew in 1u16..5) {
        let mut payload = encode_request(id, &request);
        let version = VERSION.wrapping_add(skew);
        payload[4..6].copy_from_slice(&version.to_le_bytes());
        reseal(&mut payload);
        match decode_request(&payload) {
            Err(WireError::UnsupportedVersion(found)) => prop_assert_eq!(found, version),
            other => prop_assert!(false, "expected UnsupportedVersion, got {:?}", other),
        }
    }

    #[test]
    fn unknown_kind_is_typed(id in any::<u64>(), request in request_strategy()) {
        let mut payload = encode_request(id, &request);
        payload[6] = 0x40; // no request kind lives here
        reseal(&mut payload);
        match decode_request(&payload) {
            Err(WireError::UnknownKind(kind)) => prop_assert_eq!(kind, 0x40),
            other => prop_assert!(false, "expected UnknownKind, got {:?}", other),
        }
    }

    #[test]
    fn flipped_bit_anywhere_is_typed(
        id in any::<u64>(),
        request in request_strategy(),
        position in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut payload = encode_request(id, &request);
        let at = (position % payload.len() as u64) as usize;
        payload[at] ^= 1 << bit;
        // No reseal: a single flipped bit anywhere (header, body, or
        // trailer) must be caught — by the magic/version checks or the
        // checksum — before the body is interpreted.
        assert_typed(decode_request(&payload));
    }

    #[test]
    fn deadline_round_trips_on_every_op_variant(
        id in any::<u64>(),
        model in model_strategy(),
        op in op_strategy(),
        micros in 0u64..u64::from(u32::MAX),
    ) {
        // A deadline must survive the round trip regardless of which op
        // body follows the header, and stripping it must shrink the
        // payload by exactly the 8 optional bytes.
        let deadline = Some(std::time::Duration::from_micros(micros));
        let with = encode_request(id, &Request::Op {
            model: model.clone(),
            op: op.clone(),
            deadline,
        });
        let without = encode_request(id, &Request::Op { model: model.clone(), op: op.clone(), deadline: None });
        prop_assert_eq!(with.len(), without.len() + 8);
        let (_, decoded) = decode_request(&with).expect("deadline frame decodes");
        prop_assert_eq!(decoded, Request::Op { model, op, deadline });
    }

    #[test]
    fn robustness_error_codes_round_trip(
        id in any::<u64>(),
        code in 0u16..16,
        message in model_strategy(),
    ) {
        // Overloaded (5), DeadlineExceeded (6), and OpPanicked (7) must
        // survive the wire like every other code — including codes this
        // build has never heard of (Other passthrough).
        let response = Response::Error { code: ErrorCode::from_u16(code), message };
        let payload = encode_response(id, &response);
        let (_, decoded) = decode_response(&payload).expect("error frame decodes");
        prop_assert_eq!(decoded, response);
    }

    #[test]
    fn version_skew_compat_no_deadline_frames_stay_v1(
        id in any::<u64>(),
        model in model_strategy(),
        op in op_strategy(),
    ) {
        // Forward compat: a new client that sends no deadline emits a
        // frame an old (v1) decoder accepts — flags byte is zero and the
        // declared version is unchanged.
        let payload = encode_request(id, &Request::Op { model, op, deadline: None });
        prop_assert_eq!(&payload[4..6], &VERSION.to_le_bytes());
        prop_assert_eq!(payload[7], 0);
    }

    #[test]
    fn version_skew_compat_unknown_flags_fail_typed(
        id in any::<u64>(),
        request in request_strategy(),
        extra_bit in 1u8..8,
    ) {
        // Backward compat: a frame from a *future* build that sets flag
        // bits this decoder does not know must fail typed, never
        // misparse the body.
        let mut payload = encode_request(id, &request);
        payload[7] |= 1 << extra_bit;
        reseal(&mut payload);
        match decode_request(&payload) {
            Err(WireError::Corrupt(_)) => {}
            other => prop_assert!(false, "expected Corrupt, got {:?}", other),
        }
    }

    #[test]
    fn trailing_bytes_are_typed(id in any::<u64>(), request in request_strategy()) {
        let sealed = encode_request(id, &request);
        // Splice junk between body and trailer, reseal: structure
        // decodes but the cursor must reject the leftovers.
        let split = sealed.len() - 8;
        let mut payload = Vec::with_capacity(sealed.len() + 3);
        payload.extend_from_slice(&sealed[..split]);
        payload.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
        payload.extend_from_slice(&sealed[split..]);
        reseal(&mut payload);
        assert_typed(decode_request(&payload));
    }
}
