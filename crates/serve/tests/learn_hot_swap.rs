//! Hot swap under retraining: clients stream `Classify` ops through
//! the network front end while a trainer retrains the prototypes
//! underneath them. Every classification must be bit-identical to the
//! output of exactly one published snapshot (old or new — never a
//! blend of two epochs), no request id may be lost, and readers must
//! keep being answered while retraining runs (they classify against an
//! immutable snapshot `Arc`, never the staging model's lock).

use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use factorhd_core::TaxonomyBuilder;
use factorhd_engine::{
    AnyOp, AnyOutput, Classify, EngineConfig, LearnConfig, ModelRegistry, ModelState,
    PrototypeModel, Retrain, Train,
};
use factorhd_serve::{BatcherConfig, Client, Server, ServerConfig};
use hdc::{AccumHv, BipolarHv};

const CLASSES: usize = 4;
const DIM: usize = 256;
const TRAIN_EXAMPLES: usize = 48;
const RETRAINS: u32 = 6;
const CLIENTS: usize = 3;
const READS_PER_CLIENT: usize = 40;

/// A deterministic labelled example: the class anchor with a noise
/// vector mixed in, so classes overlap enough that retraining epochs
/// actually move the prototypes.
fn example(class: usize, sample: u64) -> AccumHv {
    let mut anchor_rng = hdc::rng_from_seed(0xA11C0 + class as u64);
    let anchor = BipolarHv::random(DIM, &mut anchor_rng);
    let mut noise_rng = hdc::rng_from_seed(0x4015E + sample);
    let noise = BipolarHv::random(DIM, &mut noise_rng);
    let mut acc = AccumHv::zeros(DIM);
    acc.add_bipolar(&anchor, 1);
    acc.add_bipolar(&noise, 2);
    acc
}

/// The labelled training set, round-robin over classes.
fn training_set() -> Vec<(usize, u64, AccumHv)> {
    (0..TRAIN_EXAMPLES)
        .map(|i| (i % CLASSES, i as u64, example(i % CLASSES, i as u64)))
        .collect()
}

/// The shared query set readers classify over and over.
fn queries() -> Vec<AccumHv> {
    (0..8)
        .map(|i| example(i % CLASSES, 10_000 + i as u64))
        .collect()
}

#[test]
fn classifications_under_retrain_match_exactly_one_published_epoch() {
    let learn = LearnConfig::new(CLASSES, DIM);
    let taxonomy = TaxonomyBuilder::new(DIM)
        .class("shape", &[4])
        .build()
        .expect("valid taxonomy");
    let state = ModelState::new_learnable(taxonomy, EngineConfig::default(), learn)
        .expect("valid learnable state");

    let registry = Arc::new(ModelRegistry::new());
    registry.install("m", state);
    let server = Server::start(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig {
            batcher: BatcherConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(1),
                ..BatcherConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    // Pre-train over the wire; each successful Train auto-publishes.
    let mut trainer = Client::connect(addr).expect("trainer connects");
    for (class, sample, hv) in training_set() {
        let ack = trainer
            .run(
                "m",
                &AnyOp::Train(Train {
                    class,
                    sample,
                    example: hv,
                    retain: true,
                }),
            )
            .expect("train succeeds");
        assert!(matches!(ack, AnyOutput::Trained(_)));
    }

    // Reference replay: the identical model trained locally, snapshotted
    // after every retrain epoch. Classification outputs are keyed by the
    // snapshot's epoch counter, so each wire response can be checked
    // against exactly the epoch it claims to come from.
    let mut reference = PrototypeModel::new(learn).expect("valid config");
    for (class, sample, hv) in training_set() {
        reference
            .observe(class, sample, &hv, true)
            .expect("observe succeeds");
    }
    let query_set = queries();
    // expected[k][q] = classification of query q at epoch k.
    let mut expected: Vec<Vec<factorhd_engine::Classification>> = Vec::new();
    let snapshot_at = |model: &PrototypeModel| {
        let snapshot = model.snapshot().expect("snapshot builds");
        query_set
            .iter()
            .map(|q| snapshot.classify(q, 2).expect("classify succeeds"))
            .collect::<Vec<_>>()
    };
    expected.push(snapshot_at(&reference));
    for _ in 0..RETRAINS {
        let report = reference.retrain(1);
        assert_eq!(report.epochs_run, 1);
        expected.push(snapshot_at(&reference));
    }

    let pretrain_responses = server.stats().responses_sent;
    let received: Vec<Vec<(usize, factorhd_engine::Classification)>> = thread::scope(|scope| {
        // Trainer: wait until reads are demonstrably mid-flight, then
        // retrain one epoch at a time (each publish hot-swaps the
        // snapshot readers resolve).
        {
            let server = &server;
            scope.spawn(move || {
                let mut trainer = Client::connect(addr).expect("trainer reconnects");
                let quarter = pretrain_responses + (CLIENTS * READS_PER_CLIENT / 4) as u64;
                let deadline = Instant::now() + Duration::from_secs(30);
                while server.stats().responses_sent < quarter {
                    if Instant::now() > deadline {
                        break;
                    }
                    thread::yield_now();
                }
                for _ in 0..RETRAINS {
                    let out = trainer
                        .run("m", &AnyOp::Retrain(Retrain { epochs: 1 }))
                        .expect("retrain succeeds");
                    assert!(matches!(out, AnyOutput::Retrained(_)));
                }
            });
        }

        let query_set = &query_set;
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_client| {
                scope.spawn(move || {
                    let mut reader = Client::connect(addr).expect("reader connects");
                    (0..READS_PER_CLIENT)
                        .map(|i| {
                            let q = i % query_set.len();
                            let out = reader
                                .run(
                                    "m",
                                    &AnyOp::Classify(Classify {
                                        query: query_set[q].clone(),
                                        top_k: 2,
                                    }),
                                )
                                .expect("no classify may fail during a retrain");
                            match out {
                                AnyOutput::Classified(c) => (q, c),
                                other => panic!("expected classification, got {other:?}"),
                            }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|worker| worker.join().expect("reader thread completes"))
            .collect()
    });

    // Every response matches the reference output of exactly the epoch
    // it claims — a torn read (a blend of two snapshots) could not.
    let mut initial_epoch_hits = 0usize;
    let mut retrained_hits = 0usize;
    for (client, outputs) in received.iter().enumerate() {
        assert_eq!(
            outputs.len(),
            READS_PER_CLIENT,
            "client {client} lost responses"
        );
        let mut last_epoch = 0u64;
        for (i, (q, classification)) in outputs.iter().enumerate() {
            let epoch = classification.epoch;
            assert!(
                epoch <= RETRAINS as u64,
                "client {client} op {i}: epoch {epoch} was never published"
            );
            assert_eq!(
                classification, &expected[epoch as usize][*q],
                "client {client} op {i}: response is not bit-identical to epoch {epoch}"
            );
            // Sequential requests from one client never travel back in
            // time: publishes are generation-ordered.
            assert!(
                epoch >= last_epoch,
                "client {client} op {i}: epoch regressed"
            );
            last_epoch = epoch;
            if epoch == 0 {
                initial_epoch_hits += 1;
            } else {
                retrained_hits += 1;
            }
        }
    }
    assert!(
        initial_epoch_hits > 0,
        "no response came from the pre-retrain snapshot"
    );
    assert!(
        retrained_hits > 0,
        "no response came from a retrained snapshot"
    );

    // A final classify observes the last published epoch exactly.
    let mut checker = Client::connect(addr).expect("checker connects");
    let out = checker
        .run(
            "m",
            &AnyOp::Classify(Classify {
                query: query_set[0].clone(),
                top_k: 2,
            }),
        )
        .expect("final classify succeeds");
    match out {
        AnyOutput::Classified(c) => {
            assert_eq!(c.epoch, RETRAINS as u64);
            assert_eq!(c, expected[RETRAINS as usize][0]);
        }
        other => panic!("expected classification, got {other:?}"),
    }

    let stats = server.stats();
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.responses_sent, stats.requests_received);
    server.shutdown();
}
