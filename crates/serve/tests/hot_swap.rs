//! Hot-swap under load: clients stream ops through the network front
//! end while the registry hot-swaps the model underneath them. Every
//! response must be bit-identical to the output of either the old or
//! the new generation — never an error, never a lost request-id, never
//! a blend.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use factorhd_core::{Encoder, Scene, Taxonomy, TaxonomyBuilder};
use factorhd_engine::{
    AnyOp, AnyOutput, EncodeScene, EngineConfig, FactorizeRep2, ModelId, ModelRegistry, ModelState,
};
use factorhd_serve::{BatcherConfig, Client, Server, ServerConfig};

const CLIENTS: usize = 4;
const OPS_PER_CLIENT: usize = 40;

/// Same dimension and class structure, different seed: ops built for
/// one generation stay valid (deterministically decodable) under the
/// other, but the two generations' outputs differ.
fn build_taxonomy(seed: u64) -> Taxonomy {
    TaxonomyBuilder::new(256)
        .seed(seed)
        .class("animal", &[4])
        .class("color", &[4])
        .build()
        .expect("valid taxonomy")
}

/// The per-client op stream: encodes and Rep-2 factorizations whose
/// inputs are generation-independent bytes (objects for Encode, an
/// old-generation scene vector for Rep-2 — garbage under the new
/// generation, but deterministic garbage).
fn stream_ops(taxonomy: &Taxonomy, client: usize) -> Vec<AnyOp> {
    let encoder = Encoder::new(taxonomy);
    let mut rng = hdc::rng_from_seed(0xC0FFEE + client as u64);
    (0..OPS_PER_CLIENT)
        .map(|i| {
            let object = taxonomy.sample_object(&mut rng);
            if i % 2 == 0 {
                AnyOp::Encode(EncodeScene {
                    scene: Scene::single(object),
                })
            } else {
                AnyOp::Rep2(FactorizeRep2 {
                    scene: encoder
                        .encode_scene(&Scene::single(object))
                        .expect("encodable"),
                })
            }
        })
        .collect()
}

/// Direct reference outputs for `ops` against one pinned model state.
fn reference(state: &Arc<ModelState>, ops: &[AnyOp]) -> Vec<AnyOutput> {
    let registry = ModelRegistry::new();
    registry.install_shared("m", Arc::clone(state));
    let batch: Vec<(ModelId, AnyOp)> = ops
        .iter()
        .map(|op| (ModelId::new("m"), op.clone()))
        .collect();
    registry
        .execute_batch(&batch)
        .into_iter()
        .map(|result| result.expect("reference execution succeeds"))
        .collect()
}

#[test]
fn responses_under_hot_swap_are_old_or_new_never_blended() {
    let old_state = Arc::new(ModelState::new(build_taxonomy(1), EngineConfig::default()).unwrap());
    let new_state = Arc::new(ModelState::new(build_taxonomy(2), EngineConfig::default()).unwrap());

    // Per-client streams are built against the OLD taxonomy; both
    // generations share its dimension and shape, so every op is
    // executable under either.
    let streams: Vec<Vec<AnyOp>> = (0..CLIENTS)
        .map(|client| stream_ops(old_state.taxonomy(), client))
        .collect();
    let expected_old: Vec<Vec<AnyOutput>> = streams
        .iter()
        .map(|ops| reference(&old_state, ops))
        .collect();
    let expected_new: Vec<Vec<AnyOutput>> = streams
        .iter()
        .map(|ops| reference(&new_state, ops))
        .collect();
    // The test is vacuous unless the generations actually disagree.
    assert_ne!(
        expected_old, expected_new,
        "generations must produce different outputs"
    );

    let registry = Arc::new(ModelRegistry::new());
    registry.install_shared("m", Arc::clone(&old_state));
    let server = Server::start(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig {
            batcher: BatcherConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(1),
                ..BatcherConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();
    let swapped = Arc::new(AtomicBool::new(false));

    let received: Vec<Vec<AnyOutput>> = thread::scope(|scope| {
        // Swapper: wait until the stream is demonstrably mid-flight,
        // then install the new generation.
        {
            let registry = Arc::clone(&registry);
            let new_state = Arc::clone(&new_state);
            let swapped = Arc::clone(&swapped);
            let server = &server;
            scope.spawn(move || {
                let deadline = Instant::now() + Duration::from_secs(30);
                while server.stats().responses_sent < (CLIENTS * OPS_PER_CLIENT / 4) as u64 {
                    if Instant::now() > deadline {
                        break;
                    }
                    thread::yield_now();
                }
                registry.install_shared("m", new_state);
                swapped.store(true, Ordering::SeqCst);
            });
        }

        let workers: Vec<_> = streams
            .iter()
            .map(|ops| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connects");
                    ops.iter()
                        .map(|op| {
                            client
                                .run("m", op)
                                .expect("no response may be an error during a hot swap")
                        })
                        .collect::<Vec<AnyOutput>>()
                })
            })
            .collect();
        workers
            .into_iter()
            .map(|worker| worker.join().expect("client thread completes"))
            .collect()
    });
    assert!(swapped.load(Ordering::SeqCst), "swap must have happened");

    // Every response is bit-identical to exactly the old or the new
    // generation's output for that op — and once a client has seen the
    // new generation, the registry never serves it the old one again
    // (install is atomic; in-flight batches finish on the model they
    // resolved).
    let mut old_hits = 0usize;
    let mut new_hits = 0usize;
    for (client, outputs) in received.iter().enumerate() {
        assert_eq!(
            outputs.len(),
            OPS_PER_CLIENT,
            "client {client} lost responses"
        );
        for (i, output) in outputs.iter().enumerate() {
            let from_old = output == &expected_old[client][i];
            let from_new = output == &expected_new[client][i];
            assert!(
                from_old || from_new,
                "client {client} op {i}: response matches neither generation"
            );
            if from_old {
                old_hits += 1;
            } else {
                new_hits += 1;
            }
        }
    }
    // The swap happened mid-stream, so both generations must appear
    // across the workload as a whole.
    assert!(old_hits > 0, "no response came from the old generation");
    assert!(new_hits > 0, "no response came from the new generation");

    let stats = server.stats();
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.requests_received, (CLIENTS * OPS_PER_CLIENT) as u64);
    assert_eq!(stats.responses_sent, (CLIENTS * OPS_PER_CLIENT) as u64);
    server.shutdown();
}
