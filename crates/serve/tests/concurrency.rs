//! Loopback concurrency: N client threads stream mixed ops against a
//! two-model registry through the network front end, and every decoded
//! response must be bit-identical to `execute_batch` run directly on
//! the same registry — across 1-, 2-, and 4-lane worker pools (the
//! in-process equivalent of `RAYON_NUM_THREADS={1,2,4}`; the CI
//! multi-thread matrix covers the env-var entry path on this same
//! test).

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use factorhd_core::{Encoder, Scene, Taxonomy, TaxonomyBuilder};
use factorhd_engine::{
    AnyOp, AnyOutput, EncodeScene, EngineConfig, FactorizeRep1, FactorizeRep2, FactorizeRep3,
    MembershipProbe, ModelId, ModelRegistry, ModelState, PartialDecode,
};
use factorhd_serve::{BatcherConfig, Client, Server, ServerConfig};

const CLIENTS: usize = 6;
const OPS_PER_CLIENT: usize = 18;

fn build_taxonomy(seed: u64) -> Taxonomy {
    TaxonomyBuilder::new(256)
        .seed(seed)
        .class("animal", &[4, 2])
        .class("color", &[4])
        .build()
        .expect("valid taxonomy")
}

/// One deterministic mixed op against `taxonomy`, cycling through all
/// six kinds.
fn mixed_op(taxonomy: &Taxonomy, index: usize, seed: u64) -> AnyOp {
    let encoder = Encoder::new(taxonomy);
    let mut rng = hdc::rng_from_seed(seed.wrapping_add(index as u64));
    let object = taxonomy.sample_object(&mut rng);
    let scene = encoder
        .encode_scene(&Scene::single(object.clone()))
        .expect("encodable");
    match index % 6 {
        0 => AnyOp::Rep1(FactorizeRep1 { scene }),
        1 => AnyOp::Rep2(FactorizeRep2 { scene }),
        2 => {
            let other = taxonomy.sample_object(&mut rng);
            AnyOp::Rep3(FactorizeRep3 {
                scene: encoder
                    .encode_scene(&Scene::new(vec![object, other]))
                    .expect("encodable"),
            })
        }
        3 => AnyOp::Partial(PartialDecode {
            scene,
            classes: vec![0],
        }),
        4 => AnyOp::Membership(MembershipProbe {
            scene,
            items: vec![(0, object.assignments()[0].clone().expect("class 0 present"))],
            absent: vec![],
        }),
        _ => AnyOp::Encode(EncodeScene {
            scene: Scene::single(object),
        }),
    }
}

/// The full workload: client → ordered `(model, op)` pairs, mixing both
/// models within every client's stream.
fn workload(alpha: &Taxonomy, beta: &Taxonomy) -> Vec<Vec<(String, AnyOp)>> {
    (0..CLIENTS)
        .map(|client| {
            (0..OPS_PER_CLIENT)
                .map(|i| {
                    let (model, taxonomy) = if (client + i) % 2 == 0 {
                        ("alpha", alpha)
                    } else {
                        ("beta", beta)
                    };
                    let seed = (client as u64) * 1_000 + 7;
                    (model.to_owned(), mixed_op(taxonomy, i, seed))
                })
                .collect()
        })
        .collect()
}

#[test]
fn loopback_responses_match_direct_execute_batch() {
    let registry = Arc::new(ModelRegistry::new());
    registry.install(
        "alpha",
        ModelState::new(build_taxonomy(101), EngineConfig::default()).expect("valid model"),
    );
    registry.install(
        "beta",
        ModelState::new(build_taxonomy(202), EngineConfig::default()).expect("valid model"),
    );
    let alpha_handle = registry.get("alpha").expect("installed");
    let beta_handle = registry.get("beta").expect("installed");

    let streams = workload(
        alpha_handle.state().taxonomy(),
        beta_handle.state().taxonomy(),
    );

    // The reference: the same ops, in the same per-client order, run
    // directly through the registry. Per-op outputs are independent of
    // batch composition (the engine's determinism guarantee), so any
    // coalescing the server's batcher picks must reproduce these
    // exactly, bit for bit.
    let expected: Vec<Vec<AnyOutput>> = streams
        .iter()
        .map(|stream| {
            let ops: Vec<(ModelId, AnyOp)> = stream
                .iter()
                .map(|(model, op)| (ModelId::new(model), op.clone()))
                .collect();
            registry
                .execute_batch(&ops)
                .into_iter()
                .map(|result| result.expect("direct execution succeeds"))
                .collect()
        })
        .collect();

    let initial_threads = rayon::current_num_threads();
    for threads in [1usize, 2, 4] {
        rayon::configure_pool(threads);
        let server = Server::start(
            Arc::clone(&registry),
            "127.0.0.1:0",
            ServerConfig {
                batcher: BatcherConfig {
                    max_batch: 16,
                    max_delay: Duration::from_millis(1),
                    ..BatcherConfig::default()
                },
                ..ServerConfig::default()
            },
        )
        .expect("server starts");
        let addr = server.local_addr();

        let received: Vec<Vec<AnyOutput>> = thread::scope(|scope| {
            let workers: Vec<_> = streams
                .iter()
                .map(|stream| {
                    scope.spawn(move || {
                        let mut client = Client::connect(addr).expect("client connects");
                        stream
                            .iter()
                            .map(|(model, op)| {
                                client.run(model, op).expect("op succeeds over loopback")
                            })
                            .collect::<Vec<AnyOutput>>()
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|worker| worker.join().expect("client thread completes"))
                .collect()
        });

        assert_eq!(
            received, expected,
            "loopback responses diverged from direct execute_batch at {threads} lanes"
        );

        let stats = server.stats();
        let total = (CLIENTS * OPS_PER_CLIENT) as u64;
        assert_eq!(stats.requests_received, total);
        assert_eq!(stats.responses_sent, total);
        assert_eq!(stats.protocol_errors, 0);
        assert!(
            stats.batches_dispatched >= 1 && stats.batches_dispatched <= total,
            "batches dispatched out of range: {}",
            stats.batches_dispatched
        );
        server.shutdown();
        let after = server.stats();
        assert_eq!(
            after.connections_accepted, after.connections_closed,
            "every accepted connection must be closed after shutdown"
        );
    }
    rayon::configure_pool(initial_threads);
}

/// The pipelined client path coalesces: a burst of ops on one
/// connection comes back in op order, bit-identical to direct
/// execution, and the batcher sees batches bigger than one.
#[test]
fn pipelined_burst_matches_direct_and_coalesces() {
    let registry = Arc::new(ModelRegistry::new());
    registry.install(
        "alpha",
        ModelState::new(build_taxonomy(303), EngineConfig::default()).expect("valid model"),
    );
    let alpha_handle = registry.get("alpha").expect("installed");
    let alpha = alpha_handle.state().taxonomy();
    let ops: Vec<AnyOp> = (0..32).map(|i| mixed_op(alpha, i, 11)).collect();
    let direct: Vec<(ModelId, AnyOp)> = ops
        .iter()
        .map(|op| (ModelId::new("alpha"), op.clone()))
        .collect();
    let expected: Vec<AnyOutput> = registry
        .execute_batch(&direct)
        .into_iter()
        .map(|result| result.expect("direct execution succeeds"))
        .collect();

    let server = Server::start(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ServerConfig {
            batcher: BatcherConfig {
                max_batch: 16,
                max_delay: Duration::from_millis(5),
                ..BatcherConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let mut client = Client::connect(server.local_addr()).expect("client connects");
    let received: Vec<AnyOutput> = client
        .run_pipelined("alpha", &ops)
        .expect("burst succeeds")
        .into_iter()
        .map(|result| result.expect("op succeeds"))
        .collect();
    assert_eq!(received, expected, "pipelined burst diverged");

    let stats = server.stats();
    assert!(
        stats.batches_dispatched < ops.len() as u64,
        "a pipelined burst must coalesce (got {} batches for {} ops)",
        stats.batches_dispatched,
        ops.len()
    );
    // Histogram recording honors the metrics gate; the counter above is
    // unconditional.
    if factorhd_engine::metrics::metrics_recording() {
        assert_eq!(stats.coalesced_batch.count, stats.batches_dispatched);
        assert_eq!(stats.e2e_latency_ns.count, stats.responses_sent);
    }
    server.shutdown();
}
