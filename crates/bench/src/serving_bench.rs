//! Loopback serving throughput: a **clients × pipeline grid** of the
//! network front end (`factorhd-serve`) against the warm batch-64
//! direct-engine reference it must keep up with.
//!
//! Each grid point starts a fresh [`Server`] on a loopback listener and
//! drives it the way a production load generator would: every client
//! thread pre-encodes its burst of `pipeline` requests into a single
//! frame buffer once, then repeatedly writes the whole burst in one
//! syscall and reads back exactly `pipeline` response frames. The hot
//! loop validates cheaply (frame arrives, is not a typed error); full
//! decode validation runs once per client in the warm-up burst, and the
//! serving integration tests pin down bit-identity exhaustively.
//!
//! The op stream is [`build_ops`] — the *same* deterministic mixed
//! typed-op workload the engine grid measures — so the **direct
//! reference** (warm batch-64 `execute_batch` on the same registry,
//! measured in-run) is apples-to-apples: the serving fraction reported
//! per point is network throughput ÷ direct throughput, and the
//! top-line `serving_fraction` (the best ≥ 8-client point) is what the
//! regression gate holds above [`crate::gate::SERVING_FLOOR`].
//!
//! Timing is best-of-reps minimum wall clock, for the same reason as
//! the engine grid: interference is one-sided. Latency percentiles come
//! from the server's own end-to-end histogram (request decoded →
//! response written), which quantizes to log2 buckets and honors the
//! engine metrics gate — under `metrics-off` the histogram is empty and
//! the document says so (`metrics_recording: false`), so the gate skips
//! latency checks instead of failing on zeros.

use crate::engine_bench::{bench_engine_config, bench_taxonomy, build_ops};
use crate::json::JsonValue;
use crate::Table;
use factorhd_engine::{AnyOp, ModelId, ModelRegistry, ModelState};
use factorhd_serve::protocol::{self, Request, Response, DEFAULT_MAX_FRAME_BYTES, KIND_ERROR};
use factorhd_serve::{BatcherConfig, ErrorCode, HistogramSummary, Server, ServerConfig};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

/// Registry name of the benchmark model.
const MODEL: &str = "bench";
/// Server-side batch ceiling — matches the engine grid's batch-64 sweet
/// spot, so a saturated server dispatches the batches the reference
/// measures.
const MAX_BATCH: usize = 64;
/// Dispatch deadline for a batch that never fills.
const MAX_DELAY: Duration = Duration::from_millis(1);
/// Concurrent client connections the grid sweeps.
pub const CLIENT_GRID: [usize; 4] = [1, 2, 4, 8];
/// In-flight requests per client connection (burst depth) the grid
/// sweeps — the payload axis: each op carries a dim-2048 scene vector,
/// so depth also scales bytes on the wire per syscall.
pub const PIPELINE_GRID: [usize; 2] = [8, 32];

/// One measured grid point of the serving sweep.
#[derive(Debug, Clone)]
pub struct ServingPoint {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests in flight per connection.
    pub pipeline: usize,
    /// Sustained end-to-end requests per second (best of reps).
    pub throughput_per_sec: f64,
    /// This point's throughput ÷ the direct warm batch-64 reference.
    pub fraction_of_direct: f64,
    /// Server-side end-to-end latency summary (nanoseconds; zeros when
    /// the metrics gate is off).
    pub latency: HistogramSummary,
    /// Engine batches the adaptive batcher dispatched.
    pub batches_dispatched: u64,
    /// Mean coalesced batch size (requests ÷ batches).
    pub mean_coalesced: f64,
    /// Admission refusals during this point. Cooperative load against
    /// the default (deep) queue must never shed; the gate fails a
    /// nonzero value here.
    pub requests_shed: u64,
}

/// The measured overload point: the same closed-loop load generator
/// driven against a server whose admission queue is capped at one
/// batch, so most offered requests bounce with a typed `Overloaded`
/// while admitted ones keep the engine fed with full batches
/// (docs/ROBUSTNESS.md, "Overload behavior under measurement").
#[derive(Debug, Clone)]
pub struct OverloadPoint {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests in flight per connection.
    pub pipeline: usize,
    /// Requests offered per second — admitted *and* shed. Sheds answer
    /// in microseconds, so the closed loop re-offers them immediately,
    /// inflating the offered rate well past capacity (the ≈4× point:
    /// in-flight requests ≈ 4 × queue depth).
    pub offered_per_sec: f64,
    /// Requests per second that were admitted and executed.
    pub admitted_per_sec: f64,
    /// `offered ÷ admitted` — how far past capacity the load ran.
    pub overload_factor: f64,
    /// Typed `Overloaded` refusals observed by the clients.
    pub shed: u64,
    /// The cooperative grid point at the same (clients, pipeline), for
    /// the gate's admitted-throughput floor.
    pub cooperative_per_sec: f64,
    /// **Admitted-only** end-to-end latency (refused requests never
    /// enter the histogram), so overload cannot masquerade as a
    /// latency win.
    pub latency: HistogramSummary,
    /// Deadline expiries (zero: this load sends no deadlines).
    pub deadline_expired: u64,
}

/// The full sweep result: every grid point plus the in-run direct
/// reference it is judged against.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// The measured grid.
    pub points: Vec<ServingPoint>,
    /// Warm batch-64 `execute_batch` throughput on the same registry.
    pub direct_warm64_per_sec: f64,
    /// Best `fraction_of_direct` among points with ≥ 8 clients — the
    /// number the gate holds above [`crate::gate::SERVING_FLOOR`].
    pub serving_fraction: f64,
    /// The shed-tolerant overload measurement.
    pub overload: OverloadPoint,
}

fn build_registry() -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    registry.install(
        MODEL,
        ModelState::new(bench_taxonomy(), bench_engine_config()).expect("valid bench model"),
    );
    registry
}

/// Warm batch-64 throughput of `execute_batch` on `registry` — the
/// direct path the server's batcher calls, minus the network.
fn measure_direct_warm64(registry: &ModelRegistry, reps: usize, iters: usize) -> f64 {
    let handle = registry.get(MODEL).expect("bench model installed");
    let ops = build_ops(handle.state().taxonomy(), MAX_BATCH);
    let batch: Vec<(ModelId, AnyOp)> = ops
        .into_iter()
        .map(|op| (ModelId::new(MODEL), op))
        .collect();
    for _ in 0..2 {
        for result in registry.execute_batch(&batch) {
            result.expect("direct warm-up executes");
        }
    }
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            registry.execute_batch(&batch);
        }
        best = best.min(start.elapsed());
    }
    (MAX_BATCH * iters) as f64 / best.as_secs_f64()
}

/// One client connection's life: warm-up burst with full decode
/// validation, then `reps` timed windows of `iters` pre-encoded bursts,
/// synchronized with the measuring thread at every window edge.
fn run_client(
    addr: SocketAddr,
    burst: &[u8],
    pipeline: usize,
    reps: usize,
    iters: usize,
    barrier: &Barrier,
) {
    let mut stream = TcpStream::connect(addr).expect("load generator connects");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::with_capacity(
        1 << 16,
        stream.try_clone().expect("clone stream for reading"),
    );
    // Warm-up: one burst, fully decoded — proves the pre-encoded frames
    // are answered with well-formed outputs before the cheap hot loop.
    stream.write_all(burst).expect("warm-up burst writes");
    for _ in 0..pipeline {
        let payload = protocol::read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES)
            .expect("warm-up frame reads")
            .expect("server keeps the connection open");
        let (_, response) = protocol::decode_response(&payload).expect("warm-up response decodes");
        assert!(
            matches!(response, Response::Output(_)),
            "warm-up op failed: {response:?}"
        );
    }
    for _ in 0..reps {
        barrier.wait();
        for _ in 0..iters {
            stream.write_all(burst).expect("burst writes");
            for _ in 0..pipeline {
                let payload = protocol::read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES)
                    .expect("response frame reads")
                    .expect("server keeps the connection open");
                assert_ne!(payload[6], KIND_ERROR, "server answered with an error");
            }
        }
        barrier.wait();
    }
}

/// Measures one (clients, pipeline) grid point against a fresh server,
/// so its per-server telemetry covers exactly this point's traffic.
fn measure_point(
    registry: &Arc<ModelRegistry>,
    clients: usize,
    pipeline: usize,
    reps: usize,
    target_ops: usize,
    direct_per_sec: f64,
) -> ServingPoint {
    let server = Server::start(
        Arc::clone(registry),
        "127.0.0.1:0",
        ServerConfig {
            batcher: BatcherConfig {
                max_batch: MAX_BATCH,
                max_delay: MAX_DELAY,
                ..BatcherConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bench server starts");
    let addr = server.local_addr();

    // Every client sends the same deterministic burst, pre-encoded once
    // into a single write — ids are per-connection, so reuse is safe.
    let handle = registry.get(MODEL).expect("bench model installed");
    let ops = build_ops(handle.state().taxonomy(), pipeline);
    let mut burst = Vec::new();
    for (id, op) in ops.iter().enumerate() {
        let payload = protocol::encode_request(
            id as u64,
            &Request::Op {
                model: MODEL.to_owned(),
                op: op.clone(),
                deadline: None,
            },
        );
        protocol::append_frame(&mut burst, &payload);
    }
    // Scale iterations so every point measures a comparable op count —
    // small grids need more bursts to produce a stable window.
    let iters = (target_ops / (clients * pipeline)).max(4);

    let barrier = Barrier::new(clients + 1);
    let mut best = Duration::MAX;
    thread::scope(|scope| {
        for _ in 0..clients {
            let burst = &burst;
            let barrier = &barrier;
            scope.spawn(move || run_client(addr, burst, pipeline, reps, iters, barrier));
        }
        for _ in 0..reps {
            barrier.wait();
            let start = Instant::now();
            barrier.wait();
            best = best.min(start.elapsed());
        }
    });
    let stats = server.stats();
    server.shutdown();

    let throughput = (clients * pipeline * iters) as f64 / best.as_secs_f64();
    ServingPoint {
        clients,
        pipeline,
        throughput_per_sec: throughput,
        fraction_of_direct: throughput / direct_per_sec,
        latency: stats.e2e_latency_ns,
        batches_dispatched: stats.batches_dispatched,
        mean_coalesced: stats.requests_received as f64 / stats.batches_dispatched.max(1) as f64,
        requests_shed: stats.requests_shed,
    }
}

/// One overload client: the same pre-encoded closed-loop burst as
/// [`run_client`], but tolerating typed `Overloaded` refusals — and
/// *only* those. Any other error frame is still a bench failure.
fn run_overload_client(
    addr: SocketAddr,
    burst: &[u8],
    pipeline: usize,
    iters: usize,
    barrier: &Barrier,
    shed: &AtomicU64,
) {
    let mut stream = TcpStream::connect(addr).expect("overload generator connects");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::with_capacity(
        1 << 16,
        stream.try_clone().expect("clone stream for reading"),
    );
    barrier.wait();
    let mut refused = 0u64;
    for _ in 0..iters {
        stream.write_all(burst).expect("burst writes");
        for _ in 0..pipeline {
            let payload = protocol::read_frame(&mut reader, DEFAULT_MAX_FRAME_BYTES)
                .expect("response frame reads")
                .expect("server keeps the connection open");
            if payload[6] == KIND_ERROR {
                match protocol::decode_response(&payload) {
                    Ok((
                        _,
                        Response::Error {
                            code: ErrorCode::Overloaded,
                            ..
                        },
                    )) => {
                        refused += 1;
                    }
                    other => panic!("only Overloaded refusals are tolerated, got {other:?}"),
                }
            }
        }
    }
    shed.fetch_add(refused, Ordering::Relaxed);
    barrier.wait();
}

/// Measures the overload point: `clients × pipeline` requests kept in
/// flight against a server whose admission queue holds exactly one
/// batch, so the in-flight load runs ≈ `clients × pipeline ÷ max_queue`
/// times past capacity (4× on the default 8 × 32 grid point). Admitted
/// requests must keep flowing at near-cooperative throughput — load
/// shedding protects the engine, it does not replace it.
fn measure_overload(
    registry: &Arc<ModelRegistry>,
    clients: usize,
    pipeline: usize,
    iters: usize,
    cooperative_per_sec: f64,
) -> OverloadPoint {
    let server = Server::start(
        Arc::clone(registry),
        "127.0.0.1:0",
        ServerConfig {
            batcher: BatcherConfig {
                max_batch: MAX_BATCH,
                max_delay: MAX_DELAY,
                // One batch of queue: everything beyond it sheds.
                max_queue: MAX_BATCH,
            },
            ..ServerConfig::default()
        },
    )
    .expect("overload server starts");
    let addr = server.local_addr();

    let handle = registry.get(MODEL).expect("bench model installed");
    let ops = build_ops(handle.state().taxonomy(), pipeline);
    let mut burst = Vec::new();
    for (id, op) in ops.iter().enumerate() {
        let payload = protocol::encode_request(
            id as u64,
            &Request::Op {
                model: MODEL.to_owned(),
                op: op.clone(),
                deadline: None,
            },
        );
        protocol::append_frame(&mut burst, &payload);
    }

    let barrier = Barrier::new(clients + 1);
    let shed = AtomicU64::new(0);
    let mut elapsed = Duration::ZERO;
    thread::scope(|scope| {
        for _ in 0..clients {
            let burst = &burst;
            let barrier = &barrier;
            let shed = &shed;
            scope.spawn(move || run_overload_client(addr, burst, pipeline, iters, barrier, shed));
        }
        barrier.wait();
        let start = Instant::now();
        barrier.wait();
        elapsed = start.elapsed();
    });
    let stats = server.stats();
    server.shutdown();

    let offered = (clients * pipeline * iters) as u64;
    let shed = shed.load(Ordering::Relaxed);
    let admitted = offered.saturating_sub(shed);
    let offered_per_sec = offered as f64 / elapsed.as_secs_f64();
    let admitted_per_sec = admitted as f64 / elapsed.as_secs_f64();
    OverloadPoint {
        clients,
        pipeline,
        offered_per_sec,
        admitted_per_sec,
        overload_factor: offered as f64 / admitted.max(1) as f64,
        shed,
        cooperative_per_sec,
        latency: stats.e2e_latency_ns,
        deadline_expired: stats.deadline_expired,
    }
}

/// Runs the full [`CLIENT_GRID`] × [`PIPELINE_GRID`] sweep plus the
/// direct reference. `quick` halves repetitions and the per-point op
/// target — still best-of, for the same noise-floor reasons as the
/// engine grid.
pub fn serving_points(quick: bool) -> ServingReport {
    let registry = build_registry();
    let (reps, direct_iters, target_ops) = if quick { (2, 8, 512) } else { (4, 16, 2048) };
    let direct_warm64_per_sec = measure_direct_warm64(&registry, reps, direct_iters);
    let mut points = Vec::new();
    for &clients in &CLIENT_GRID {
        for &pipeline in &PIPELINE_GRID {
            points.push(measure_point(
                &registry,
                clients,
                pipeline,
                reps,
                target_ops,
                direct_warm64_per_sec,
            ));
        }
    }
    let serving_fraction = points
        .iter()
        .filter(|p| p.clients >= 8)
        .map(|p| p.fraction_of_direct)
        .fold(0.0, f64::max);
    // Overload at the deepest grid point: 8 × 32 = 256 in flight vs a
    // 64-slot queue is the ≈4× offered-load point.
    let (clients, pipeline) = (8, 32);
    let cooperative_per_sec = points
        .iter()
        .find(|p| p.clients == clients && p.pipeline == pipeline)
        .map(|p| p.throughput_per_sec)
        .unwrap_or(direct_warm64_per_sec);
    let overload_iters = (target_ops / (clients * pipeline)).max(4) * 2;
    let overload = measure_overload(
        &registry,
        clients,
        pipeline,
        overload_iters,
        cooperative_per_sec,
    );
    ServingReport {
        points,
        direct_warm64_per_sec,
        serving_fraction,
        overload,
    }
}

/// Renders the sweep as the human-readable table the bin prints.
pub fn serving_table(report: &ServingReport) -> Table {
    let mut table = Table::new(
        &format!(
            "serving loopback throughput (direct warm batch-64: {:.0} req/s)",
            report.direct_warm64_per_sec
        ),
        &[
            "clients",
            "pipeline",
            "req/s",
            "x direct",
            "p50 us",
            "p95 us",
            "p99 us",
            "mean batch",
        ],
    );
    for p in &report.points {
        table.row(&[
            p.clients.to_string(),
            p.pipeline.to_string(),
            format!("{:.0}", p.throughput_per_sec),
            format!("{:.2}", p.fraction_of_direct),
            format!("{:.0}", p.latency.p50 as f64 / 1e3),
            format!("{:.0}", p.latency.p95 as f64 / 1e3),
            format!("{:.0}", p.latency.p99 as f64 / 1e3),
            format!("{:.1}", p.mean_coalesced),
        ]);
    }
    table
}

/// Renders the overload point as its own small table.
pub fn overload_table(report: &ServingReport) -> Table {
    let o = &report.overload;
    let mut table = Table::new(
        &format!(
            "overload point ({} clients x {} pipeline vs a {}-slot queue)",
            o.clients, o.pipeline, MAX_BATCH
        ),
        &[
            "offered req/s",
            "admitted req/s",
            "factor",
            "shed",
            "admitted p95 us",
            "x cooperative",
        ],
    );
    table.row(&[
        format!("{:.0}", o.offered_per_sec),
        format!("{:.0}", o.admitted_per_sec),
        format!("{:.1}x", o.overload_factor),
        o.shed.to_string(),
        format!("{:.0}", o.latency.p95 as f64 / 1e3),
        format!("{:.2}", o.admitted_per_sec / o.cooperative_per_sec.max(1.0)),
    ]);
    table
}

/// Renders the machine-readable `BENCH_serving.json` document (schema
/// v2, documented in docs/SERVING.md, "Network front end"; v2 adds the
/// per-point `requests_shed` counter and the top-level `overload`
/// object, docs/ROBUSTNESS.md).
pub fn serving_json(report: &ServingReport, quick: bool) -> String {
    let available_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let o = &report.overload;
    JsonValue::obj(vec![
        ("bench", JsonValue::Str("serving".into())),
        ("schema_version", JsonValue::Uint(2)),
        ("quick", JsonValue::Bool(quick)),
        ("unit", JsonValue::Str("requests_per_second".into())),
        ("cpu_features", JsonValue::Str(hdc::kernels::cpu_features())),
        ("available_cores", JsonValue::Uint(available_cores as u64)),
        ("max_batch", JsonValue::Uint(MAX_BATCH as u64)),
        (
            "max_delay_us",
            JsonValue::Uint(MAX_DELAY.as_micros() as u64),
        ),
        (
            "metrics_recording",
            JsonValue::Bool(factorhd_engine::metrics::metrics_recording()),
        ),
        (
            "direct_warm64_per_sec",
            JsonValue::Num(report.direct_warm64_per_sec),
        ),
        ("serving_fraction", JsonValue::Num(report.serving_fraction)),
        (
            "points",
            JsonValue::Arr(
                report
                    .points
                    .iter()
                    .map(|p| {
                        JsonValue::obj(vec![
                            ("clients", JsonValue::Uint(p.clients as u64)),
                            ("pipeline", JsonValue::Uint(p.pipeline as u64)),
                            ("throughput_per_sec", JsonValue::Num(p.throughput_per_sec)),
                            ("fraction_of_direct", JsonValue::Num(p.fraction_of_direct)),
                            ("latency_count", JsonValue::Uint(p.latency.count)),
                            ("p50_ns", JsonValue::Uint(p.latency.p50)),
                            ("p95_ns", JsonValue::Uint(p.latency.p95)),
                            ("p99_ns", JsonValue::Uint(p.latency.p99)),
                            ("batches_dispatched", JsonValue::Uint(p.batches_dispatched)),
                            ("mean_coalesced", JsonValue::Num(p.mean_coalesced)),
                            ("requests_shed", JsonValue::Uint(p.requests_shed)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "overload",
            JsonValue::obj(vec![
                ("clients", JsonValue::Uint(o.clients as u64)),
                ("pipeline", JsonValue::Uint(o.pipeline as u64)),
                ("offered_per_sec", JsonValue::Num(o.offered_per_sec)),
                ("admitted_per_sec", JsonValue::Num(o.admitted_per_sec)),
                ("overload_factor", JsonValue::Num(o.overload_factor)),
                ("requests_shed", JsonValue::Uint(o.shed)),
                ("deadline_expired", JsonValue::Uint(o.deadline_expired)),
                ("cooperative_per_sec", JsonValue::Num(o.cooperative_per_sec)),
                ("latency_count", JsonValue::Uint(o.latency.count)),
                ("p50_ns", JsonValue::Uint(o.latency.p50)),
                ("p95_ns", JsonValue::Uint(o.latency.p95)),
                ("p99_ns", JsonValue::Uint(o.latency.p99)),
            ]),
        ),
    ])
    .render()
}
