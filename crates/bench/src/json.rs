//! Minimal hand-rolled JSON emission and parsing for the
//! machine-readable `BENCH_*.json` artifacts (the build environment
//! vendors no serde).
//!
//! Only what the bench schemas need: objects, arrays, strings, bools,
//! nulls, and finite numbers. Non-finite numbers render as `null` (JSON
//! has no NaN/Inf), and strings escape quotes, backslashes, and control
//! bytes. [`JsonValue::parse`] is the matching recursive-descent reader
//! used by the `bench_gate` bin to diff current BENCH files against
//! committed baselines.

use std::fmt::Write as _;

/// A JSON value tree, rendered by [`JsonValue::render`] and read back by
/// [`JsonValue::parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// An unsigned integer (rendered without a decimal point).
    Uint(u64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<JsonValue>),
    /// An object with ordered keys.
    Obj(Vec<(String, JsonValue)>),
    /// The JSON `null` literal.
    Null,
}

impl JsonValue {
    /// Convenience constructor for an object field list.
    pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Num(x) if x.is_finite() => {
                // `{}` on f64 always includes enough digits to round-trip.
                let _ = write!(out, "{x}");
            }
            JsonValue::Num(_) => out.push_str("null"),
            JsonValue::Uint(x) => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
            JsonValue::Null => out.push_str("null"),
        }
    }

    /// Parses `text` as one JSON document (trailing whitespace allowed).
    ///
    /// Integers without sign, fraction, or exponent that fit a `u64`
    /// come back as [`JsonValue::Uint`]; every other number becomes
    /// [`JsonValue::Num`] — matching what the emitter writes.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the byte offset of the first
    /// syntax error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }

    /// Looks up `key` when this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, when this is a number of either flavor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            JsonValue::Uint(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The integer value, when this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Uint(x) => Some(*x),
            JsonValue::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string slice, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, when this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Recursive-descent state over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // BENCH files never emit surrogate pairs; map
                            // unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_owned())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8".to_owned())?;
        if integral && !text.starts_with('-') {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(JsonValue::Uint(x));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let value = JsonValue::obj(vec![
            ("bench", JsonValue::Str("engine_throughput".into())),
            ("schema_version", JsonValue::Uint(1)),
            ("quick", JsonValue::Bool(false)),
            (
                "points",
                JsonValue::Arr(vec![JsonValue::obj(vec![
                    ("batch", JsonValue::Uint(64)),
                    ("warm_per_sec", JsonValue::Num(21832.5)),
                ])]),
            ),
        ]);
        assert_eq!(
            value.render(),
            r#"{"bench":"engine_throughput","schema_version":1,"quick":false,"points":[{"batch":64,"warm_per_sec":21832.5}]}"#
        );
    }

    #[test]
    fn escapes_and_nonfinite() {
        assert_eq!(
            JsonValue::Str("a\"b\\c\nd\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let value = JsonValue::obj(vec![
            ("bench", JsonValue::Str("engine_throughput".into())),
            ("schema_version", JsonValue::Uint(3)),
            ("quick", JsonValue::Bool(false)),
            ("missing", JsonValue::Null),
            (
                "points",
                JsonValue::Arr(vec![JsonValue::obj(vec![
                    ("batch", JsonValue::Uint(64)),
                    ("warm_per_sec", JsonValue::Num(21832.5)),
                    ("scale", JsonValue::Num(-0.25)),
                ])]),
            ),
        ]);
        let parsed = JsonValue::parse(&value.render()).expect("parses");
        assert_eq!(parsed, value);
    }

    #[test]
    fn parse_handles_whitespace_escapes_and_exponents() {
        let parsed =
            JsonValue::parse(" { \"a\\n\" : [ 1 , 2.5e3 , true , null , \"\\u0041\" ] } \n")
                .expect("parses");
        assert_eq!(
            parsed,
            JsonValue::Obj(vec![(
                "a\n".to_owned(),
                JsonValue::Arr(vec![
                    JsonValue::Uint(1),
                    JsonValue::Num(2500.0),
                    JsonValue::Bool(true),
                    JsonValue::Null,
                    JsonValue::Str("A".to_owned()),
                ]),
            )])
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn accessors_navigate_parsed_trees() {
        let doc = JsonValue::parse(r#"{"n":4.0,"u":7,"s":"x","b":false,"a":[1]}"#).unwrap();
        assert_eq!(doc.get("u").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(doc.get("n").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(doc.get("n").and_then(JsonValue::as_f64), Some(4.0));
        assert_eq!(doc.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(doc.get("b").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(
            doc.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1)
        );
        assert!(doc.get("zzz").is_none());
    }
}
