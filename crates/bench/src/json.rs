//! Minimal hand-rolled JSON emission for the machine-readable
//! `BENCH_*.json` artifacts (the build environment vendors no serde).
//!
//! Only what the bench schemas need: objects, arrays, strings, bools,
//! and finite numbers. Non-finite numbers render as `null` (JSON has no
//! NaN/Inf), and strings escape quotes, backslashes, and control bytes.

use std::fmt::Write as _;

/// A JSON value tree, rendered by [`JsonValue::render`].
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// An unsigned integer (rendered without a decimal point).
    Uint(u64),
    /// A boolean.
    Bool(bool),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<JsonValue>),
    /// An object with ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for an object field list.
    pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Num(x) if x.is_finite() => {
                // `{}` on f64 always includes enough digits to round-trip.
                let _ = write!(out, "{x}");
            }
            JsonValue::Num(_) => out.push_str("null"),
            JsonValue::Uint(x) => {
                let _ = write!(out, "{x}");
            }
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let value = JsonValue::obj(vec![
            ("bench", JsonValue::Str("engine_throughput".into())),
            ("schema_version", JsonValue::Uint(1)),
            ("quick", JsonValue::Bool(false)),
            (
                "points",
                JsonValue::Arr(vec![JsonValue::obj(vec![
                    ("batch", JsonValue::Uint(64)),
                    ("warm_per_sec", JsonValue::Num(21832.5)),
                ])]),
            ),
        ]);
        assert_eq!(
            value.render(),
            r#"{"bench":"engine_throughput","schema_version":1,"quick":false,"points":[{"batch":64,"warm_per_sec":21832.5}]}"#
        );
    }

    #[test]
    fn escapes_and_nonfinite() {
        assert_eq!(
            JsonValue::Str("a\"b\\c\nd\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
    }
}
