//! Scan-kernel throughput: the two inner popcount loops every FactorHD
//! recognition step bottoms out in ([`hdc::kernels`]), measured for
//! every implementation the running CPU can dispatch, at word counts
//! spanning one-cache-line queries to table-sized streams.
//!
//! Exactness first: before any timing, every available kernel is checked
//! bit-identical to the scalar reference oracle on the exact buffers the
//! sweep will time. The table then reports words/second per
//! `(kernel, word count)` and each kernel's speedup over the portable
//! Harley–Seal ladder (the pre-dispatch fallback and the baseline the
//! acceptance gate is phrased against), and
//! [`kernel_bench_json`] renders the same points as the machine-readable
//! `BENCH_kernels.json` (schema in docs/SERVING.md).

use crate::json::JsonValue;
use crate::Table;
use hdc::derive_seed;
use hdc::kernels::{self, ScanKernel};
use std::time::Instant;

const KERNEL_SEED: u64 = 0x5CA9_4E15;

/// The word counts the sweep measures: a 4 Ki-bit query (one `D = 4096`
/// hypervector plane is 64 words), a 32 Ki-bit plane, a whole L1-sized
/// shard, and a table-sized stream that spills every cache level.
pub const WORD_COUNTS: [usize; 4] = [64, 512, 4096, 65536];

/// Deterministic operand buffers for one word count: a sign plane, a
/// (roughly half-dense) mask plane, and an item plane.
fn buffers(words: usize) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let gen = |tag: u64| -> Vec<u64> {
        (0..words)
            .map(|i| derive_seed(&[KERNEL_SEED, tag, i as u64]))
            .collect()
    };
    (gen(1), gen(2), gen(3))
}

/// One measured `(kernel, word count)` grid point.
#[derive(Debug, Clone, Copy)]
pub struct KernelPoint {
    /// Dispatch name of the measured kernel.
    pub kernel: &'static str,
    /// Words per scan.
    pub words: usize,
    /// `hamming_words` throughput in words/second.
    pub hamming_words_per_sec: f64,
    /// `masked_hamming_words` throughput in words/second.
    pub masked_words_per_sec: f64,
    /// This kernel's `hamming_words` throughput over the portable
    /// Harley–Seal ladder's at the same word count.
    pub speedup_vs_harley_seal: f64,
}

/// Asserts every available kernel agrees with the scalar oracle on the
/// sweep's exact buffers; returns the number of `(kernel, words)` pairs
/// compared. The gate the throughput numbers stand on.
pub fn verify_kernel_equivalence() -> usize {
    let mut compared = 0;
    for &words in &WORD_COUNTS {
        let (sign, mask, item) = buffers(words);
        let expected_hamming = kernels::SCALAR.hamming_words(&sign, &item);
        let expected_masked = kernels::SCALAR.masked_hamming_words(&sign, &mask, &item);
        for kernel in kernels::available_kernels() {
            assert_eq!(
                kernel.hamming_words(&sign, &item),
                expected_hamming,
                "kernel {} hamming diverged at {words} words",
                kernel.name()
            );
            assert_eq!(
                kernel.masked_hamming_words(&sign, &mask, &item),
                expected_masked,
                "kernel {} masked diverged at {words} words",
                kernel.name()
            );
            compared += 1;
        }
    }
    compared
}

/// Times one kernel on one word count; returns
/// `(hamming, masked)` throughputs in words/second.
pub fn measure_kernel(kernel: &ScanKernel, words: usize, reps: usize) -> (f64, f64) {
    let (sign, mask, item) = buffers(words);
    let reps = reps.max(1);

    let mut acc = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        acc = acc.wrapping_add(
            kernel.hamming_words(std::hint::black_box(&sign), std::hint::black_box(&item)),
        );
    }
    let hamming_secs = start.elapsed().as_secs_f64();
    std::hint::black_box(acc);

    let mut acc = 0u64;
    let start = Instant::now();
    for _ in 0..reps {
        acc = acc.wrapping_add(kernel.masked_hamming_words(
            std::hint::black_box(&sign),
            std::hint::black_box(&mask),
            std::hint::black_box(&item),
        ));
    }
    let masked_secs = start.elapsed().as_secs_f64();
    std::hint::black_box(acc);

    let throughput = |secs: f64| (words * reps) as f64 / secs.max(f64::MIN_POSITIVE);
    (throughput(hamming_secs), throughput(masked_secs))
}

/// Runs the full `(kernel, word count)` grid over every available kernel
/// and computes each row's speedup against the Harley–Seal baseline at
/// the same word count. `quick` reduces repetitions per point.
pub fn kernel_points(quick: bool) -> Vec<KernelPoint> {
    // Word budget per (kernel, size) point, so every row gets comparable
    // wall-clock regardless of buffer size.
    let budget: usize = if quick { 1 << 22 } else { 1 << 27 };
    let mut points = Vec::new();
    for kernel in kernels::available_kernels() {
        for &words in &WORD_COUNTS {
            let reps = (budget / words).clamp(1, 1 << 22);
            let (hamming, masked) = measure_kernel(kernel, words, reps);
            points.push(KernelPoint {
                kernel: kernel.name(),
                words,
                hamming_words_per_sec: hamming,
                masked_words_per_sec: masked,
                speedup_vs_harley_seal: 1.0,
            });
        }
    }
    for i in 0..points.len() {
        let baseline = points
            .iter()
            .find(|p| p.kernel == "harley-seal" && p.words == points[i].words)
            .map(|p| p.hamming_words_per_sec)
            .unwrap_or(f64::NAN);
        points[i].speedup_vs_harley_seal = points[i].hamming_words_per_sec / baseline;
    }
    points
}

/// Renders the grid as the human-readable table.
pub fn kernel_bench_table(points: &[KernelPoint]) -> Table {
    let mut table = Table::new(
        "kernels: scan-kernel throughput (hamming_words / masked_hamming_words), words/sec",
        &[
            "kernel",
            "words",
            "hamming w/s",
            "masked w/s",
            "vs harley-seal",
        ],
    );
    for point in points {
        table.row(&[
            point.kernel.to_string(),
            point.words.to_string(),
            format!("{:.3e}", point.hamming_words_per_sec),
            format!("{:.3e}", point.masked_words_per_sec),
            format!("{:.2}x", point.speedup_vs_harley_seal),
        ]);
    }
    table
}

/// Renders the grid as the `BENCH_kernels.json` document (schema
/// documented in docs/SERVING.md).
pub fn kernel_bench_json(points: &[KernelPoint], quick: bool) -> String {
    JsonValue::obj(vec![
        ("bench", JsonValue::Str("kernels".into())),
        ("schema_version", JsonValue::Uint(1)),
        ("quick", JsonValue::Bool(quick)),
        ("unit", JsonValue::Str("words_per_second".into())),
        (
            "selected_kernel",
            JsonValue::Str(kernels::selected_kernel().name().into()),
        ),
        ("cpu_features", JsonValue::Str(kernels::cpu_features())),
        (
            "points",
            JsonValue::Arr(
                points
                    .iter()
                    .map(|p| {
                        JsonValue::obj(vec![
                            ("kernel", JsonValue::Str(p.kernel.into())),
                            ("words", JsonValue::Uint(p.words as u64)),
                            ("hamming_per_sec", JsonValue::Num(p.hamming_words_per_sec)),
                            ("masked_per_sec", JsonValue::Num(p.masked_words_per_sec)),
                            (
                                "speedup_vs_harley_seal",
                                JsonValue::Num(p.speedup_vs_harley_seal),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_equivalence_holds_across_grid() {
        assert_eq!(
            verify_kernel_equivalence(),
            WORD_COUNTS.len() * kernels::available_kernels().len()
        );
    }

    #[test]
    fn measure_kernel_produces_positive_rates() {
        let (hamming, masked) = measure_kernel(&kernels::HARLEY_SEAL, 512, 2);
        assert!(hamming > 0.0);
        assert!(masked > 0.0);
    }

    #[test]
    fn points_cover_every_available_kernel_and_size() {
        let points = kernel_points(true);
        let kernels = kernels::available_kernels();
        assert_eq!(points.len(), kernels.len() * WORD_COUNTS.len());
        for kernel in &kernels {
            for &words in &WORD_COUNTS {
                let point = points
                    .iter()
                    .find(|p| p.kernel == kernel.name() && p.words == words)
                    .expect("every (kernel, words) pair measured");
                assert!(point.hamming_words_per_sec > 0.0);
                assert!(point.speedup_vs_harley_seal.is_finite());
            }
        }
        // The ladder's speedup over itself is exactly 1.
        let ladder = points
            .iter()
            .find(|p| p.kernel == "harley-seal")
            .expect("ladder always available");
        assert!((ladder.speedup_vs_harley_seal - 1.0).abs() < 1e-12);
    }

    #[test]
    fn json_document_has_the_documented_shape() {
        let points = [KernelPoint {
            kernel: "avx512",
            words: 4096,
            hamming_words_per_sec: 2.0e10,
            masked_words_per_sec: 1.5e10,
            speedup_vs_harley_seal: 4.0,
        }];
        let doc = kernel_bench_json(&points, true);
        for needle in [
            r#""bench":"kernels""#,
            r#""schema_version":1"#,
            r#""quick":true"#,
            r#""unit":"words_per_second""#,
            r#""selected_kernel":"#,
            r#""cpu_features":"#,
            r#""kernel":"avx512""#,
            r#""words":4096"#,
            r#""speedup_vs_harley_seal":4"#,
        ] {
            assert!(doc.contains(needle), "{needle} missing from {doc}");
        }
    }
}
