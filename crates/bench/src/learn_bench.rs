//! Online-learning benchmark: prototype **training throughput**
//! (examples/sec through [`PrototypeModel::observe`], replay retention
//! on), **classification latency** (p50/p95 of single-query
//! [`PrototypeSnapshot::classify`](factorhd_engine::PrototypeSnapshot::classify)
//! calls) over a dimension grid, and
//! the **accuracy-vs-epochs** retraining curve on the simulated CIFAR
//! pipeline.
//!
//! Throughput is best-of-reps minimum wall clock (interference is
//! one-sided); classification latencies are collected per call across
//! every rep and summarized as exact order statistics, not histogram
//! buckets. The machine-readable `BENCH_learn.json` (schema v1,
//! documented in docs/LEARNING.md) is diffed by the `bench_gate` bin
//! against `baselines/BENCH_learn.json`: per-dim train and classify
//! throughput hold within the margin, classify p95 gets the usual
//! one-doubling-of-slack ceiling, and the final CIFAR accuracy must
//! stay within [`crate::gate::ACCURACY_SLACK`] of the baseline.

use crate::json::JsonValue;
use crate::Table;
use factorhd_engine::{LearnConfig, PrototypeModel};
use factorhd_neural::{CifarPipeline, CifarPipelineConfig};
use hdc::{AccumHv, BipolarHv};
use std::time::{Duration, Instant};

/// Classes every synthetic grid point trains.
pub const LEARN_CLASSES: usize = 10;
/// Hypervector dimensions the grid sweeps.
pub const DIM_GRID: [usize; 2] = [1024, 4096];

/// One measured grid point of the learning sweep.
#[derive(Debug, Clone)]
pub struct LearnPoint {
    /// Hypervector dimension.
    pub dim: usize,
    /// Training examples bundled per second (replay retention on).
    pub train_per_sec: f64,
    /// Single-query classifications per second against a snapshot.
    pub classify_per_sec: f64,
    /// Median single-classify latency in nanoseconds.
    pub classify_p50_ns: u64,
    /// 95th-percentile single-classify latency in nanoseconds.
    pub classify_p95_ns: u64,
    /// Classify calls the percentiles summarize.
    pub latency_count: u64,
}

/// One epoch of the CIFAR retraining curve.
#[derive(Debug, Clone)]
pub struct EpochPoint {
    /// Retraining epoch (0 = one-shot bundling, before any retrain).
    pub epoch: u64,
    /// Misclassified replay examples this epoch (0 for epoch 0).
    pub train_errors: u64,
    /// Held-out accuracy after this epoch.
    pub accuracy: f64,
}

/// The full learning benchmark result.
#[derive(Debug, Clone)]
pub struct LearnReport {
    /// The synthetic throughput/latency grid.
    pub points: Vec<LearnPoint>,
    /// The CIFAR accuracy-vs-epochs curve.
    pub accuracy_curve: Vec<EpochPoint>,
    /// Held-out accuracy after the last retraining epoch — the number
    /// the gate holds near its baseline.
    pub final_accuracy: f64,
}

/// A deterministic labelled example for the synthetic grid: class
/// anchor plus per-sample noise.
fn example(dim: usize, class: usize, sample: u64) -> AccumHv {
    let mut anchor_rng = hdc::rng_from_seed(hdc::derive_seed(&[0xBE, dim as u64, class as u64]));
    let mut noise_rng = hdc::rng_from_seed(hdc::derive_seed(&[0xBF, dim as u64, sample]));
    let mut acc = AccumHv::zeros(dim);
    acc.add_bipolar(&BipolarHv::random(dim, &mut anchor_rng), 2);
    acc.add_bipolar(&BipolarHv::random(dim, &mut noise_rng), 1);
    acc
}

/// Measures one dimension of the synthetic grid.
fn measure_point(dim: usize, reps: usize, examples: usize, queries: usize) -> LearnPoint {
    let train_set: Vec<(usize, AccumHv)> = (0..examples)
        .map(|i| (i % LEARN_CLASSES, example(dim, i % LEARN_CLASSES, i as u64)))
        .collect();
    let query_set: Vec<AccumHv> = (0..queries)
        .map(|i| example(dim, i % LEARN_CLASSES, 50_000 + i as u64))
        .collect();

    // Train throughput: a fresh model per rep (observe mutates), best
    // window wins.
    let mut best_train = Duration::MAX;
    let mut model = PrototypeModel::new(LearnConfig::new(LEARN_CLASSES, dim)).expect("valid");
    for _ in 0..reps {
        let mut fresh = PrototypeModel::new(LearnConfig::new(LEARN_CLASSES, dim)).expect("valid");
        let start = Instant::now();
        for (i, (class, hv)) in train_set.iter().enumerate() {
            fresh
                .observe(*class, i as u64, hv, true)
                .expect("observe succeeds");
        }
        best_train = best_train.min(start.elapsed());
        model = fresh;
    }
    let train_per_sec = examples as f64 / best_train.as_secs_f64();

    // Classify latency: per-call timings against one published
    // snapshot, pooled across reps for the order statistics; the best
    // rep window gives the throughput.
    let snapshot = model.snapshot().expect("snapshot builds");
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(reps * queries);
    let mut best_classify = Duration::MAX;
    for _ in 0..reps {
        let window = Instant::now();
        for query in &query_set {
            let start = Instant::now();
            let classification = snapshot.classify(query, 1).expect("classify succeeds");
            latencies_ns.push(start.elapsed().as_nanos() as u64);
            std::hint::black_box(classification);
        }
        best_classify = best_classify.min(window.elapsed());
    }
    latencies_ns.sort_unstable();
    let percentile = |p: f64| latencies_ns[((latencies_ns.len() - 1) as f64 * p) as usize];
    LearnPoint {
        dim,
        train_per_sec,
        classify_per_sec: queries as f64 / best_classify.as_secs_f64(),
        classify_p50_ns: percentile(0.50),
        classify_p95_ns: percentile(0.95),
        latency_count: latencies_ns.len() as u64,
    }
}

/// Trains prototypes on the simulated CIFAR-10 pipeline's feature
/// encodings and records held-out accuracy after every retraining
/// epoch (chopin2-style misclassification-driven updates).
fn measure_accuracy_curve(
    train_per_class: usize,
    test_per_class: usize,
    max_epochs: u32,
) -> Vec<EpochPoint> {
    let pipeline = CifarPipeline::new(CifarPipelineConfig {
        dim: 1024,
        samples_per_class: 16,
        ..CifarPipelineConfig::cifar10()
    })
    .expect("valid pipeline");
    let classes = 10;
    let mut model = PrototypeModel::new(LearnConfig::new(classes, 1024)).expect("valid");
    let mut rng = hdc::rng_from_seed(2025);
    let mut sample = 0u64;
    for _ in 0..train_per_class {
        for class in 0..classes {
            let hv = pipeline.encode_features(class, &mut rng);
            model
                .observe(class, sample, &hv, true)
                .expect("observe succeeds");
            sample += 1;
        }
    }
    let test_set: Vec<(usize, AccumHv)> = (0..test_per_class)
        .flat_map(|_| 0..classes)
        .map(|class| (class, pipeline.encode_features(class, &mut rng)))
        .collect();
    let accuracy = |model: &PrototypeModel| {
        let snapshot = model.snapshot().expect("snapshot builds");
        let correct = test_set
            .iter()
            .filter(|(class, hv)| snapshot.predict(hv).expect("classify succeeds").class == *class)
            .count();
        correct as f64 / test_set.len() as f64
    };
    let mut curve = vec![EpochPoint {
        epoch: 0,
        train_errors: 0,
        accuracy: accuracy(&model),
    }];
    for _ in 0..max_epochs {
        let report = model.retrain(1);
        curve.push(EpochPoint {
            epoch: report.epoch,
            train_errors: report.errors_per_epoch[0],
            accuracy: accuracy(&model),
        });
        if report.errors_per_epoch[0] == 0 {
            break;
        }
    }
    curve
}

/// Runs the full learning benchmark. `quick` halves repetitions and
/// shrinks the synthetic sets and the CIFAR curve.
pub fn learn_points(quick: bool) -> LearnReport {
    let (reps, examples, queries) = if quick {
        (2, 400, 400)
    } else {
        (4, 2000, 2000)
    };
    let (train_pc, test_pc, max_epochs) = if quick { (16, 10, 4) } else { (32, 20, 8) };
    let points = DIM_GRID
        .iter()
        .map(|&dim| measure_point(dim, reps, examples, queries))
        .collect();
    let accuracy_curve = measure_accuracy_curve(train_pc, test_pc, max_epochs);
    let final_accuracy = accuracy_curve.last().expect("curve is non-empty").accuracy;
    LearnReport {
        points,
        accuracy_curve,
        final_accuracy,
    }
}

/// Renders the grid as the human-readable table the bin prints.
pub fn learn_table(report: &LearnReport) -> Table {
    let mut table = Table::new(
        "online learning: train/classify throughput and classify latency",
        &["dim", "train/s", "classify/s", "p50 us", "p95 us"],
    );
    for p in &report.points {
        table.row(&[
            p.dim.to_string(),
            format!("{:.0}", p.train_per_sec),
            format!("{:.0}", p.classify_per_sec),
            format!("{:.1}", p.classify_p50_ns as f64 / 1e3),
            format!("{:.1}", p.classify_p95_ns as f64 / 1e3),
        ]);
    }
    table
}

/// Renders the machine-readable `BENCH_learn.json` document (schema
/// v1, documented in docs/LEARNING.md).
pub fn learn_json(report: &LearnReport, quick: bool) -> String {
    let available_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    JsonValue::obj(vec![
        ("bench", JsonValue::Str("learn".into())),
        ("schema_version", JsonValue::Uint(1)),
        ("quick", JsonValue::Bool(quick)),
        ("unit", JsonValue::Str("examples_per_second".into())),
        ("cpu_features", JsonValue::Str(hdc::kernels::cpu_features())),
        ("available_cores", JsonValue::Uint(available_cores as u64)),
        ("classes", JsonValue::Uint(LEARN_CLASSES as u64)),
        ("final_accuracy", JsonValue::Num(report.final_accuracy)),
        (
            "accuracy_curve",
            JsonValue::Arr(
                report
                    .accuracy_curve
                    .iter()
                    .map(|e| {
                        JsonValue::obj(vec![
                            ("epoch", JsonValue::Uint(e.epoch)),
                            ("train_errors", JsonValue::Uint(e.train_errors)),
                            ("accuracy", JsonValue::Num(e.accuracy)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "points",
            JsonValue::Arr(
                report
                    .points
                    .iter()
                    .map(|p| {
                        JsonValue::obj(vec![
                            ("dim", JsonValue::Uint(p.dim as u64)),
                            ("train_per_sec", JsonValue::Num(p.train_per_sec)),
                            ("classify_per_sec", JsonValue::Num(p.classify_per_sec)),
                            ("classify_p50_ns", JsonValue::Uint(p.classify_p50_ns)),
                            ("classify_p95_ns", JsonValue::Uint(p.classify_p95_ns)),
                            ("latency_count", JsonValue::Uint(p.latency_count)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
}
