//! Packed-scan throughput: the contiguous sharded codebook tables of
//! [`hdc::PackedShards`] against the per-item ternary popcount path they
//! replace.
//!
//! Both paths compute the same exact integer dots (asserted bit-identical
//! before any timing):
//!
//! * **reference/s** — the pre-packed calling pattern: one
//!   [`hdc::Similarity`] call per boxed item ([`Codebook::best_match`] /
//!   [`Codebook::top_k`]), i.e. the lossless-ternary popcount path PR 2
//!   routed single-object queries through.
//! * **packed/s** — the same scans through [`Codebook::packed_view`]:
//!   one contiguous word table, a precomputed query non-zero count, a
//!   bounded per-shard heap, and a rayon fork across shards once the
//!   table is large enough.

use crate::Table;
use hdc::{derive_seed, rng_from_seed, AsPackedQuery, Bundle, Codebook, CodebookScan, TernaryHv};
use std::time::Instant;

const SCAN_SEED: u64 = 0x9ACC_ED5C;
/// Distinct queries per timing pass (keeps the branch predictor honest).
const QUERIES: usize = 8;
/// Top-k width matched to the factorizer's default `refine_width`.
const TOP_K: usize = 4;

/// The `(dim, items)` grid the bench sweeps: the issue's D ∈ {1k, 8k, 32k}
/// at both factorizer-sized and catalog-sized codebooks.
pub const SCAN_GRID: [(usize, usize); 5] = [
    (1024, 256),
    (1024, 4096),
    (8192, 256),
    (8192, 4096),
    (32768, 1024),
];

/// Deterministic clipped-clause-like ternary queries (the factorizer's
/// dominant query type: ~half the components zero).
fn queries(dim: usize, n: usize) -> Vec<TernaryHv> {
    (0..n)
        .map(|i| {
            let mut rng = rng_from_seed(derive_seed(&[SCAN_SEED, dim as u64, i as u64]));
            let a = hdc::BipolarHv::random(dim, &mut rng);
            let b = hdc::BipolarHv::random(dim, &mut rng);
            a.bundle(&b).clip_ternary()
        })
        .collect()
}

/// One measured grid point.
#[derive(Debug, Clone, Copy)]
pub struct ScanPoint {
    /// Hypervector dimension `D`.
    pub dim: usize,
    /// Codebook items `M`.
    pub m: usize,
    /// Shards in the packed table.
    pub shards: usize,
    /// Reference (per-item ternary popcount) scans/second.
    pub reference_per_sec: f64,
    /// Packed shard-table scans/second.
    pub packed_per_sec: f64,
}

impl ScanPoint {
    /// Packed speedup over the per-item reference path.
    pub fn speedup(&self) -> f64 {
        self.packed_per_sec / self.reference_per_sec
    }
}

/// Asserts that the packed path answers every grid point bit-identically
/// to the scalar reference (top-1 and top-k), returning the number of
/// compared `(point, query)` pairs. The acceptance gate the throughput
/// numbers stand on.
pub fn verify_packed_equivalence() -> usize {
    let mut compared = 0;
    for &(dim, m) in &SCAN_GRID {
        let cb = Codebook::derive(derive_seed(&[SCAN_SEED, dim as u64, m as u64]), m, dim);
        for q in &queries(dim, QUERIES) {
            assert_eq!(
                q.scan_best(&cb).expect("non-empty"),
                cb.best_match(q).expect("non-empty"),
                "top-1 diverged at dim {dim}, m {m}"
            );
            assert_eq!(
                q.scan_top_k(&cb, TOP_K),
                cb.top_k(q, TOP_K),
                "top-{TOP_K} diverged at dim {dim}, m {m}"
            );
            compared += 1;
        }
    }
    compared
}

/// Measures one grid point: warm packed table, identical query stream on
/// both paths, results asserted equal before timing.
pub fn measure_scan(dim: usize, m: usize, reps: usize) -> ScanPoint {
    let cb = Codebook::derive(derive_seed(&[SCAN_SEED, dim as u64, m as u64]), m, dim);
    let queries = queries(dim, QUERIES);
    let view = cb.packed_view(); // warm the table before timing

    for q in &queries {
        assert_eq!(
            view.top_k(q.packed_query(), TOP_K),
            cb.top_k(q, TOP_K),
            "packed path must be bit-identical before timing"
        );
    }

    let reps = reps.max(1);
    let start = Instant::now();
    for _ in 0..reps {
        for q in &queries {
            std::hint::black_box(cb.top_k(q, TOP_K));
        }
    }
    let reference_secs = start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in 0..reps {
        for q in &queries {
            std::hint::black_box(view.top_k(q.packed_query(), TOP_K));
        }
    }
    let packed_secs = start.elapsed().as_secs_f64();

    let scans = (reps * QUERIES) as f64;
    ScanPoint {
        dim,
        m,
        shards: view.num_shards(),
        reference_per_sec: scans / reference_secs.max(f64::MIN_POSITIVE),
        packed_per_sec: scans / packed_secs.max(f64::MIN_POSITIVE),
    }
}

/// Runs the full grid. `quick` reduces repetitions per point.
pub fn packed_scan_points(quick: bool) -> Vec<ScanPoint> {
    SCAN_GRID
        .iter()
        .map(|&(dim, m)| {
            // Aim for comparable wall-clock per point across sizes.
            let budget = if quick { 1 << 22 } else { 1 << 25 };
            let reps = (budget / (dim * m * QUERIES)).clamp(1, 4096);
            measure_scan(dim, m, reps)
        })
        .collect()
}

/// Renders the grid as the human-readable table.
pub fn packed_scan_table(points: &[ScanPoint]) -> Table {
    let mut table = Table::new(
        "packed_scan: top-k codebook scans/sec, packed shard table vs per-item ternary popcount",
        &["dim", "M", "shards", "reference/s", "packed/s", "speedup"],
    );
    for point in points {
        table.row(&[
            point.dim.to_string(),
            point.m.to_string(),
            point.shards.to_string(),
            format!("{:.0}", point.reference_per_sec),
            format!("{:.0}", point.packed_per_sec),
            format!("{:.2}x", point.speedup()),
        ]);
    }
    table
}

/// Renders the grid as the `BENCH_packed_scan.json` document (schema
/// documented in docs/SERVING.md). Every point records the scan kernel
/// that served it (the packed path's runtime-dispatched inner loop), and
/// the document carries the CPU features the dispatcher saw.
pub fn packed_scan_json(points: &[ScanPoint], quick: bool) -> String {
    use crate::json::JsonValue;
    let kernel = hdc::kernels::selected_kernel().name();
    JsonValue::obj(vec![
        ("bench", JsonValue::Str("packed_scan".into())),
        ("schema_version", JsonValue::Uint(1)),
        ("quick", JsonValue::Bool(quick)),
        ("unit", JsonValue::Str("scans_per_second".into())),
        ("cpu_features", JsonValue::Str(hdc::kernels::cpu_features())),
        (
            "points",
            JsonValue::Arr(
                points
                    .iter()
                    .map(|p| {
                        JsonValue::obj(vec![
                            ("dim", JsonValue::Uint(p.dim as u64)),
                            ("items", JsonValue::Uint(p.m as u64)),
                            ("shards", JsonValue::Uint(p.shards as u64)),
                            ("kernel", JsonValue::Str(kernel.into())),
                            ("reference_per_sec", JsonValue::Num(p.reference_per_sec)),
                            ("packed_per_sec", JsonValue::Num(p.packed_per_sec)),
                            ("speedup", JsonValue::Num(p.speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_equivalence_holds_across_grid() {
        assert_eq!(verify_packed_equivalence(), SCAN_GRID.len() * QUERIES);
    }

    #[test]
    fn measure_scan_produces_positive_rates() {
        let point = measure_scan(1024, 64, 1);
        assert!(point.reference_per_sec > 0.0);
        assert!(point.packed_per_sec > 0.0);
        assert_eq!((point.dim, point.m), (1024, 64));
    }

    #[test]
    fn json_document_has_the_documented_shape() {
        let points = [ScanPoint {
            dim: 8192,
            m: 256,
            shards: 8,
            reference_per_sec: 100.0,
            packed_per_sec: 229.0,
        }];
        let doc = packed_scan_json(&points, false);
        for needle in [
            r#""bench":"packed_scan""#,
            r#""schema_version":1"#,
            r#""cpu_features":"#,
            r#""dim":8192"#,
            r#""items":256"#,
            r#""kernel":"#,
            r#""speedup":2.29"#,
        ] {
            assert!(doc.contains(needle), "{needle} missing from {doc}");
        }
    }
}
