//! Serving-engine throughput: batched warm-cache execution vs the naive
//! per-request rebuild the engine replaces.
//!
//! Three modes run the *same* deterministic request stream:
//!
//! * **naive/s** — the pre-engine calling pattern: every request rebuilds
//!   the taxonomy (labels, codebooks, clauses re-derived from the seed)
//!   and a fresh [`factorhd_core::Factorizer`] (label-elimination masks
//!   re-bound), then runs sequentially.
//! * **cold/s** — a freshly constructed [`FactorEngine`] executing the
//!   batch once (masks pre-built; codebook/clause/reconstruction caches
//!   filling as it goes).
//! * **warm/s** — the same engine executing the batch again with every
//!   cache hot.
//!
//! All three produce bit-identical responses; the table reports requests
//! per second and the warm÷naive speedup.

use crate::Table;
use factorhd_core::{Encoder, FactorizeConfig, Scene, Taxonomy, TaxonomyBuilder, ThresholdPolicy};
use factorhd_engine::{EngineConfig, FactorEngine, Request, Response};
use hdc::derive_seed;
use std::time::Instant;

const DIM: usize = 2048;
const MODEL_SEED: u64 = 0x5E21_D0DE;
const WORKLOAD_SEED: u64 = 0xBA7C_4ED5;
/// Distinct objects in the simulated catalog; requests draw from this
/// pool the way production traffic revisits a finite item population.
const CATALOG: usize = 32;

/// The benchmark's model: one hierarchical class plus two flat ones.
pub fn bench_taxonomy() -> Taxonomy {
    TaxonomyBuilder::new(DIM)
        .seed(MODEL_SEED)
        .class("animal", &[16, 8])
        .class("color", &[16])
        .class("size", &[16])
        .build()
        .expect("valid taxonomy")
}

fn bench_factorize_config() -> FactorizeConfig {
    FactorizeConfig {
        threshold: ThresholdPolicy::Analytic { n_objects: 2 },
        ..FactorizeConfig::default()
    }
}

/// The benchmark's engine configuration.
pub fn bench_engine_config() -> EngineConfig {
    EngineConfig {
        factorize: bench_factorize_config(),
        ..EngineConfig::default()
    }
}

/// Builds the deterministic mixed request stream for one batch size:
/// single-object factorizations (the bulk), multi-object Rep-3 scenes,
/// partial factorizations, membership probes, and scene encodes.
pub fn build_requests(taxonomy: &Taxonomy, batch: usize) -> Vec<Request> {
    let encoder = Encoder::new(taxonomy);
    let mut rng = hdc::rng_from_seed(derive_seed(&[WORKLOAD_SEED, 1]));
    let catalog: Vec<_> = (0..CATALOG)
        .map(|_| taxonomy.sample_object(&mut rng))
        .collect();
    let mut rng = hdc::rng_from_seed(derive_seed(&[WORKLOAD_SEED, batch as u64]));
    (0..batch)
        .map(|i| {
            let object = catalog[(i * 7 + i / 3) % CATALOG].clone();
            match i % 8 {
                0 => {
                    let other = catalog[(i * 5 + 1) % CATALOG].clone();
                    let scene = Scene::new(vec![object, other]);
                    Request::FactorizeMulti(encoder.encode_scene(&scene).expect("encodable"))
                }
                5 => Request::FactorizeClasses {
                    scene: encoder
                        .encode_scene(&Scene::single(object))
                        .expect("encodable"),
                    classes: vec![1],
                },
                6 => Request::Membership {
                    scene: encoder
                        .encode_scene(&Scene::single(object.clone()))
                        .expect("encodable"),
                    items: vec![(1, object.assignment(1).expect("present").clone())],
                    absent: vec![],
                },
                7 => {
                    let fresh = taxonomy.sample_object(&mut rng);
                    Request::EncodeScene(Scene::new(vec![object, fresh]))
                }
                _ => Request::FactorizeSingle(
                    encoder
                        .encode_scene(&Scene::single(object))
                        .expect("encodable"),
                ),
            }
        })
        .collect()
}

/// Executes one request the pre-engine way: rebuild the taxonomy (labels,
/// codebooks, clauses all re-derived) and the label-elimination masks
/// from scratch, then serve the single request and throw everything away.
/// A throwaway one-request engine *is* that calling pattern — and routing
/// through [`FactorEngine::execute`] keeps the dispatch semantics defined
/// in exactly one place.
fn execute_naive(request: &Request) -> Response {
    FactorEngine::new(bench_taxonomy(), bench_engine_config())
        .execute(request)
        .expect("request succeeds")
}

fn unwrap_all(results: Vec<Result<Response, factorhd_engine::EngineError>>) -> Vec<Response> {
    results
        .into_iter()
        .map(|r| r.expect("request succeeds"))
        .collect()
}

/// One measured row of the throughput table.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Requests per batch.
    pub batch: usize,
    /// Naive sequential cold-path requests/second.
    pub naive_per_sec: f64,
    /// Cold-engine batched requests/second.
    pub cold_per_sec: f64,
    /// Warm-engine batched requests/second.
    pub warm_per_sec: f64,
}

impl ThroughputPoint {
    /// Warm-cache speedup over the naive baseline.
    pub fn speedup(&self) -> f64 {
        self.warm_per_sec / self.naive_per_sec
    }
}

/// Measures one batch size, verifying that all three execution modes
/// return bit-identical responses before timing them.
pub fn measure_batch(batch: usize, reps: usize) -> ThroughputPoint {
    let taxonomy = bench_taxonomy();
    let requests = build_requests(&taxonomy, batch);

    let engine = FactorEngine::new(bench_taxonomy(), bench_engine_config());
    // Correctness first: naive, cold-batched, and warm-batched agree.
    let naive: Vec<Response> = requests.iter().map(execute_naive).collect();
    let cold = unwrap_all(engine.execute_batch(&requests));
    assert_eq!(naive, cold, "engine must be bit-identical to naive path");

    // Timed naive baseline (sequential, rebuild per request).
    let reps = reps.max(1);
    let start = Instant::now();
    for _ in 0..reps {
        for request in &requests {
            std::hint::black_box(execute_naive(request));
        }
    }
    let naive_secs = start.elapsed().as_secs_f64() / reps as f64;

    // Timed cold engine: construction + first batch, fresh each rep.
    let start = Instant::now();
    for _ in 0..reps {
        let fresh = FactorEngine::new(bench_taxonomy(), bench_engine_config());
        std::hint::black_box(fresh.execute_batch(&requests));
    }
    let cold_secs = start.elapsed().as_secs_f64() / reps as f64;

    // Timed warm engine: every cache already hot.
    let warm_reference = unwrap_all(engine.execute_batch(&requests));
    assert_eq!(cold, warm_reference, "warm cache changed results");
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(engine.execute_batch(&requests));
    }
    let warm_secs = start.elapsed().as_secs_f64() / reps as f64;

    let per_sec = |secs: f64| batch as f64 / secs.max(f64::MIN_POSITIVE);
    ThroughputPoint {
        batch,
        naive_per_sec: per_sec(naive_secs),
        cold_per_sec: per_sec(cold_secs),
        warm_per_sec: per_sec(warm_secs),
    }
}

/// Runs the full sweep (batch sizes 1 / 8 / 64 / 512) and renders the
/// table. `quick` runs one repetition per point instead of three.
pub fn engine_throughput_table(quick: bool) -> Table {
    let reps = if quick { 1 } else { 3 };
    let mut table = Table::new(
        "engine_throughput: requests/sec, cold vs warm cache (1 rebuild-per-request naive baseline)",
        &["batch", "naive/s", "cold/s", "warm/s", "warm÷naive"],
    );
    for batch in [1usize, 8, 64, 512] {
        let point = measure_batch(batch, reps);
        table.row(&[
            point.batch.to_string(),
            format!("{:.0}", point.naive_per_sec),
            format!("{:.0}", point.cold_per_sec),
            format!("{:.0}", point.warm_per_sec),
            format!("{:.2}x", point.speedup()),
        ]);
    }
    table
}

/// Verifies the artifact acceptance criterion: save → load → factorize is
/// bit-identical to serving from the in-memory model. Returns the number
/// of compared responses.
pub fn verify_artifact_round_trip() -> usize {
    let engine = FactorEngine::new(bench_taxonomy(), bench_engine_config());
    let requests = build_requests(engine.taxonomy(), 64);
    let mut bytes = Vec::new();
    engine.save_to(&mut bytes).expect("artifact serializes");
    let restored = FactorEngine::load_from(&mut &bytes[..], bench_engine_config())
        .expect("artifact deserializes");
    let original = unwrap_all(engine.execute_batch(&requests));
    let roundtripped = unwrap_all(restored.execute_batch(&requests));
    assert_eq!(
        original, roundtripped,
        "artifact round trip must serve bit-identically"
    );
    original.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let taxonomy = bench_taxonomy();
        assert_eq!(build_requests(&taxonomy, 16), build_requests(&taxonomy, 16));
    }

    #[test]
    fn small_batch_modes_agree_and_speed_up() {
        let point = measure_batch(8, 1);
        assert_eq!(point.batch, 8);
        assert!(point.naive_per_sec > 0.0);
        assert!(point.warm_per_sec > 0.0);
    }

    #[test]
    fn artifact_round_trip_is_bit_identical() {
        assert_eq!(verify_artifact_round_trip(), 64);
    }
}
