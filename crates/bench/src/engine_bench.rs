//! Serving-engine throughput: a **threads × batch scaling grid** of
//! batched warm-cache execution vs the naive per-request rebuild the
//! engine replaces.
//!
//! Three modes run the *same* deterministic typed-op stream:
//!
//! * **naive/s** — the pre-engine calling pattern: every op rebuilds
//!   the taxonomy (labels, codebooks, clauses re-derived from the seed)
//!   and a fresh model state (label-elimination masks re-bound), then
//!   runs sequentially.
//! * **cold/s** — a freshly constructed [`FactorEngine`] planning the
//!   batch once (masks pre-built; codebook/clause/reconstruction caches
//!   filling as it goes).
//! * **warm/s** — the same engine planning the batch again with every
//!   cache hot.
//!
//! The sweep measures every batch size of [`BATCH_SIZES`] at every pool
//! size of [`thread_grid`] (resizing the worker pool through
//! `rayon::configure_pool`, the in-process equivalent of re-running under
//! different `RAYON_NUM_THREADS`). At **every** grid point the planned
//! batch is asserted bit-identical to a sequential loop over the same
//! ops, and the naive baseline — which has no batch or thread dimension —
//! is measured once per batch size on a single-lane pool.
//!
//! Timing is **best-of-reps** (the minimum wall-clock across
//! repetitions): throughput noise is one-sided — a run can only be slowed
//! down by interference, never sped up — so the minimum is the stablest
//! estimator of the machine's actual capability, which matters for the
//! scaling-cliff regression gate ([`throughput_gate`]).
//!
//! The table reports requests per second, the warm÷naive speedup, and
//! warm efficiency vs linear scaling (warm ÷ (threads × single-lane
//! warm)); [`engine_throughput_json`] renders the same points as the
//! machine-readable `BENCH_engine.json` (schema in docs/SERVING.md).

use crate::json::JsonValue;
use crate::Table;
use factorhd_core::{Encoder, FactorizeConfig, Scene, Taxonomy, TaxonomyBuilder, ThresholdPolicy};
use factorhd_engine::{
    AnyOp, AnyOutput, EncodeScene, EngineConfig, FactorEngine, FactorizeRep2, FactorizeRep3,
    MembershipProbe, PartialDecode,
};
use hdc::derive_seed;
use std::time::Instant;

const DIM: usize = 2048;
const MODEL_SEED: u64 = 0x5E21_D0DE;
const WORKLOAD_SEED: u64 = 0xBA7C_4ED5;
/// Distinct objects in the simulated catalog; requests draw from this
/// pool the way production traffic revisits a finite item population.
const CATALOG: usize = 32;
/// The batch sizes the sweep measures.
pub const BATCH_SIZES: [usize; 4] = [1, 8, 64, 512];
/// Margin the scaling-cliff gate allows for run-to-run noise: warm
/// batch-512 must reach at least this fraction of warm batch-64. The
/// rollover this gate guards against was an ≈18% drop; a 10% allowance
/// catches that class of regression without tripping on scheduler noise.
pub const GATE_MARGIN: f64 = 0.9;

/// The pool sizes the scaling grid sweeps: 1, 2, 4, and every available
/// core (deduplicated — on a machine with ≤ 4 cores the grid just stops
/// at the core count, plus the oversubscribed rows 2/4 which measure
/// timesharing honestly rather than being skipped).
pub fn thread_grid() -> Vec<usize> {
    let mut grid = vec![1, 2, 4, rayon::env_num_threads()];
    grid.sort_unstable();
    grid.dedup();
    grid
}

/// The benchmark's model: one hierarchical class plus two flat ones.
pub fn bench_taxonomy() -> Taxonomy {
    TaxonomyBuilder::new(DIM)
        .seed(MODEL_SEED)
        .class("animal", &[16, 8])
        .class("color", &[16])
        .class("size", &[16])
        .build()
        .expect("valid taxonomy")
}

fn bench_factorize_config() -> FactorizeConfig {
    FactorizeConfig {
        threshold: ThresholdPolicy::Analytic { n_objects: 2 },
        ..FactorizeConfig::default()
    }
}

/// The benchmark's engine configuration.
pub fn bench_engine_config() -> EngineConfig {
    EngineConfig {
        factorize: bench_factorize_config(),
        ..EngineConfig::default()
    }
}

/// Builds the deterministic mixed typed-op stream for one batch size:
/// single-object factorizations (the bulk), multi-object Rep-3 scenes,
/// partial factorizations, membership probes, and scene encodes.
pub fn build_ops(taxonomy: &Taxonomy, batch: usize) -> Vec<AnyOp> {
    let encoder = Encoder::new(taxonomy);
    let mut rng = hdc::rng_from_seed(derive_seed(&[WORKLOAD_SEED, 1]));
    let catalog: Vec<_> = (0..CATALOG)
        .map(|_| taxonomy.sample_object(&mut rng))
        .collect();
    let mut rng = hdc::rng_from_seed(derive_seed(&[WORKLOAD_SEED, batch as u64]));
    (0..batch)
        .map(|i| {
            let object = catalog[(i * 7 + i / 3) % CATALOG].clone();
            match i % 8 {
                0 => {
                    let other = catalog[(i * 5 + 1) % CATALOG].clone();
                    let scene = Scene::new(vec![object, other]);
                    AnyOp::Rep3(FactorizeRep3 {
                        scene: encoder.encode_scene(&scene).expect("encodable"),
                    })
                }
                5 => AnyOp::Partial(PartialDecode {
                    scene: encoder
                        .encode_scene(&Scene::single(object))
                        .expect("encodable"),
                    classes: vec![1],
                }),
                6 => AnyOp::Membership(MembershipProbe {
                    scene: encoder
                        .encode_scene(&Scene::single(object.clone()))
                        .expect("encodable"),
                    items: vec![(1, object.assignment(1).expect("present").clone())],
                    absent: vec![],
                }),
                7 => {
                    let fresh = taxonomy.sample_object(&mut rng);
                    AnyOp::Encode(EncodeScene {
                        scene: Scene::new(vec![object, fresh]),
                    })
                }
                _ => AnyOp::Rep2(FactorizeRep2 {
                    scene: encoder
                        .encode_scene(&Scene::single(object))
                        .expect("encodable"),
                }),
            }
        })
        .collect()
}

/// Executes one op the pre-engine way: rebuild the taxonomy (labels,
/// codebooks, clauses all re-derived) and the label-elimination masks
/// from scratch, then serve the single op and throw everything away.
/// A throwaway one-op engine *is* that calling pattern — and routing
/// through [`FactorEngine::run`] keeps the dispatch semantics defined in
/// exactly one place.
fn execute_naive(op: &AnyOp) -> AnyOutput {
    FactorEngine::new(bench_taxonomy(), bench_engine_config())
        .expect("valid config")
        .run(op)
        .expect("op succeeds")
}

fn unwrap_all(results: Vec<Result<AnyOutput, factorhd_engine::EngineError>>) -> Vec<AnyOutput> {
    results
        .into_iter()
        .map(|r| r.expect("op succeeds"))
        .collect()
}

/// One measured grid point of the throughput sweep.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Requests per batch.
    pub batch: usize,
    /// Worker-pool compute lanes this row ran on.
    pub threads: usize,
    /// Naive sequential cold-path requests/second (thread-independent;
    /// measured once per batch size on a single-lane pool).
    pub naive_per_sec: f64,
    /// Cold-engine batched requests/second (construction + first batch).
    pub cold_per_sec: f64,
    /// Warm-engine batched requests/second.
    pub warm_per_sec: f64,
    /// Warm throughput ÷ (threads × single-lane warm throughput at the
    /// same batch): 1.0 is perfect linear scaling, 1/threads is no
    /// scaling at all (e.g. more lanes than cores).
    pub efficiency_vs_linear: f64,
}

impl ThroughputPoint {
    /// Warm-cache speedup over the naive baseline.
    pub fn speedup(&self) -> f64 {
        self.warm_per_sec / self.naive_per_sec
    }
}

/// Times `run` `reps` times and returns the best (minimum) wall-clock in
/// seconds — the stablest throughput estimator, since interference only
/// ever slows a run down.
fn best_of(reps: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn per_sec(requests: usize, secs: f64) -> f64 {
    requests as f64 / secs.max(f64::MIN_POSITIVE)
}

/// Measures the naive rebuild-per-request baseline for `ops`, returning
/// its outputs (the bit-identity reference) and requests/second.
fn measure_naive(ops: &[AnyOp], reps: usize) -> (Vec<AnyOutput>, f64) {
    let outputs: Vec<AnyOutput> = ops.iter().map(execute_naive).collect();
    let secs = best_of(reps, || {
        for op in ops {
            std::hint::black_box(execute_naive(op));
        }
    });
    (outputs, per_sec(ops.len(), secs))
}

/// Measures planned batch execution of `ops` on the current worker pool:
/// asserts the planned outputs bit-identical to a sequential loop (fresh
/// engines, no shared caches), then times the cold path (construction +
/// first batch) and the warm path (every cache hot). Returns the planned
/// outputs and (cold, warm) requests/second.
fn measure_engine(ops: &[AnyOp], reps: usize) -> (Vec<AnyOutput>, f64, f64) {
    let engine = FactorEngine::new(bench_taxonomy(), bench_engine_config()).expect("valid config");
    let planned = unwrap_all(engine.run_mixed(ops));
    let sequential = unwrap_all(
        FactorEngine::new(bench_taxonomy(), bench_engine_config())
            .expect("valid config")
            .run_mixed_sequential(ops),
    );
    assert_eq!(
        planned, sequential,
        "planned batch must be bit-identical to the sequential loop"
    );

    let cold_secs = best_of(reps, || {
        let fresh =
            FactorEngine::new(bench_taxonomy(), bench_engine_config()).expect("valid config");
        std::hint::black_box(fresh.run_mixed(ops));
    });

    // `engine` already served one batch above: every cache is hot.
    let warm_reference = unwrap_all(engine.run_mixed(ops));
    assert_eq!(planned, warm_reference, "warm cache changed results");
    let warm_secs = best_of(reps, || {
        std::hint::black_box(engine.run_mixed(ops));
    });

    (
        planned,
        per_sec(ops.len(), cold_secs),
        per_sec(ops.len(), warm_secs),
    )
}

/// Measures one batch size on the **current** worker pool, verifying that
/// naive, cold-planned, warm-planned, and sequential execution all return
/// bit-identical outputs before timing them. When the pool has more than
/// one lane, the single-lane warm reference (for the efficiency column)
/// is measured by temporarily shrinking the pool, which is restored
/// before returning.
pub fn measure_batch(batch: usize, reps: usize) -> ThroughputPoint {
    let taxonomy = bench_taxonomy();
    let ops = build_ops(&taxonomy, batch);
    let threads = rayon::current_num_threads();

    let (naive, naive_per_sec) = measure_naive(&ops, reps);
    let (planned, cold_per_sec, warm_per_sec) = measure_engine(&ops, reps);
    assert_eq!(naive, planned, "engine must be bit-identical to naive path");

    let warm_single = if threads == 1 {
        warm_per_sec
    } else {
        rayon::configure_pool(1);
        let (_, _, warm_single) = measure_engine(&ops, reps);
        rayon::configure_pool(threads);
        warm_single
    };
    ThroughputPoint {
        batch,
        threads,
        naive_per_sec,
        cold_per_sec,
        warm_per_sec,
        efficiency_vs_linear: warm_per_sec / (threads as f64 * warm_single),
    }
}

/// Runs the full [`thread_grid`] × [`BATCH_SIZES`] sweep. `quick` runs
/// three repetitions per point instead of five — still best-of, because
/// a single repetition is noisy enough on a shared container to trip the
/// [`throughput_gate`] spuriously. Every grid point's planned outputs
/// are asserted bit-identical to sequential execution; the pool is
/// restored to its entry size before returning.
pub fn engine_throughput_points(quick: bool) -> Vec<ThroughputPoint> {
    let reps = if quick { 3 } else { 5 };
    let initial = rayon::current_num_threads();
    let taxonomy = bench_taxonomy();
    let mut points = Vec::new();
    for &batch in &BATCH_SIZES {
        let ops = build_ops(&taxonomy, batch);
        // The naive baseline has no batch planner and no parallelism:
        // measure it once per batch size on a single-lane pool.
        rayon::configure_pool(1);
        let (naive, naive_per_sec) = measure_naive(&ops, reps);
        let mut warm_single = f64::NAN;
        for &threads in &thread_grid() {
            rayon::configure_pool(threads);
            let (planned, cold_per_sec, warm_per_sec) = measure_engine(&ops, reps);
            assert_eq!(
                naive, planned,
                "grid point (threads {threads}, batch {batch}) diverged from the naive path"
            );
            if threads == 1 {
                warm_single = warm_per_sec;
            }
            points.push(ThroughputPoint {
                batch,
                threads,
                naive_per_sec,
                cold_per_sec,
                warm_per_sec,
                efficiency_vs_linear: warm_per_sec / (threads as f64 * warm_single),
            });
        }
    }
    rayon::configure_pool(initial);
    points
}

/// The scaling-cliff regression gate: at every measured thread count,
/// warm batch-512 throughput must reach at least [`GATE_MARGIN`] × warm
/// batch-64 throughput — the batch-512 rollover, re-encoded as a failure.
///
/// # Errors
///
/// A human-readable description of the first failing thread count, or of
/// a grid missing the batches the gate compares.
pub fn throughput_gate(points: &[ThroughputPoint]) -> Result<(), String> {
    let mut checked = 0usize;
    for p512 in points.iter().filter(|p| p.batch == 512) {
        let p64 = points
            .iter()
            .find(|p| p.batch == 64 && p.threads == p512.threads)
            .ok_or_else(|| format!("gate: no batch-64 row at {} threads", p512.threads))?;
        if p512.warm_per_sec < GATE_MARGIN * p64.warm_per_sec {
            return Err(format!(
                "gate: warm batch-512 ({:.0}/s) fell below {GATE_MARGIN} × warm batch-64 \
                 ({:.0}/s) at {} threads — the batch-512 rollover is back",
                p512.warm_per_sec, p64.warm_per_sec, p512.threads
            ));
        }
        checked += 1;
    }
    if checked == 0 {
        return Err("gate: no batch-512 rows to check".into());
    }
    Ok(())
}

/// Renders the sweep as the human-readable table.
pub fn engine_throughput_table(points: &[ThroughputPoint]) -> Table {
    let mut table = Table::new(
        "engine_throughput: requests/sec over the threads × batch grid (rebuild-per-request naive baseline; eff = warm ÷ threads·single-lane warm)",
        &["batch", "threads", "naive/s", "cold/s", "warm/s", "warm÷naive", "eff"],
    );
    for point in points {
        table.row(&[
            point.batch.to_string(),
            point.threads.to_string(),
            format!("{:.0}", point.naive_per_sec),
            format!("{:.0}", point.cold_per_sec),
            format!("{:.0}", point.warm_per_sec),
            format!("{:.2}x", point.speedup()),
            format!("{:.2}", point.efficiency_vs_linear),
        ]);
    }
    table
}

/// Renders the sweep as the `BENCH_engine.json` document (schema
/// documented in docs/SERVING.md). Every point records the scan kernel
/// the engine's codebook scans dispatched to, and the document carries
/// the CPU features the dispatcher saw.
pub fn engine_throughput_json(points: &[ThroughputPoint], quick: bool) -> String {
    let kernel = hdc::kernels::selected_kernel().name();
    let available_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    JsonValue::obj(vec![
        ("bench", JsonValue::Str("engine_throughput".into())),
        ("schema_version", JsonValue::Uint(2)),
        ("quick", JsonValue::Bool(quick)),
        ("unit", JsonValue::Str("requests_per_second".into())),
        ("cpu_features", JsonValue::Str(hdc::kernels::cpu_features())),
        ("available_cores", JsonValue::Uint(available_cores as u64)),
        (
            "points",
            JsonValue::Arr(
                points
                    .iter()
                    .map(|p| {
                        JsonValue::obj(vec![
                            ("batch", JsonValue::Uint(p.batch as u64)),
                            ("threads", JsonValue::Uint(p.threads as u64)),
                            ("kernel", JsonValue::Str(kernel.into())),
                            ("naive_per_sec", JsonValue::Num(p.naive_per_sec)),
                            ("cold_per_sec", JsonValue::Num(p.cold_per_sec)),
                            ("warm_per_sec", JsonValue::Num(p.warm_per_sec)),
                            ("warm_over_naive", JsonValue::Num(p.speedup())),
                            (
                                "efficiency_vs_linear",
                                JsonValue::Num(p.efficiency_vs_linear),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
}

/// Verifies the artifact acceptance criterion: save → load → factorize is
/// bit-identical to serving from the in-memory model. Returns the number
/// of compared outputs.
pub fn verify_artifact_round_trip() -> usize {
    let engine = FactorEngine::new(bench_taxonomy(), bench_engine_config()).expect("valid config");
    let ops = build_ops(engine.taxonomy(), 64);
    let mut bytes = Vec::new();
    engine.save_to(&mut bytes).expect("artifact serializes");
    let restored = FactorEngine::load_from(&mut &bytes[..], bench_engine_config())
        .expect("artifact deserializes");
    let original = unwrap_all(engine.run_mixed(&ops));
    let roundtripped = unwrap_all(restored.run_mixed(&ops));
    assert_eq!(
        original, roundtripped,
        "artifact round trip must serve bit-identically"
    );
    original.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let taxonomy = bench_taxonomy();
        assert_eq!(build_ops(&taxonomy, 16), build_ops(&taxonomy, 16));
    }

    #[test]
    fn small_batch_modes_agree_and_speed_up() {
        let point = measure_batch(8, 1);
        assert_eq!(point.batch, 8);
        assert!(point.threads >= 1);
        assert!(point.naive_per_sec > 0.0);
        assert!(point.warm_per_sec > 0.0);
        assert!(point.efficiency_vs_linear > 0.0);
    }

    #[test]
    fn thread_grid_is_sorted_deduped_and_starts_at_one() {
        let grid = thread_grid();
        assert_eq!(grid[0], 1, "single-lane reference row must come first");
        assert!(grid.windows(2).all(|w| w[0] < w[1]), "sorted, no repeats");
        assert!(grid.contains(&rayon::env_num_threads()));
    }

    fn gate_point(batch: usize, threads: usize, warm: f64) -> ThroughputPoint {
        ThroughputPoint {
            batch,
            threads,
            naive_per_sec: 1.0,
            cold_per_sec: warm,
            warm_per_sec: warm,
            efficiency_vs_linear: 1.0,
        }
    }

    #[test]
    fn gate_passes_flat_and_rising_grids_and_fails_the_rollover() {
        // Rising: batch 512 beats batch 64 at both thread counts.
        let rising = [
            gate_point(64, 1, 100.0),
            gate_point(512, 1, 110.0),
            gate_point(64, 2, 180.0),
            gate_point(512, 2, 200.0),
        ];
        assert!(throughput_gate(&rising).is_ok());
        // Within the noise margin: a hair below batch 64 still passes.
        let flat = [gate_point(64, 1, 100.0), gate_point(512, 1, 95.0)];
        assert!(throughput_gate(&flat).is_ok());
        // The recorded rollover (21.1k → 17.3k, ≈18% drop) must fail.
        let rollover = [gate_point(64, 1, 21131.0), gate_point(512, 1, 17372.0)];
        let err = throughput_gate(&rollover).expect_err("rollover must fail the gate");
        assert!(err.contains("batch-512"), "{err}");
        // A grid with no batch-512 rows cannot vacuously pass.
        assert!(throughput_gate(&[gate_point(64, 1, 100.0)]).is_err());
        // A batch-512 row with no matching batch-64 row is an error too.
        assert!(throughput_gate(&[gate_point(512, 3, 100.0)]).is_err());
    }

    #[test]
    fn artifact_round_trip_is_bit_identical() {
        assert_eq!(verify_artifact_round_trip(), 64);
    }

    #[test]
    fn json_document_has_the_documented_shape() {
        let points = [ThroughputPoint {
            batch: 64,
            threads: 2,
            naive_per_sec: 100.0,
            cold_per_sec: 200.0,
            warm_per_sec: 300.0,
            efficiency_vs_linear: 0.75,
        }];
        let doc = engine_throughput_json(&points, true);
        for needle in [
            r#""bench":"engine_throughput""#,
            r#""schema_version":2"#,
            r#""quick":true"#,
            r#""cpu_features":"#,
            r#""available_cores":"#,
            r#""batch":64"#,
            r#""threads":2"#,
            r#""kernel":"#,
            r#""warm_per_sec":300"#,
            r#""warm_over_naive":3"#,
            r#""efficiency_vs_linear":0.75"#,
        ] {
            assert!(doc.contains(needle), "{needle} missing from {doc}");
        }
    }
}
