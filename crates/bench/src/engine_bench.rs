//! Serving-engine throughput: a **threads × batch scaling grid** of
//! batched warm-cache execution vs the naive per-request rebuild the
//! engine replaces.
//!
//! Three modes run the *same* deterministic typed-op stream:
//!
//! * **naive/s** — the pre-engine calling pattern: every op rebuilds
//!   the taxonomy (labels, codebooks, clauses re-derived from the seed)
//!   and a fresh model state (label-elimination masks re-bound), then
//!   runs sequentially.
//! * **cold/s** — a freshly constructed [`FactorEngine`] planning the
//!   batch once (masks pre-built; codebook/clause/reconstruction caches
//!   filling as it goes).
//! * **warm/s** — the same engine planning the batch again with every
//!   cache hot.
//!
//! The sweep measures every batch size of [`BATCH_SIZES`] at every pool
//! size of [`thread_grid`] (resizing the worker pool through
//! `rayon::configure_pool`, the in-process equivalent of re-running under
//! different `RAYON_NUM_THREADS`). At **every** grid point the planned
//! batch is asserted bit-identical to a sequential loop over the same
//! ops, and the naive baseline — which has no batch or thread dimension —
//! is measured once per batch size on a single-lane pool.
//!
//! Timing is **best-of-reps** (the minimum wall-clock across
//! repetitions): throughput noise is one-sided — a run can only be slowed
//! down by interference, never sped up — so the minimum is the stablest
//! estimator of the machine's actual capability, which matters for the
//! regression gate (`crate::gate`, run by the `bench_gate` bin) that
//! diffs the emitted document against a committed baseline.
//!
//! The table reports requests per second, the warm÷naive speedup, and
//! warm efficiency vs linear scaling (warm ÷ (threads × single-lane
//! warm)); [`engine_throughput_json`] renders the same points — plus the
//! engine telemetry snapshot and the measured metrics overhead
//! ([`collect_metrics_report`]) — as the machine-readable
//! `BENCH_engine.json` (schema v3, documented in docs/SERVING.md).

use crate::json::JsonValue;
use crate::Table;
use factorhd_core::{Encoder, FactorizeConfig, Scene, Taxonomy, TaxonomyBuilder, ThresholdPolicy};
use factorhd_engine::metrics::{self, HistogramSnapshot, MetricsSnapshot};
use factorhd_engine::{
    AnyOp, AnyOutput, EncodeScene, EngineConfig, FactorEngine, FactorizeRep2, FactorizeRep3,
    MembershipProbe, PartialDecode,
};
use hdc::derive_seed;
use std::time::Instant;

const DIM: usize = 2048;
const MODEL_SEED: u64 = 0x5E21_D0DE;
const WORKLOAD_SEED: u64 = 0xBA7C_4ED5;
/// Distinct objects in the simulated catalog; requests draw from this
/// pool the way production traffic revisits a finite item population.
const CATALOG: usize = 32;
/// The batch sizes the sweep measures.
pub const BATCH_SIZES: [usize; 4] = [1, 8, 64, 512];

/// The pool sizes the scaling grid sweeps: 1, 2, 4, and every available
/// core (deduplicated — on a machine with ≤ 4 cores the grid just stops
/// at the core count, plus the oversubscribed rows 2/4 which measure
/// timesharing honestly rather than being skipped).
pub fn thread_grid() -> Vec<usize> {
    let mut grid = vec![1, 2, 4, rayon::env_num_threads()];
    grid.sort_unstable();
    grid.dedup();
    grid
}

/// The benchmark's model: one hierarchical class plus two flat ones.
pub fn bench_taxonomy() -> Taxonomy {
    TaxonomyBuilder::new(DIM)
        .seed(MODEL_SEED)
        .class("animal", &[16, 8])
        .class("color", &[16])
        .class("size", &[16])
        .build()
        .expect("valid taxonomy")
}

fn bench_factorize_config() -> FactorizeConfig {
    FactorizeConfig {
        threshold: ThresholdPolicy::Analytic { n_objects: 2 },
        ..FactorizeConfig::default()
    }
}

/// The benchmark's engine configuration.
pub fn bench_engine_config() -> EngineConfig {
    EngineConfig {
        factorize: bench_factorize_config(),
        ..EngineConfig::default()
    }
}

/// Builds the deterministic mixed typed-op stream for one batch size:
/// single-object factorizations (the bulk), multi-object Rep-3 scenes,
/// partial factorizations, membership probes, and scene encodes.
pub fn build_ops(taxonomy: &Taxonomy, batch: usize) -> Vec<AnyOp> {
    let encoder = Encoder::new(taxonomy);
    let mut rng = hdc::rng_from_seed(derive_seed(&[WORKLOAD_SEED, 1]));
    let catalog: Vec<_> = (0..CATALOG)
        .map(|_| taxonomy.sample_object(&mut rng))
        .collect();
    let mut rng = hdc::rng_from_seed(derive_seed(&[WORKLOAD_SEED, batch as u64]));
    (0..batch)
        .map(|i| {
            let object = catalog[(i * 7 + i / 3) % CATALOG].clone();
            match i % 8 {
                0 => {
                    let other = catalog[(i * 5 + 1) % CATALOG].clone();
                    let scene = Scene::new(vec![object, other]);
                    AnyOp::Rep3(FactorizeRep3 {
                        scene: encoder.encode_scene(&scene).expect("encodable"),
                    })
                }
                5 => AnyOp::Partial(PartialDecode {
                    scene: encoder
                        .encode_scene(&Scene::single(object))
                        .expect("encodable"),
                    classes: vec![1],
                }),
                6 => AnyOp::Membership(MembershipProbe {
                    scene: encoder
                        .encode_scene(&Scene::single(object.clone()))
                        .expect("encodable"),
                    items: vec![(1, object.assignment(1).expect("present").clone())],
                    absent: vec![],
                }),
                7 => {
                    let fresh = taxonomy.sample_object(&mut rng);
                    AnyOp::Encode(EncodeScene {
                        scene: Scene::new(vec![object, fresh]),
                    })
                }
                _ => AnyOp::Rep2(FactorizeRep2 {
                    scene: encoder
                        .encode_scene(&Scene::single(object))
                        .expect("encodable"),
                }),
            }
        })
        .collect()
}

/// Executes one op the pre-engine way: rebuild the taxonomy (labels,
/// codebooks, clauses all re-derived) and the label-elimination masks
/// from scratch, then serve the single op and throw everything away.
/// A throwaway one-op engine *is* that calling pattern — and routing
/// through [`FactorEngine::run`] keeps the dispatch semantics defined in
/// exactly one place.
fn execute_naive(op: &AnyOp) -> AnyOutput {
    FactorEngine::new(bench_taxonomy(), bench_engine_config())
        .expect("valid config")
        .run(op)
        .expect("op succeeds")
}

fn unwrap_all(results: Vec<Result<AnyOutput, factorhd_engine::EngineError>>) -> Vec<AnyOutput> {
    results
        .into_iter()
        .map(|r| r.expect("op succeeds"))
        .collect()
}

/// One measured grid point of the throughput sweep.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Requests per batch.
    pub batch: usize,
    /// Worker-pool compute lanes this row ran on.
    pub threads: usize,
    /// Naive sequential cold-path requests/second (thread-independent;
    /// measured once per batch size on a single-lane pool).
    pub naive_per_sec: f64,
    /// Cold-engine batched requests/second (construction + first batch).
    pub cold_per_sec: f64,
    /// Warm-engine batched requests/second.
    pub warm_per_sec: f64,
    /// Warm throughput ÷ (threads × single-lane warm throughput at the
    /// same batch): 1.0 is perfect linear scaling, 1/threads is no
    /// scaling at all (e.g. more lanes than cores).
    pub efficiency_vs_linear: f64,
}

impl ThroughputPoint {
    /// Warm-cache speedup over the naive baseline.
    pub fn speedup(&self) -> f64 {
        self.warm_per_sec / self.naive_per_sec
    }
}

/// Times `run` `reps` times and returns the best (minimum) wall-clock in
/// seconds — the stablest throughput estimator, since interference only
/// ever slows a run down.
fn best_of(reps: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn per_sec(requests: usize, secs: f64) -> f64 {
    requests as f64 / secs.max(f64::MIN_POSITIVE)
}

/// Measures the naive rebuild-per-request baseline for `ops`, returning
/// its outputs (the bit-identity reference) and requests/second.
fn measure_naive(ops: &[AnyOp], reps: usize) -> (Vec<AnyOutput>, f64) {
    let outputs: Vec<AnyOutput> = ops.iter().map(execute_naive).collect();
    let secs = best_of(reps, || {
        for op in ops {
            std::hint::black_box(execute_naive(op));
        }
    });
    (outputs, per_sec(ops.len(), secs))
}

/// Measures planned batch execution of `ops` on the current worker pool:
/// asserts the planned outputs bit-identical to a sequential loop (fresh
/// engines, no shared caches), then times the cold path (construction +
/// first batch) and the warm path (every cache hot). Returns the planned
/// outputs and (cold, warm) requests/second.
fn measure_engine(ops: &[AnyOp], reps: usize) -> (Vec<AnyOutput>, f64, f64) {
    let engine = FactorEngine::new(bench_taxonomy(), bench_engine_config()).expect("valid config");
    let planned = unwrap_all(engine.run_mixed(ops));
    let sequential = unwrap_all(
        FactorEngine::new(bench_taxonomy(), bench_engine_config())
            .expect("valid config")
            .run_mixed_sequential(ops),
    );
    assert_eq!(
        planned, sequential,
        "planned batch must be bit-identical to the sequential loop"
    );

    let cold_secs = best_of(reps, || {
        let fresh =
            FactorEngine::new(bench_taxonomy(), bench_engine_config()).expect("valid config");
        std::hint::black_box(fresh.run_mixed(ops));
    });

    // `engine` already served one batch above: every cache is hot.
    let warm_reference = unwrap_all(engine.run_mixed(ops));
    assert_eq!(planned, warm_reference, "warm cache changed results");
    let warm_secs = best_of(reps, || {
        std::hint::black_box(engine.run_mixed(ops));
    });

    (
        planned,
        per_sec(ops.len(), cold_secs),
        per_sec(ops.len(), warm_secs),
    )
}

/// Measures one batch size on the **current** worker pool, verifying that
/// naive, cold-planned, warm-planned, and sequential execution all return
/// bit-identical outputs before timing them. When the pool has more than
/// one lane, the single-lane warm reference (for the efficiency column)
/// is measured by temporarily shrinking the pool, which is restored
/// before returning.
pub fn measure_batch(batch: usize, reps: usize) -> ThroughputPoint {
    let taxonomy = bench_taxonomy();
    let ops = build_ops(&taxonomy, batch);
    let threads = rayon::current_num_threads();

    let (naive, naive_per_sec) = measure_naive(&ops, reps);
    let (planned, cold_per_sec, warm_per_sec) = measure_engine(&ops, reps);
    assert_eq!(naive, planned, "engine must be bit-identical to naive path");

    let warm_single = if threads == 1 {
        warm_per_sec
    } else {
        rayon::configure_pool(1);
        let (_, _, warm_single) = measure_engine(&ops, reps);
        rayon::configure_pool(threads);
        warm_single
    };
    ThroughputPoint {
        batch,
        threads,
        naive_per_sec,
        cold_per_sec,
        warm_per_sec,
        efficiency_vs_linear: warm_per_sec / (threads as f64 * warm_single),
    }
}

/// Runs the full [`thread_grid`] × [`BATCH_SIZES`] sweep. `quick` runs
/// three repetitions per point instead of five — still best-of, because
/// a single repetition is noisy enough on a shared container to trip the
/// regression gate spuriously. Every grid point's planned outputs
/// are asserted bit-identical to sequential execution; the pool is
/// restored to its entry size before returning.
pub fn engine_throughput_points(quick: bool) -> Vec<ThroughputPoint> {
    let reps = if quick { 3 } else { 5 };
    let initial = rayon::current_num_threads();
    let taxonomy = bench_taxonomy();
    let mut points = Vec::new();
    for &batch in &BATCH_SIZES {
        let ops = build_ops(&taxonomy, batch);
        // The naive baseline has no batch planner and no parallelism:
        // measure it once per batch size on a single-lane pool.
        rayon::configure_pool(1);
        let (naive, naive_per_sec) = measure_naive(&ops, reps);
        let mut warm_single = f64::NAN;
        for &threads in &thread_grid() {
            rayon::configure_pool(threads);
            let (planned, cold_per_sec, warm_per_sec) = measure_engine(&ops, reps);
            assert_eq!(
                naive, planned,
                "grid point (threads {threads}, batch {batch}) diverged from the naive path"
            );
            if threads == 1 {
                warm_single = warm_per_sec;
            }
            points.push(ThroughputPoint {
                batch,
                threads,
                naive_per_sec,
                cold_per_sec,
                warm_per_sec,
                efficiency_vs_linear: warm_per_sec / (threads as f64 * warm_single),
            });
        }
    }
    rayon::configure_pool(initial);
    points
}

/// The telemetry section of the `BENCH_engine.json` document: a
/// [`MetricsSnapshot`] taken after the measured warm batch-64 runs, plus
/// the warm batch-64 throughput with recording on vs off — the measured
/// cost of the telemetry layer, gated at ≤ 2% (docs/OBSERVABILITY.md).
#[derive(Clone, Debug)]
pub struct MetricsReport {
    /// The engine telemetry tables after the recording-on measurement.
    pub snapshot: MetricsSnapshot,
    /// Warm batch-64 requests/second with recording enabled.
    pub warm_on_per_sec: f64,
    /// Warm batch-64 requests/second with recording disabled (under the
    /// `metrics-off` feature the switch is inert, so on ≈ off).
    pub warm_off_per_sec: f64,
}

impl MetricsReport {
    /// Fraction of warm throughput the telemetry layer costs:
    /// `1 − on/off`. Slightly negative values are measurement noise.
    pub fn overhead_fraction(&self) -> f64 {
        1.0 - self.warm_on_per_sec / self.warm_off_per_sec
    }
}

/// Measures the telemetry layer on the warm batch-64 workload: resets
/// the global tables, times the warm path best-of-reps with recording
/// on (snapshotting the tables it filled), then times the same path
/// with recording off, restoring the recording switch before returning.
pub fn collect_metrics_report(quick: bool) -> MetricsReport {
    let reps = if quick { 3 } else { 5 };
    let taxonomy = bench_taxonomy();
    let ops = build_ops(&taxonomy, 64);
    let engine = FactorEngine::new(bench_taxonomy(), bench_engine_config()).expect("valid config");
    // Two passes leave every cache hot before anything is timed.
    unwrap_all(engine.run_mixed(&ops));
    unwrap_all(engine.run_mixed(&ops));

    let was_recording = metrics::metrics_recording();
    metrics::set_metrics_recording(true);
    metrics::reset();
    let on_secs = best_of(reps, || {
        std::hint::black_box(engine.run_mixed(&ops));
    });
    let snapshot = metrics::snapshot();
    metrics::set_metrics_recording(false);
    let off_secs = best_of(reps, || {
        std::hint::black_box(engine.run_mixed(&ops));
    });
    metrics::set_metrics_recording(was_recording);
    MetricsReport {
        snapshot,
        warm_on_per_sec: per_sec(ops.len(), on_secs),
        warm_off_per_sec: per_sec(ops.len(), off_secs),
    }
}

/// Renders the sweep as the human-readable table.
pub fn engine_throughput_table(points: &[ThroughputPoint]) -> Table {
    let mut table = Table::new(
        "engine_throughput: requests/sec over the threads × batch grid (rebuild-per-request naive baseline; eff = warm ÷ threads·single-lane warm)",
        &["batch", "threads", "naive/s", "cold/s", "warm/s", "warm÷naive", "eff"],
    );
    for point in points {
        table.row(&[
            point.batch.to_string(),
            point.threads.to_string(),
            format!("{:.0}", point.naive_per_sec),
            format!("{:.0}", point.cold_per_sec),
            format!("{:.0}", point.warm_per_sec),
            format!("{:.2}x", point.speedup()),
            format!("{:.2}", point.efficiency_vs_linear),
        ]);
    }
    table
}

/// Histogram buckets with the all-zero tail trimmed — the documents
/// stay compact while bucket indices keep their meaning (index = bit
/// width of the recorded value).
fn buckets_json(buckets: &[u64]) -> JsonValue {
    let used = buckets.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
    JsonValue::Arr(
        buckets[..used]
            .iter()
            .map(|&c| JsonValue::Uint(c))
            .collect(),
    )
}

fn histogram_json(histogram: &HistogramSnapshot) -> JsonValue {
    JsonValue::obj(vec![
        ("count", JsonValue::Uint(histogram.count)),
        ("p50", JsonValue::Uint(histogram.p50)),
        ("p95", JsonValue::Uint(histogram.p95)),
        ("p99", JsonValue::Uint(histogram.p99)),
        ("buckets", buckets_json(&histogram.buckets)),
    ])
}

/// Renders a [`MetricsSnapshot`] as the `metrics` object of the
/// `BENCH_engine.json` v3 document (schema in docs/OBSERVABILITY.md).
pub fn metrics_snapshot_json(snapshot: &MetricsSnapshot) -> JsonValue {
    JsonValue::obj(vec![
        ("recording", JsonValue::Bool(snapshot.recording)),
        ("compiled_out", JsonValue::Bool(snapshot.compiled_out)),
        (
            "ops",
            JsonValue::Arr(
                snapshot
                    .ops
                    .iter()
                    .map(|op| {
                        JsonValue::obj(vec![
                            ("kind", JsonValue::Str(op.kind.name().into())),
                            ("submitted", JsonValue::Uint(op.submitted)),
                            ("completed", JsonValue::Uint(op.completed)),
                            ("failed", JsonValue::Uint(op.failed)),
                            ("p50_ns", JsonValue::Uint(op.latency_ns.p50)),
                            ("p95_ns", JsonValue::Uint(op.latency_ns.p95)),
                            ("p99_ns", JsonValue::Uint(op.latency_ns.p99)),
                            ("latency_count", JsonValue::Uint(op.latency_ns.count)),
                            ("latency_buckets", buckets_json(&op.latency_ns.buckets)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("batch_sizes", histogram_json(&snapshot.batch_sizes)),
        ("chunk_sizes", histogram_json(&snapshot.chunk_sizes)),
        (
            "stages",
            JsonValue::Arr(
                snapshot
                    .stages
                    .iter()
                    .map(|stage| {
                        JsonValue::obj(vec![
                            ("stage", JsonValue::Str(stage.stage.name().into())),
                            ("count", JsonValue::Uint(stage.count)),
                            ("total_nanos", JsonValue::Uint(stage.nanos)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "models",
            JsonValue::Arr(
                snapshot
                    .models
                    .iter()
                    .map(|model| {
                        JsonValue::obj(vec![
                            ("generation", JsonValue::Uint(model.generation)),
                            ("ops", JsonValue::Uint(model.ops)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("model_overflow", JsonValue::Uint(snapshot.model_overflow)),
    ])
}

/// Renders the sweep as the `BENCH_engine.json` document (schema v3,
/// documented in docs/SERVING.md and docs/OBSERVABILITY.md). Every
/// point records the scan kernel the engine's codebook scans dispatched
/// to, the document carries the CPU features the dispatcher saw, and
/// the `metrics` / `metrics_overhead` sections carry the telemetry
/// snapshot and its measured cost ([`collect_metrics_report`]).
pub fn engine_throughput_json(
    points: &[ThroughputPoint],
    quick: bool,
    metrics_report: &MetricsReport,
) -> String {
    let kernel = hdc::kernels::selected_kernel().name();
    let available_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    JsonValue::obj(vec![
        ("bench", JsonValue::Str("engine_throughput".into())),
        ("schema_version", JsonValue::Uint(3)),
        ("quick", JsonValue::Bool(quick)),
        ("unit", JsonValue::Str("requests_per_second".into())),
        ("cpu_features", JsonValue::Str(hdc::kernels::cpu_features())),
        ("available_cores", JsonValue::Uint(available_cores as u64)),
        (
            "points",
            JsonValue::Arr(
                points
                    .iter()
                    .map(|p| {
                        JsonValue::obj(vec![
                            ("batch", JsonValue::Uint(p.batch as u64)),
                            ("threads", JsonValue::Uint(p.threads as u64)),
                            ("kernel", JsonValue::Str(kernel.into())),
                            ("naive_per_sec", JsonValue::Num(p.naive_per_sec)),
                            ("cold_per_sec", JsonValue::Num(p.cold_per_sec)),
                            ("warm_per_sec", JsonValue::Num(p.warm_per_sec)),
                            ("warm_over_naive", JsonValue::Num(p.speedup())),
                            (
                                "efficiency_vs_linear",
                                JsonValue::Num(p.efficiency_vs_linear),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("metrics", metrics_snapshot_json(&metrics_report.snapshot)),
        (
            "metrics_overhead",
            JsonValue::obj(vec![
                (
                    "warm_on_per_sec",
                    JsonValue::Num(metrics_report.warm_on_per_sec),
                ),
                (
                    "warm_off_per_sec",
                    JsonValue::Num(metrics_report.warm_off_per_sec),
                ),
                (
                    "overhead_fraction",
                    JsonValue::Num(metrics_report.overhead_fraction()),
                ),
            ]),
        ),
    ])
    .render()
}

/// Verifies the artifact acceptance criterion: save → load → factorize is
/// bit-identical to serving from the in-memory model. Returns the number
/// of compared outputs.
pub fn verify_artifact_round_trip() -> usize {
    let engine = FactorEngine::new(bench_taxonomy(), bench_engine_config()).expect("valid config");
    let ops = build_ops(engine.taxonomy(), 64);
    let mut bytes = Vec::new();
    engine.save_to(&mut bytes).expect("artifact serializes");
    let restored = FactorEngine::load_from(&mut &bytes[..], bench_engine_config())
        .expect("artifact deserializes");
    let original = unwrap_all(engine.run_mixed(&ops));
    let roundtripped = unwrap_all(restored.run_mixed(&ops));
    assert_eq!(
        original, roundtripped,
        "artifact round trip must serve bit-identically"
    );
    original.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let taxonomy = bench_taxonomy();
        assert_eq!(build_ops(&taxonomy, 16), build_ops(&taxonomy, 16));
    }

    #[test]
    fn small_batch_modes_agree_and_speed_up() {
        let point = measure_batch(8, 1);
        assert_eq!(point.batch, 8);
        assert!(point.threads >= 1);
        assert!(point.naive_per_sec > 0.0);
        assert!(point.warm_per_sec > 0.0);
        assert!(point.efficiency_vs_linear > 0.0);
    }

    #[test]
    fn thread_grid_is_sorted_deduped_and_starts_at_one() {
        let grid = thread_grid();
        assert_eq!(grid[0], 1, "single-lane reference row must come first");
        assert!(grid.windows(2).all(|w| w[0] < w[1]), "sorted, no repeats");
        assert!(grid.contains(&rayon::env_num_threads()));
    }

    #[test]
    fn artifact_round_trip_is_bit_identical() {
        assert_eq!(verify_artifact_round_trip(), 64);
    }

    /// A deterministic synthetic report (the real one is measured, so
    /// its numbers cannot be asserted on).
    fn synthetic_metrics_report() -> MetricsReport {
        use factorhd_engine::metrics::{ModelMetrics, OpKindMetrics, Stage, StageTotal};
        use factorhd_engine::OpKind;
        let mut latency_buckets = vec![0u64; metrics::HISTOGRAM_BUCKETS];
        latency_buckets[11] = 90; // ~1–2 µs
        latency_buckets[14] = 10; // ~8–16 µs
        let histogram = |buckets: Vec<u64>| {
            let count = buckets.iter().sum();
            HistogramSnapshot {
                count,
                buckets,
                p50: 2047,
                p95: 16383,
                p99: 16383,
            }
        };
        MetricsReport {
            snapshot: MetricsSnapshot {
                recording: true,
                compiled_out: false,
                ops: vec![OpKindMetrics {
                    kind: OpKind::Rep2,
                    submitted: 100,
                    completed: 99,
                    failed: 1,
                    latency_ns: histogram(latency_buckets),
                }],
                batch_sizes: histogram(vec![0, 0, 0, 0, 0, 0, 0, 5]),
                chunk_sizes: histogram(vec![0, 0, 0, 0, 0, 20]),
                stages: vec![StageTotal {
                    stage: Stage::Scan,
                    count: 40,
                    nanos: 123456,
                }],
                models: vec![ModelMetrics {
                    generation: 0,
                    ops: 99,
                    train_ops: 0,
                    classify_ops: 0,
                }],
                model_overflow: 0,
                retrain_epochs: histogram(vec![0; 5]),
            },
            warm_on_per_sec: 980.0,
            warm_off_per_sec: 1000.0,
        }
    }

    #[test]
    fn json_document_has_the_documented_shape() {
        let points = [ThroughputPoint {
            batch: 64,
            threads: 2,
            naive_per_sec: 100.0,
            cold_per_sec: 200.0,
            warm_per_sec: 300.0,
            efficiency_vs_linear: 0.75,
        }];
        let doc = engine_throughput_json(&points, true, &synthetic_metrics_report());
        for needle in [
            r#""bench":"engine_throughput""#,
            r#""schema_version":3"#,
            r#""quick":true"#,
            r#""cpu_features":"#,
            r#""available_cores":"#,
            r#""batch":64"#,
            r#""threads":2"#,
            r#""kernel":"#,
            r#""warm_per_sec":300"#,
            r#""warm_over_naive":3"#,
            r#""efficiency_vs_linear":0.75"#,
            // The v3 telemetry sections.
            r#""metrics":{"recording":true,"compiled_out":false"#,
            r#""kind":"rep2","submitted":100,"completed":99,"failed":1"#,
            r#""p50_ns":2047,"p95_ns":16383,"p99_ns":16383,"latency_count":100"#,
            r#""batch_sizes":{"count":5"#,
            r#""chunk_sizes":{"count":20"#,
            r#""stages":[{"stage":"scan","count":40,"total_nanos":123456}]"#,
            r#""models":[{"generation":0,"ops":99}]"#,
            r#""model_overflow":0"#,
            r#""metrics_overhead":{"warm_on_per_sec":980,"warm_off_per_sec":1000,"overhead_fraction":"#,
        ] {
            assert!(doc.contains(needle), "{needle} missing from {doc}");
        }
        // The document round-trips through the parser the gate uses, and
        // the bucket tail is trimmed (bucket 14 is the last non-zero).
        let parsed = JsonValue::parse(&doc).expect("emitted document parses");
        let op = parsed
            .get("metrics")
            .unwrap()
            .get("ops")
            .unwrap()
            .as_array()
            .unwrap()[0]
            .clone();
        assert_eq!(
            op.get("latency_buckets").unwrap().as_array().unwrap().len(),
            15
        );
    }

    #[test]
    fn metrics_report_measures_the_warm_batch64_workload() {
        let report = collect_metrics_report(true);
        assert!(report.warm_on_per_sec > 0.0);
        assert!(report.warm_off_per_sec > 0.0);
        if metrics::metrics_compiled_out() {
            assert!(report.snapshot.compiled_out);
            return;
        }
        // 3 best-of reps of a 64-op batch were recorded after the reset.
        // The tables are process-global and sibling tests run engines on
        // other threads concurrently, so assert lower bounds only.
        assert!(report.snapshot.batch_sizes.count >= 3);
        let submitted: u64 = report.snapshot.ops.iter().map(|op| op.submitted).sum();
        assert!(submitted >= 3 * 64, "submitted {submitted}");
        let scans = report
            .snapshot
            .stages
            .iter()
            .find(|s| s.stage == factorhd_engine::metrics::Stage::Scan)
            .expect("scan stage present");
        assert!(scans.count > 0, "warm batches must cross the scan stage");
    }
}
