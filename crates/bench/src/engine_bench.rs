//! Serving-engine throughput: batched warm-cache execution vs the naive
//! per-request rebuild the engine replaces.
//!
//! Three modes run the *same* deterministic typed-op stream:
//!
//! * **naive/s** — the pre-engine calling pattern: every op rebuilds
//!   the taxonomy (labels, codebooks, clauses re-derived from the seed)
//!   and a fresh model state (label-elimination masks re-bound), then
//!   runs sequentially.
//! * **cold/s** — a freshly constructed [`FactorEngine`] planning the
//!   batch once (masks pre-built; codebook/clause/reconstruction caches
//!   filling as it goes).
//! * **warm/s** — the same engine planning the batch again with every
//!   cache hot.
//!
//! All three produce bit-identical outputs; the table reports requests
//! per second and the warm÷naive speedup, and
//! [`engine_throughput_json`] renders the same points as the
//! machine-readable `BENCH_engine.json` (schema in docs/SERVING.md).

use crate::json::JsonValue;
use crate::Table;
use factorhd_core::{Encoder, FactorizeConfig, Scene, Taxonomy, TaxonomyBuilder, ThresholdPolicy};
use factorhd_engine::{
    AnyOp, AnyOutput, EncodeScene, EngineConfig, FactorEngine, FactorizeRep2, FactorizeRep3,
    MembershipProbe, PartialDecode,
};
use hdc::derive_seed;
use std::time::Instant;

const DIM: usize = 2048;
const MODEL_SEED: u64 = 0x5E21_D0DE;
const WORKLOAD_SEED: u64 = 0xBA7C_4ED5;
/// Distinct objects in the simulated catalog; requests draw from this
/// pool the way production traffic revisits a finite item population.
const CATALOG: usize = 32;
/// The batch sizes the sweep measures.
pub const BATCH_SIZES: [usize; 4] = [1, 8, 64, 512];

/// The benchmark's model: one hierarchical class plus two flat ones.
pub fn bench_taxonomy() -> Taxonomy {
    TaxonomyBuilder::new(DIM)
        .seed(MODEL_SEED)
        .class("animal", &[16, 8])
        .class("color", &[16])
        .class("size", &[16])
        .build()
        .expect("valid taxonomy")
}

fn bench_factorize_config() -> FactorizeConfig {
    FactorizeConfig {
        threshold: ThresholdPolicy::Analytic { n_objects: 2 },
        ..FactorizeConfig::default()
    }
}

/// The benchmark's engine configuration.
pub fn bench_engine_config() -> EngineConfig {
    EngineConfig {
        factorize: bench_factorize_config(),
        ..EngineConfig::default()
    }
}

/// Builds the deterministic mixed typed-op stream for one batch size:
/// single-object factorizations (the bulk), multi-object Rep-3 scenes,
/// partial factorizations, membership probes, and scene encodes.
pub fn build_ops(taxonomy: &Taxonomy, batch: usize) -> Vec<AnyOp> {
    let encoder = Encoder::new(taxonomy);
    let mut rng = hdc::rng_from_seed(derive_seed(&[WORKLOAD_SEED, 1]));
    let catalog: Vec<_> = (0..CATALOG)
        .map(|_| taxonomy.sample_object(&mut rng))
        .collect();
    let mut rng = hdc::rng_from_seed(derive_seed(&[WORKLOAD_SEED, batch as u64]));
    (0..batch)
        .map(|i| {
            let object = catalog[(i * 7 + i / 3) % CATALOG].clone();
            match i % 8 {
                0 => {
                    let other = catalog[(i * 5 + 1) % CATALOG].clone();
                    let scene = Scene::new(vec![object, other]);
                    AnyOp::Rep3(FactorizeRep3 {
                        scene: encoder.encode_scene(&scene).expect("encodable"),
                    })
                }
                5 => AnyOp::Partial(PartialDecode {
                    scene: encoder
                        .encode_scene(&Scene::single(object))
                        .expect("encodable"),
                    classes: vec![1],
                }),
                6 => AnyOp::Membership(MembershipProbe {
                    scene: encoder
                        .encode_scene(&Scene::single(object.clone()))
                        .expect("encodable"),
                    items: vec![(1, object.assignment(1).expect("present").clone())],
                    absent: vec![],
                }),
                7 => {
                    let fresh = taxonomy.sample_object(&mut rng);
                    AnyOp::Encode(EncodeScene {
                        scene: Scene::new(vec![object, fresh]),
                    })
                }
                _ => AnyOp::Rep2(FactorizeRep2 {
                    scene: encoder
                        .encode_scene(&Scene::single(object))
                        .expect("encodable"),
                }),
            }
        })
        .collect()
}

/// Executes one op the pre-engine way: rebuild the taxonomy (labels,
/// codebooks, clauses all re-derived) and the label-elimination masks
/// from scratch, then serve the single op and throw everything away.
/// A throwaway one-op engine *is* that calling pattern — and routing
/// through [`FactorEngine::run`] keeps the dispatch semantics defined in
/// exactly one place.
fn execute_naive(op: &AnyOp) -> AnyOutput {
    FactorEngine::new(bench_taxonomy(), bench_engine_config())
        .expect("valid config")
        .run(op)
        .expect("op succeeds")
}

fn unwrap_all(results: Vec<Result<AnyOutput, factorhd_engine::EngineError>>) -> Vec<AnyOutput> {
    results
        .into_iter()
        .map(|r| r.expect("op succeeds"))
        .collect()
}

/// One measured row of the throughput table.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPoint {
    /// Requests per batch.
    pub batch: usize,
    /// Naive sequential cold-path requests/second.
    pub naive_per_sec: f64,
    /// Cold-engine batched requests/second.
    pub cold_per_sec: f64,
    /// Warm-engine batched requests/second.
    pub warm_per_sec: f64,
}

impl ThroughputPoint {
    /// Warm-cache speedup over the naive baseline.
    pub fn speedup(&self) -> f64 {
        self.warm_per_sec / self.naive_per_sec
    }
}

/// Measures one batch size, verifying that all three execution modes
/// return bit-identical outputs before timing them.
pub fn measure_batch(batch: usize, reps: usize) -> ThroughputPoint {
    let taxonomy = bench_taxonomy();
    let ops = build_ops(&taxonomy, batch);

    let engine = FactorEngine::new(bench_taxonomy(), bench_engine_config()).expect("valid config");
    // Correctness first: naive, cold-planned, and warm-planned agree.
    let naive: Vec<AnyOutput> = ops.iter().map(execute_naive).collect();
    let cold = unwrap_all(engine.run_mixed(&ops));
    assert_eq!(naive, cold, "engine must be bit-identical to naive path");

    // Timed naive baseline (sequential, rebuild per op).
    let reps = reps.max(1);
    let start = Instant::now();
    for _ in 0..reps {
        for op in &ops {
            std::hint::black_box(execute_naive(op));
        }
    }
    let naive_secs = start.elapsed().as_secs_f64() / reps as f64;

    // Timed cold engine: construction + first planned batch, fresh each
    // rep.
    let start = Instant::now();
    for _ in 0..reps {
        let fresh =
            FactorEngine::new(bench_taxonomy(), bench_engine_config()).expect("valid config");
        std::hint::black_box(fresh.run_mixed(&ops));
    }
    let cold_secs = start.elapsed().as_secs_f64() / reps as f64;

    // Timed warm engine: every cache already hot.
    let warm_reference = unwrap_all(engine.run_mixed(&ops));
    assert_eq!(cold, warm_reference, "warm cache changed results");
    let start = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(engine.run_mixed(&ops));
    }
    let warm_secs = start.elapsed().as_secs_f64() / reps as f64;

    let per_sec = |secs: f64| batch as f64 / secs.max(f64::MIN_POSITIVE);
    ThroughputPoint {
        batch,
        naive_per_sec: per_sec(naive_secs),
        cold_per_sec: per_sec(cold_secs),
        warm_per_sec: per_sec(warm_secs),
    }
}

/// Runs the full sweep over [`BATCH_SIZES`]. `quick` runs one repetition
/// per point instead of three.
pub fn engine_throughput_points(quick: bool) -> Vec<ThroughputPoint> {
    let reps = if quick { 1 } else { 3 };
    BATCH_SIZES
        .iter()
        .map(|&batch| measure_batch(batch, reps))
        .collect()
}

/// Renders the sweep as the human-readable table.
pub fn engine_throughput_table(points: &[ThroughputPoint]) -> Table {
    let mut table = Table::new(
        "engine_throughput: requests/sec, cold vs warm cache (1 rebuild-per-request naive baseline)",
        &["batch", "naive/s", "cold/s", "warm/s", "warm÷naive"],
    );
    for point in points {
        table.row(&[
            point.batch.to_string(),
            format!("{:.0}", point.naive_per_sec),
            format!("{:.0}", point.cold_per_sec),
            format!("{:.0}", point.warm_per_sec),
            format!("{:.2}x", point.speedup()),
        ]);
    }
    table
}

/// Renders the sweep as the `BENCH_engine.json` document (schema
/// documented in docs/SERVING.md). Every point records the scan kernel
/// the engine's codebook scans dispatched to, and the document carries
/// the CPU features the dispatcher saw.
pub fn engine_throughput_json(points: &[ThroughputPoint], quick: bool) -> String {
    let kernel = hdc::kernels::selected_kernel().name();
    JsonValue::obj(vec![
        ("bench", JsonValue::Str("engine_throughput".into())),
        ("schema_version", JsonValue::Uint(1)),
        ("quick", JsonValue::Bool(quick)),
        ("unit", JsonValue::Str("requests_per_second".into())),
        ("cpu_features", JsonValue::Str(hdc::kernels::cpu_features())),
        (
            "points",
            JsonValue::Arr(
                points
                    .iter()
                    .map(|p| {
                        JsonValue::obj(vec![
                            ("batch", JsonValue::Uint(p.batch as u64)),
                            ("kernel", JsonValue::Str(kernel.into())),
                            ("naive_per_sec", JsonValue::Num(p.naive_per_sec)),
                            ("cold_per_sec", JsonValue::Num(p.cold_per_sec)),
                            ("warm_per_sec", JsonValue::Num(p.warm_per_sec)),
                            ("warm_over_naive", JsonValue::Num(p.speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .render()
}

/// Verifies the artifact acceptance criterion: save → load → factorize is
/// bit-identical to serving from the in-memory model. Returns the number
/// of compared outputs.
pub fn verify_artifact_round_trip() -> usize {
    let engine = FactorEngine::new(bench_taxonomy(), bench_engine_config()).expect("valid config");
    let ops = build_ops(engine.taxonomy(), 64);
    let mut bytes = Vec::new();
    engine.save_to(&mut bytes).expect("artifact serializes");
    let restored = FactorEngine::load_from(&mut &bytes[..], bench_engine_config())
        .expect("artifact deserializes");
    let original = unwrap_all(engine.run_mixed(&ops));
    let roundtripped = unwrap_all(restored.run_mixed(&ops));
    assert_eq!(
        original, roundtripped,
        "artifact round trip must serve bit-identically"
    );
    original.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        let taxonomy = bench_taxonomy();
        assert_eq!(build_ops(&taxonomy, 16), build_ops(&taxonomy, 16));
    }

    #[test]
    fn small_batch_modes_agree_and_speed_up() {
        let point = measure_batch(8, 1);
        assert_eq!(point.batch, 8);
        assert!(point.naive_per_sec > 0.0);
        assert!(point.warm_per_sec > 0.0);
    }

    #[test]
    fn artifact_round_trip_is_bit_identical() {
        assert_eq!(verify_artifact_round_trip(), 64);
    }

    #[test]
    fn json_document_has_the_documented_shape() {
        let points = [ThroughputPoint {
            batch: 64,
            naive_per_sec: 100.0,
            cold_per_sec: 200.0,
            warm_per_sec: 300.0,
        }];
        let doc = engine_throughput_json(&points, true);
        for needle in [
            r#""bench":"engine_throughput""#,
            r#""schema_version":1"#,
            r#""quick":true"#,
            r#""cpu_features":"#,
            r#""batch":64"#,
            r#""kernel":"#,
            r#""warm_per_sec":300"#,
            r#""warm_over_naive":3"#,
        ] {
            assert!(doc.contains(needle), "{needle} missing from {doc}");
        }
    }
}
