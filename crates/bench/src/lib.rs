//! # factorhd-bench — the experiment harness
//!
//! Shared infrastructure for regenerating every table and figure of the
//! FactorHD paper: trial runners for each method (FactorHD Rep 1–3, the
//! resonator network, the IMC factorizer, the C-I model), wall-clock and
//! operation accounting, a TH-sweep driver, and plain-text table/CSV
//! output. The `src/bin/*` binaries print the paper's series; the
//! `benches/*` Criterion targets track the same workloads at reduced sizes.
//!
//! Trials run data-parallel with `rayon`, standing in for the paper's
//! batched GPU execution (DESIGN.md, substitution table).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine_bench;
pub mod gate;
pub mod json;
pub mod kernel_bench;
pub mod learn_bench;
pub mod packed_bench;
pub mod runner;
pub mod serving_bench;
pub mod table;

pub use engine_bench::{
    collect_metrics_report, engine_throughput_json, engine_throughput_points,
    engine_throughput_table, measure_batch, metrics_snapshot_json, thread_grid,
    verify_artifact_round_trip, MetricsReport, ThroughputPoint,
};
pub use gate::{
    gate_documents, gate_texts, GateOutcome, CLIFF_MARGIN, DEFAULT_GATE_MARGIN, SERVING_FLOOR,
};
pub use json::JsonValue;
pub use kernel_bench::{
    kernel_bench_json, kernel_bench_table, kernel_points, measure_kernel,
    verify_kernel_equivalence, KernelPoint,
};
pub use learn_bench::{
    learn_json, learn_points, learn_table, EpochPoint, LearnPoint, LearnReport, DIM_GRID,
    LEARN_CLASSES,
};
pub use packed_bench::{
    measure_scan, packed_scan_json, packed_scan_points, packed_scan_table,
    verify_packed_equivalence, ScanPoint,
};
pub use runner::{
    run_ci_model, run_factorhd_rep1, run_factorhd_rep23, run_imc, run_resonator, th_sweep,
    MethodResult, Rep23Setting, SweepPoint,
};
pub use serving_bench::{
    overload_table, serving_json, serving_points, serving_table, OverloadPoint, ServingPoint,
    ServingReport, CLIENT_GRID, PIPELINE_GRID,
};
pub use table::Table;

/// Returns `true` when the binary was invoked with `--quick` (reduced trial
/// counts for smoke runs) and the trial count to use.
pub fn parse_quick(default_trials: usize, quick_trials: usize) -> (bool, usize) {
    let quick = std::env::args().any(|a| a == "--quick");
    if quick {
        (true, quick_trials)
    } else {
        (false, default_trials)
    }
}
