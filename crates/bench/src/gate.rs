//! The SLO regression gate: diffs current `BENCH_*.json` documents
//! against committed baselines and fails on throughput regressions and
//! latency-tail inflation.
//!
//! This is the **single** gating code path — the `bench_gate` bin runs
//! it in CI after the bench smoke runs regenerate the current documents
//! (the per-bench bins only measure and emit; they no longer carry their
//! own threshold flags). Three document families are understood, keyed
//! by their `bench` field:
//!
//! * `engine_throughput` — per-(batch, threads) `warm_per_sec` must hold
//!   within the margin of baseline; the current grid must also pass the
//!   **scaling-cliff** check ([`CLIFF_MARGIN`]: warm batch-512 ≥ 0.9 ×
//!   warm batch-64 at every thread count — the historical batch-512
//!   rollover, re-encoded as a failure); and per-op-kind `p95_ns` from
//!   the embedded metrics section must not inflate past one histogram
//!   bucket of slack (see `p95_limit`).
//! * `packed_scan` — per-(dim, items, shards) `packed_per_sec`.
//! * `kernels` — per-(kernel, words) `hamming_per_sec`.
//! * `serving` — per-(clients, pipeline) `throughput_per_sec` for the
//!   network front end; the current document's top-line
//!   `serving_fraction` (best ≥ 8-client loopback throughput ÷ direct
//!   warm batch-64) must also hold above [`SERVING_FLOOR`] — an
//!   absolute SLO, not a diff — and per-point end-to-end `p95_ns` gets
//!   the same one-bucket-of-slack ceiling as the engine op latencies
//!   (skipped when either run had the metrics gate off).
//! * `learn` — per-dim `train_per_sec` and `classify_per_sec` for the
//!   online-learning subsystem, classify `classify_p95_ns` under the
//!   one-doubling-of-slack ceiling, and the CIFAR `final_accuracy`
//!   held within [`ACCURACY_SLACK`] of the baseline's.
//!
//! Baseline points with no matching current point are **skipped with a
//! note**, not failed — the grid legitimately varies with core count and
//! ISA availability — but a gate that matched *zero* points fails, so a
//! renamed field or emptied grid cannot pass vacuously.

use crate::json::JsonValue;

/// Margin the scaling-cliff check allows for run-to-run noise: warm
/// batch-512 must reach at least this fraction of warm batch-64. The
/// rollover this guards against was an ≈18% drop; a 10% allowance
/// catches that class of regression without tripping on scheduler noise.
pub const CLIFF_MARGIN: f64 = 0.9;

/// Default fraction of baseline throughput a current run may lose before
/// the gate fails (and the fractional p95 allowance on top of the
/// one-bucket slack).
pub const DEFAULT_GATE_MARGIN: f64 = 0.15;

/// Minimum fraction of the direct warm batch-64 throughput the network
/// front end must sustain at ≥ 8 concurrent clients. Below this, the
/// serving layer's per-request overhead (framing, checksums, batching,
/// scatter) is eating more than a fifth of the engine — an absolute
/// serving SLO, checked against the **current** document rather than
/// diffed against the baseline.
pub const SERVING_FLOOR: f64 = 0.8;

/// Minimum fraction of the *cooperative* throughput the overload
/// point's **admitted** requests must sustain at ≈4× offered load.
/// Load shedding exists to protect the engine's useful work: a server
/// that sheds is fine, a server whose admitted throughput collapses
/// while shedding is prioritizing refusals over service
/// (docs/ROBUSTNESS.md, "Overload behavior under measurement").
pub const SERVING_OVERLOAD_FLOOR: f64 = 0.8;

/// Absolute accuracy loss the learning gate tolerates on the CIFAR
/// retraining curve's final held-out accuracy. The simulated front end
/// and the prototype updates are seeded, so run-to-run variation is
/// zero on one build; the slack absorbs legitimate cross-platform
/// float-ordering differences without letting a real learning
/// regression (a broken update rule classifies near chance, an ~0.8
/// drop) through.
pub const ACCURACY_SLACK: f64 = 0.05;

/// The result of gating one current document against its baseline.
#[derive(Debug)]
pub struct GateOutcome {
    /// The document family (`bench` field) that was gated.
    pub bench: String,
    /// Number of comparisons actually performed.
    pub checks: usize,
    /// Human-readable failure descriptions; empty means the gate passed.
    pub failures: Vec<String>,
    /// Non-fatal observations (skipped points, absent metrics sections).
    pub notes: Vec<String>,
}

impl GateOutcome {
    fn new(bench: &str) -> Self {
        GateOutcome {
            bench: bench.to_owned(),
            checks: 0,
            failures: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Whether every performed check held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Parses and gates a (current, baseline) document pair; parse errors
/// come back as gate failures so the bin treats corrupt artifacts as
/// regressions rather than silently passing.
pub fn gate_texts(current: &str, baseline: &str, margin: f64) -> GateOutcome {
    let mut outcome = GateOutcome::new("unparsed");
    let current = match JsonValue::parse(current) {
        Ok(doc) => doc,
        Err(e) => {
            outcome.failures.push(format!("current document: {e}"));
            return outcome;
        }
    };
    let baseline = match JsonValue::parse(baseline) {
        Ok(doc) => doc,
        Err(e) => {
            outcome.failures.push(format!("baseline document: {e}"));
            return outcome;
        }
    };
    gate_documents(&current, &baseline, margin)
}

/// Gates a parsed current document against its parsed baseline,
/// dispatching on the baseline's `bench` field.
pub fn gate_documents(current: &JsonValue, baseline: &JsonValue, margin: f64) -> GateOutcome {
    let bench = baseline
        .get("bench")
        .and_then(JsonValue::as_str)
        .unwrap_or("");
    let mut outcome = GateOutcome::new(bench);
    let current_bench = current
        .get("bench")
        .and_then(JsonValue::as_str)
        .unwrap_or("");
    if current_bench != bench {
        outcome.failures.push(format!(
            "bench mismatch: current is {current_bench:?}, baseline is {bench:?}"
        ));
        return outcome;
    }
    match bench {
        "engine_throughput" => {
            throughput_checks(
                current,
                baseline,
                &["batch", "threads"],
                "warm_per_sec",
                margin,
                &mut outcome,
            );
            scaling_cliff_check(current, &mut outcome);
            p95_checks(current, baseline, margin, &mut outcome);
        }
        "packed_scan" => throughput_checks(
            current,
            baseline,
            &["dim", "items", "shards"],
            "packed_per_sec",
            margin,
            &mut outcome,
        ),
        "kernels" => throughput_checks(
            current,
            baseline,
            &["kernel", "words"],
            "hamming_per_sec",
            margin,
            &mut outcome,
        ),
        "serving" => {
            throughput_checks(
                current,
                baseline,
                &["clients", "pipeline"],
                "throughput_per_sec",
                margin,
                &mut outcome,
            );
            serving_floor_check(current, &mut outcome);
            serving_p95_checks(current, baseline, margin, &mut outcome);
            serving_overload_checks(current, baseline, margin, &mut outcome);
        }
        "learn" => {
            throughput_checks(
                current,
                baseline,
                &["dim"],
                "train_per_sec",
                margin,
                &mut outcome,
            );
            throughput_checks(
                current,
                baseline,
                &["dim"],
                "classify_per_sec",
                margin,
                &mut outcome,
            );
            learn_p95_checks(current, baseline, margin, &mut outcome);
            learn_accuracy_check(current, baseline, &mut outcome);
        }
        other => outcome
            .failures
            .push(format!("unknown bench family {other:?}")),
    }
    outcome
}

/// A baseline point's identity: its key fields, rendered. `None` when a
/// key field is missing (the point cannot be matched).
fn point_key(point: &JsonValue, key_fields: &[&str]) -> Option<String> {
    let mut key = String::new();
    for field in key_fields {
        let value = point.get(field)?;
        key.push_str(&format!("{field}={} ", value.render()));
    }
    Some(key.trim_end().to_owned())
}

fn points_of(doc: &JsonValue) -> &[JsonValue] {
    doc.get("points")
        .and_then(JsonValue::as_array)
        .unwrap_or(&[])
}

/// Per-point throughput comparison: every baseline point with a matching
/// current point (same key fields) must hold `rate_field` within
/// `margin` of baseline; unmatched baseline points are noted, and a gate
/// that matched nothing fails.
fn throughput_checks(
    current: &JsonValue,
    baseline: &JsonValue,
    key_fields: &[&str],
    rate_field: &str,
    margin: f64,
    outcome: &mut GateOutcome,
) {
    let current_points = points_of(current);
    for base_point in points_of(baseline) {
        let Some(key) = point_key(base_point, key_fields) else {
            outcome
                .failures
                .push(format!("baseline point missing key fields {key_fields:?}"));
            continue;
        };
        let Some(base_rate) = base_point.get(rate_field).and_then(JsonValue::as_f64) else {
            outcome
                .failures
                .push(format!("baseline point [{key}] has no {rate_field}"));
            continue;
        };
        let matched = current_points
            .iter()
            .find(|p| point_key(p, key_fields).as_deref() == Some(&key));
        let Some(current_point) = matched else {
            outcome
                .notes
                .push(format!("[{key}] absent from current run; skipped"));
            continue;
        };
        let Some(current_rate) = current_point.get(rate_field).and_then(JsonValue::as_f64) else {
            outcome
                .failures
                .push(format!("current point [{key}] has no {rate_field}"));
            continue;
        };
        outcome.checks += 1;
        let floor = (1.0 - margin) * base_rate;
        if current_rate < floor {
            outcome.failures.push(format!(
                "[{key}] {rate_field} regressed: {current_rate:.0}/s vs baseline \
                 {base_rate:.0}/s (floor {floor:.0}/s at margin {margin})"
            ));
        }
    }
    if outcome.checks == 0 && outcome.failures.is_empty() {
        outcome.failures.push(format!(
            "no baseline point matched the current run (key fields {key_fields:?})"
        ));
    }
}

/// One parsed engine grid row, as much of it as the cliff check needs.
struct EnginePoint {
    batch: u64,
    threads: u64,
    warm_per_sec: f64,
}

fn engine_points(doc: &JsonValue) -> Vec<EnginePoint> {
    points_of(doc)
        .iter()
        .filter_map(|p| {
            Some(EnginePoint {
                batch: p.get("batch").and_then(JsonValue::as_u64)?,
                threads: p.get("threads").and_then(JsonValue::as_u64)?,
                warm_per_sec: p.get("warm_per_sec").and_then(JsonValue::as_f64)?,
            })
        })
        .collect()
}

/// The scaling-cliff check on the **current** grid: at every measured
/// thread count, warm batch-512 throughput must reach at least
/// [`CLIFF_MARGIN`] × warm batch-64 throughput — the batch-512 rollover,
/// re-encoded as a failure. A grid with no batch-512 rows (or a
/// batch-512 row with no batch-64 partner) fails rather than passing
/// vacuously.
fn scaling_cliff_check(current: &JsonValue, outcome: &mut GateOutcome) {
    let points = engine_points(current);
    let mut checked = 0usize;
    for p512 in points.iter().filter(|p| p.batch == 512) {
        let Some(p64) = points
            .iter()
            .find(|p| p.batch == 64 && p.threads == p512.threads)
        else {
            outcome.failures.push(format!(
                "cliff: no batch-64 row at {} threads",
                p512.threads
            ));
            continue;
        };
        outcome.checks += 1;
        checked += 1;
        if p512.warm_per_sec < CLIFF_MARGIN * p64.warm_per_sec {
            outcome.failures.push(format!(
                "cliff: warm batch-512 ({:.0}/s) fell below {CLIFF_MARGIN} × warm batch-64 \
                 ({:.0}/s) at {} threads — the batch-512 rollover is back",
                p512.warm_per_sec, p64.warm_per_sec, p512.threads
            ));
        }
    }
    if checked == 0 {
        outcome
            .failures
            .push("cliff: no batch-512 rows to check".to_owned());
    }
}

/// The p95 ceiling for a baseline value: one histogram bucket of slack
/// plus the fractional margin. The log2 latency histograms quantize
/// quantiles to bucket upper bounds (powers of two), so a value sitting
/// near a bucket edge legitimately flips one bucket (2×) between runs;
/// **two** buckets is a genuine tail regression, and that is what this
/// ceiling fails.
fn p95_limit(baseline_p95: u64, margin: f64) -> f64 {
    baseline_p95 as f64 * 2.0 * (1.0 + margin)
}

/// Per-op-kind p95 latency comparison over the embedded `metrics`
/// sections. Skipped (with a note) when either document has no metrics
/// or the current build compiled the telemetry layer out; an op kind
/// that had latency samples in the baseline but none in the current run
/// fails, since that means the instrumentation went missing.
fn p95_checks(current: &JsonValue, baseline: &JsonValue, margin: f64, outcome: &mut GateOutcome) {
    let Some(base_metrics) = baseline.get("metrics") else {
        outcome
            .notes
            .push("baseline has no metrics section; p95 checks skipped".to_owned());
        return;
    };
    let Some(current_metrics) = current.get("metrics") else {
        outcome
            .notes
            .push("current run has no metrics section; p95 checks skipped".to_owned());
        return;
    };
    if current_metrics
        .get("compiled_out")
        .and_then(JsonValue::as_bool)
        == Some(true)
    {
        outcome
            .notes
            .push("current build compiled metrics out; p95 checks skipped".to_owned());
        return;
    }
    let base_ops = base_metrics.get("ops").and_then(JsonValue::as_array);
    let current_ops = current_metrics.get("ops").and_then(JsonValue::as_array);
    let (Some(base_ops), Some(current_ops)) = (base_ops, current_ops) else {
        outcome
            .failures
            .push("metrics section has no ops array".to_owned());
        return;
    };
    for base_op in base_ops {
        let kind = base_op
            .get("kind")
            .and_then(JsonValue::as_str)
            .unwrap_or("?");
        let base_count = base_op
            .get("latency_count")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        let base_p95 = base_op
            .get("p95_ns")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        if base_count == 0 || base_p95 == 0 {
            continue;
        }
        let matched = current_ops
            .iter()
            .find(|op| op.get("kind").and_then(JsonValue::as_str) == Some(kind));
        let Some(current_op) = matched else {
            outcome
                .failures
                .push(format!("p95: op kind {kind:?} absent from current metrics"));
            continue;
        };
        let current_count = current_op
            .get("latency_count")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        let Some(current_p95) = current_op.get("p95_ns").and_then(JsonValue::as_u64) else {
            outcome
                .failures
                .push(format!("p95: op kind {kind:?} has no p95_ns"));
            continue;
        };
        outcome.checks += 1;
        if current_count == 0 {
            outcome.failures.push(format!(
                "p95: op kind {kind:?} recorded no latency samples (baseline had {base_count}) \
                 — instrumentation went missing"
            ));
            continue;
        }
        let limit = p95_limit(base_p95, margin);
        if current_p95 as f64 > limit {
            outcome.failures.push(format!(
                "p95: op kind {kind:?} inflated to {current_p95}ns vs baseline {base_p95}ns \
                 (ceiling {limit:.0}ns = one bucket + margin {margin})"
            ));
        }
    }
}

/// The absolute serving SLO on the **current** document: its
/// `serving_fraction` (best ≥ 8-client loopback throughput as a
/// fraction of the in-run direct warm batch-64 reference) must reach
/// [`SERVING_FLOOR`]. A document without the field fails rather than
/// passing vacuously.
fn serving_floor_check(current: &JsonValue, outcome: &mut GateOutcome) {
    let Some(fraction) = current.get("serving_fraction").and_then(JsonValue::as_f64) else {
        outcome
            .failures
            .push("serving: current document has no serving_fraction".to_owned());
        return;
    };
    outcome.checks += 1;
    if fraction < SERVING_FLOOR {
        outcome.failures.push(format!(
            "serving: fraction of direct warm batch-64 fell to {fraction:.2} at >=8 clients \
             (floor {SERVING_FLOOR}) — the front end is eating the engine"
        ));
    }
}

/// Per-point end-to-end p95 latency comparison, same one-bucket-plus-
/// margin ceiling as the engine's per-op-kind check. Skipped with a
/// note when either run recorded with the metrics gate off (the
/// histograms are empty zeros, not measurements); a point that had
/// latency samples in the baseline but none in the current run fails.
fn serving_p95_checks(
    current: &JsonValue,
    baseline: &JsonValue,
    margin: f64,
    outcome: &mut GateOutcome,
) {
    for (doc, who) in [(baseline, "baseline"), (current, "current run")] {
        if doc.get("metrics_recording").and_then(JsonValue::as_bool) != Some(true) {
            outcome
                .notes
                .push(format!("{who} had metrics off; serving p95 checks skipped"));
            return;
        }
    }
    let key_fields = &["clients", "pipeline"];
    let current_points = points_of(current);
    for base_point in points_of(baseline) {
        let Some(key) = point_key(base_point, key_fields) else {
            continue;
        };
        let base_count = base_point
            .get("latency_count")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        let base_p95 = base_point
            .get("p95_ns")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        if base_count == 0 || base_p95 == 0 {
            continue;
        }
        let Some(current_point) = current_points
            .iter()
            .find(|p| point_key(p, key_fields).as_deref() == Some(&key))
        else {
            continue; // throughput_checks already noted the absence
        };
        outcome.checks += 1;
        let current_count = current_point
            .get("latency_count")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        if current_count == 0 {
            outcome.failures.push(format!(
                "serving p95: [{key}] recorded no latency samples (baseline had {base_count}) \
                 — instrumentation went missing"
            ));
            continue;
        }
        let current_p95 = current_point
            .get("p95_ns")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        let limit = p95_limit(base_p95, margin);
        if current_p95 as f64 > limit {
            outcome.failures.push(format!(
                "serving p95: [{key}] inflated to {current_p95}ns vs baseline {base_p95}ns \
                 (ceiling {limit:.0}ns = one bucket + margin {margin})"
            ));
        }
    }
}

/// The schema-v2 overload checks (docs/ROBUSTNESS.md):
///
/// * cooperative grid points must not shed — `requests_shed` is only
///   tolerable in the dedicated overload point;
/// * the overload point must have actually been overloaded (nonzero
///   sheds), must keep its admitted throughput above
///   [`SERVING_OVERLOAD_FLOOR`] × the cooperative rate at the same
///   grid point, and its **admitted-only** p95 must hold within one
///   histogram bucket (plus margin) of the baseline's overload p95.
///
/// A v1 baseline (no `overload` object) downgrades the p95 diff to a
/// note; a *current* document without the object fails — the schema
/// bump is part of the robustness contract, and dropping it would
/// silently retire the overload SLO.
fn serving_overload_checks(
    current: &JsonValue,
    baseline: &JsonValue,
    margin: f64,
    outcome: &mut GateOutcome,
) {
    // Cooperative points never shed.
    for point in points_of(current) {
        let Some(shed) = point.get("requests_shed").and_then(JsonValue::as_u64) else {
            continue; // pre-v2 current document; the overload check below fails it
        };
        outcome.checks += 1;
        if shed > 0 {
            let key = point_key(point, &["clients", "pipeline"]).unwrap_or_default();
            outcome.failures.push(format!(
                "serving overload: cooperative point [{key}] shed {shed} requests — \
                 the default queue depth must absorb cooperative load"
            ));
        }
    }

    let Some(overload) = current.get("overload") else {
        outcome.failures.push(
            "serving overload: current document has no overload object (schema v2) — \
             the overload SLO cannot be retired by omission"
                .to_owned(),
        );
        return;
    };
    let shed = overload
        .get("requests_shed")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    outcome.checks += 1;
    if shed == 0 {
        outcome.failures.push(
            "serving overload: the overload point shed nothing — the measurement \
             never actually overloaded the admission queue"
                .to_owned(),
        );
    }
    let admitted = overload
        .get("admitted_per_sec")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    let cooperative = overload
        .get("cooperative_per_sec")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    outcome.checks += 1;
    if admitted < SERVING_OVERLOAD_FLOOR * cooperative {
        outcome.failures.push(format!(
            "serving overload: admitted throughput {admitted:.0} req/s fell below \
             {SERVING_OVERLOAD_FLOOR} x the cooperative {cooperative:.0} req/s — \
             shedding is cannibalizing useful work"
        ));
    }

    // Admitted-p95 diff against the baseline's overload point.
    for (doc, who) in [(baseline, "baseline"), (current, "current run")] {
        if doc.get("metrics_recording").and_then(JsonValue::as_bool) != Some(true) {
            outcome
                .notes
                .push(format!("{who} had metrics off; overload p95 check skipped"));
            return;
        }
    }
    let Some(base_overload) = baseline.get("overload") else {
        outcome
            .notes
            .push("baseline predates the overload point; overload p95 check skipped".to_owned());
        return;
    };
    let base_p95 = base_overload
        .get("p95_ns")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    if base_p95 == 0 {
        return;
    }
    let current_p95 = overload
        .get("p95_ns")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    outcome.checks += 1;
    if current_p95 as f64 > p95_limit(base_p95, margin) {
        outcome.failures.push(format!(
            "serving overload: admitted p95 inflated to {current_p95}ns vs baseline \
             {base_p95}ns (ceiling {:.0}ns = one bucket + margin {margin}) — \
             admission control stopped bounding queueing delay",
            p95_limit(base_p95, margin)
        ));
    }
}

/// Per-dim classify-p95 comparison for the learning documents. The
/// latencies are exact order statistics (not histogram buckets), but a
/// value near a scheduler hiccup still legitimately doubles between
/// runs, so the same one-doubling-plus-margin ceiling applies; a point
/// that had latency samples in the baseline but none in the current
/// run fails.
fn learn_p95_checks(
    current: &JsonValue,
    baseline: &JsonValue,
    margin: f64,
    outcome: &mut GateOutcome,
) {
    let key_fields = &["dim"];
    let current_points = points_of(current);
    for base_point in points_of(baseline) {
        let Some(key) = point_key(base_point, key_fields) else {
            continue;
        };
        let base_count = base_point
            .get("latency_count")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        let base_p95 = base_point
            .get("classify_p95_ns")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        if base_count == 0 || base_p95 == 0 {
            continue;
        }
        let Some(current_point) = current_points
            .iter()
            .find(|p| point_key(p, key_fields).as_deref() == Some(&key))
        else {
            continue; // throughput_checks already noted the absence
        };
        outcome.checks += 1;
        let current_count = current_point
            .get("latency_count")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        if current_count == 0 {
            outcome.failures.push(format!(
                "learn p95: [{key}] recorded no latency samples (baseline had {base_count})"
            ));
            continue;
        }
        let current_p95 = current_point
            .get("classify_p95_ns")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0);
        let limit = p95_limit(base_p95, margin);
        if current_p95 as f64 > limit {
            outcome.failures.push(format!(
                "learn p95: [{key}] classify p95 inflated to {current_p95}ns vs baseline \
                 {base_p95}ns (ceiling {limit:.0}ns = one doubling + margin {margin})"
            ));
        }
    }
}

/// The learning-quality check: the current CIFAR retraining curve's
/// `final_accuracy` must hold within [`ACCURACY_SLACK`] of the
/// baseline's. A document that dropped the field fails rather than
/// passing vacuously.
fn learn_accuracy_check(current: &JsonValue, baseline: &JsonValue, outcome: &mut GateOutcome) {
    let Some(base_accuracy) = baseline.get("final_accuracy").and_then(JsonValue::as_f64) else {
        outcome
            .failures
            .push("learn: baseline document has no final_accuracy".to_owned());
        return;
    };
    let Some(current_accuracy) = current.get("final_accuracy").and_then(JsonValue::as_f64) else {
        outcome
            .failures
            .push("learn: current document has no final_accuracy".to_owned());
        return;
    };
    outcome.checks += 1;
    let floor = base_accuracy - ACCURACY_SLACK;
    if current_accuracy < floor {
        outcome.failures.push(format!(
            "learn: final CIFAR accuracy fell to {current_accuracy:.3} vs baseline \
             {base_accuracy:.3} (floor {floor:.3} at slack {ACCURACY_SLACK}) — \
             the retraining loop stopped learning"
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_doc(points: &[(u64, u64, f64)], ops: &[(&str, u64, u64)]) -> JsonValue {
        JsonValue::obj(vec![
            ("bench", JsonValue::Str("engine_throughput".into())),
            ("schema_version", JsonValue::Uint(3)),
            (
                "points",
                JsonValue::Arr(
                    points
                        .iter()
                        .map(|&(batch, threads, warm)| {
                            JsonValue::obj(vec![
                                ("batch", JsonValue::Uint(batch)),
                                ("threads", JsonValue::Uint(threads)),
                                ("warm_per_sec", JsonValue::Num(warm)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "metrics",
                JsonValue::obj(vec![
                    ("compiled_out", JsonValue::Bool(false)),
                    (
                        "ops",
                        JsonValue::Arr(
                            ops.iter()
                                .map(|&(kind, count, p95)| {
                                    JsonValue::obj(vec![
                                        ("kind", JsonValue::Str(kind.into())),
                                        ("latency_count", JsonValue::Uint(count)),
                                        ("p95_ns", JsonValue::Uint(p95)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }

    /// A healthy grid: batch 512 holds above batch 64 at both thread
    /// counts, latencies steady.
    fn healthy() -> JsonValue {
        engine_doc(
            &[
                (64, 1, 100.0),
                (512, 1, 110.0),
                (64, 2, 180.0),
                (512, 2, 200.0),
            ],
            &[("rep2", 1000, 2047), ("rep3", 100, 16383)],
        )
    }

    #[test]
    fn identical_documents_pass() {
        let outcome = gate_documents(&healthy(), &healthy(), DEFAULT_GATE_MARGIN);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        // 4 throughput + 2 cliff + 2 p95.
        assert_eq!(outcome.checks, 8);
    }

    #[test]
    fn within_margin_noise_passes() {
        let current = engine_doc(
            &[
                (64, 1, 90.0), // 10% below baseline: inside the 15% margin
                (512, 1, 99.0),
                (64, 2, 170.0),
                (512, 2, 185.0),
            ],
            &[("rep2", 900, 4095), ("rep3", 90, 16383)], // one bucket up: slack
        );
        let outcome = gate_documents(&current, &healthy(), DEFAULT_GATE_MARGIN);
        assert!(outcome.passed(), "{:?}", outcome.failures);
    }

    #[test]
    fn synthetic_throughput_regression_fails() {
        let current = engine_doc(
            &[
                (64, 1, 80.0), // 20% below baseline: past the 15% margin
                (512, 1, 110.0),
                (64, 2, 180.0),
                (512, 2, 200.0),
            ],
            &[("rep2", 1000, 2047), ("rep3", 100, 16383)],
        );
        let outcome = gate_documents(&current, &healthy(), DEFAULT_GATE_MARGIN);
        let failure = outcome.failures.join("\n");
        assert!(failure.contains("warm_per_sec regressed"), "{failure}");
    }

    #[test]
    fn scaling_cliff_rollover_fails() {
        // The recorded rollover (21.1k → 17.3k, ≈18% drop) on the current
        // grid must fail even when the baseline shows the same shape.
        let rollover = engine_doc(
            &[(64, 1, 21131.0), (512, 1, 17372.0)],
            &[("rep2", 1000, 2047)],
        );
        let outcome = gate_documents(&rollover, &rollover, DEFAULT_GATE_MARGIN);
        let failure = outcome.failures.join("\n");
        assert!(failure.contains("batch-512 rollover"), "{failure}");
        // A grid with no batch-512 rows cannot vacuously pass the cliff.
        let no512 = engine_doc(&[(64, 1, 100.0)], &[("rep2", 1000, 2047)]);
        let outcome = gate_documents(&no512, &no512, DEFAULT_GATE_MARGIN);
        assert!(outcome.failures.iter().any(|f| f.contains("no batch-512")));
        // A batch-512 row with no batch-64 partner is a failure too.
        let orphan = engine_doc(&[(512, 3, 100.0)], &[("rep2", 1000, 2047)]);
        let outcome = gate_documents(&orphan, &orphan, DEFAULT_GATE_MARGIN);
        assert!(outcome.failures.iter().any(|f| f.contains("no batch-64")));
    }

    #[test]
    fn p95_inflation_beyond_one_bucket_fails() {
        let current = engine_doc(
            &[
                (64, 1, 100.0),
                (512, 1, 110.0),
                (64, 2, 180.0),
                (512, 2, 200.0),
            ],
            // rep2 jumped two buckets (2047 → 8191ns): a real tail regression.
            &[("rep2", 1000, 8191), ("rep3", 100, 16383)],
        );
        let outcome = gate_documents(&current, &healthy(), DEFAULT_GATE_MARGIN);
        let failure = outcome.failures.join("\n");
        assert!(
            failure.contains("p95: op kind \"rep2\" inflated"),
            "{failure}"
        );
    }

    #[test]
    fn missing_current_samples_for_a_baseline_kind_fails() {
        let current = engine_doc(
            &[
                (64, 1, 100.0),
                (512, 1, 110.0),
                (64, 2, 180.0),
                (512, 2, 200.0),
            ],
            &[("rep2", 0, 0), ("rep3", 100, 16383)],
        );
        let outcome = gate_documents(&current, &healthy(), DEFAULT_GATE_MARGIN);
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.contains("instrumentation went missing")));
    }

    #[test]
    fn compiled_out_current_build_skips_p95_with_a_note() {
        let mut current = healthy();
        if let JsonValue::Obj(fields) = &mut current {
            for (key, value) in fields.iter_mut() {
                if key == "metrics" {
                    if let JsonValue::Obj(metric_fields) = value {
                        metric_fields[0].1 = JsonValue::Bool(true); // compiled_out
                    }
                }
            }
        }
        let outcome = gate_documents(&current, &healthy(), DEFAULT_GATE_MARGIN);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        assert!(outcome
            .notes
            .iter()
            .any(|n| n.contains("compiled metrics out")));
        assert_eq!(outcome.checks, 6, "p95 checks must be skipped");
    }

    #[test]
    fn unmatched_baseline_points_are_noted_but_an_empty_match_fails() {
        // Current grid measured fewer thread counts: skipped, not failed.
        let current = engine_doc(
            &[(64, 1, 100.0), (512, 1, 110.0)],
            &[("rep2", 1000, 2047), ("rep3", 100, 16383)],
        );
        let outcome = gate_documents(&current, &healthy(), DEFAULT_GATE_MARGIN);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        assert_eq!(
            outcome
                .notes
                .iter()
                .filter(|n| n.contains("skipped"))
                .count(),
            2
        );
        // No overlap at all: the gate must fail, not pass vacuously.
        let disjoint = engine_doc(&[(8, 1, 50.0)], &[]);
        let baseline = engine_doc(&[(64, 4, 100.0)], &[]);
        let outcome = gate_documents(&disjoint, &baseline, DEFAULT_GATE_MARGIN);
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.contains("no baseline point matched")));
    }

    fn packed_doc(points: &[(u64, u64, u64, f64)]) -> JsonValue {
        JsonValue::obj(vec![
            ("bench", JsonValue::Str("packed_scan".into())),
            (
                "points",
                JsonValue::Arr(
                    points
                        .iter()
                        .map(|&(dim, items, shards, rate)| {
                            JsonValue::obj(vec![
                                ("dim", JsonValue::Uint(dim)),
                                ("items", JsonValue::Uint(items)),
                                ("shards", JsonValue::Uint(shards)),
                                ("packed_per_sec", JsonValue::Num(rate)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn packed_scan_documents_gate_on_packed_per_sec() {
        let baseline = packed_doc(&[(1024, 256, 1, 400000.0), (8192, 256, 8, 100000.0)]);
        let good = packed_doc(&[(1024, 256, 1, 390000.0), (8192, 256, 8, 99000.0)]);
        assert!(gate_documents(&good, &baseline, DEFAULT_GATE_MARGIN).passed());
        let bad = packed_doc(&[(1024, 256, 1, 200000.0), (8192, 256, 8, 99000.0)]);
        let outcome = gate_documents(&bad, &baseline, DEFAULT_GATE_MARGIN);
        assert!(!outcome.passed());
        assert!(outcome.failures[0].contains("packed_per_sec regressed"));
    }

    #[test]
    fn kernel_documents_gate_on_hamming_per_sec_and_skip_absent_isas() {
        let kernel_doc = |points: &[(&str, u64, f64)]| {
            JsonValue::obj(vec![
                ("bench", JsonValue::Str("kernels".into())),
                (
                    "points",
                    JsonValue::Arr(
                        points
                            .iter()
                            .map(|&(kernel, words, rate)| {
                                JsonValue::obj(vec![
                                    ("kernel", JsonValue::Str(kernel.into())),
                                    ("words", JsonValue::Uint(words)),
                                    ("hamming_per_sec", JsonValue::Num(rate)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        };
        let baseline = kernel_doc(&[("avx2", 512, 3.0e9), ("avx512", 512, 8.0e9)]);
        // Current machine lacks avx512: that row is skipped, avx2 gates.
        let current = kernel_doc(&[("avx2", 512, 2.9e9)]);
        let outcome = gate_documents(&current, &baseline, DEFAULT_GATE_MARGIN);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        assert_eq!(outcome.checks, 1);
        assert!(outcome.notes[0].contains("skipped"));
        let slow = kernel_doc(&[("avx2", 512, 1.0e9)]);
        assert!(!gate_documents(&slow, &baseline, DEFAULT_GATE_MARGIN).passed());
    }

    #[test]
    fn mismatched_and_unknown_bench_fields_fail() {
        let packed = packed_doc(&[(1024, 256, 1, 1.0)]);
        let outcome = gate_documents(&healthy(), &packed, DEFAULT_GATE_MARGIN);
        assert!(outcome.failures[0].contains("bench mismatch"));
        let unknown = JsonValue::obj(vec![("bench", JsonValue::Str("mystery".into()))]);
        let outcome = gate_documents(&unknown, &unknown, DEFAULT_GATE_MARGIN);
        assert!(outcome.failures[0].contains("unknown bench family"));
    }

    #[test]
    fn parse_errors_surface_as_failures() {
        let healthy_text = healthy().render();
        assert!(
            gate_texts("{", &healthy_text, DEFAULT_GATE_MARGIN).failures[0]
                .contains("current document")
        );
        assert!(
            gate_texts(&healthy_text, "[1,", DEFAULT_GATE_MARGIN).failures[0]
                .contains("baseline document")
        );
        assert!(gate_texts(&healthy_text, &healthy_text, DEFAULT_GATE_MARGIN).passed());
    }

    #[test]
    fn p95_limit_allows_exactly_one_bucket_jump() {
        // Baseline edge 2047; next bucket edge 4095 passes, 8191 fails.
        assert!((4095f64) <= p95_limit(2047, DEFAULT_GATE_MARGIN));
        assert!((8191f64) > p95_limit(2047, DEFAULT_GATE_MARGIN));
    }

    /// `overload` is `(admitted, cooperative, shed, p95_ns)`; `None`
    /// models a pre-v2 document with no overload object.
    fn serving_doc_with(
        fraction: f64,
        recording: bool,
        points: &[(u64, u64, f64, u64, u64)],
        point_shed: u64,
        overload: Option<(f64, f64, u64, u64)>,
    ) -> JsonValue {
        let mut fields = vec![
            ("bench", JsonValue::Str("serving".into())),
            ("schema_version", JsonValue::Uint(2)),
            ("metrics_recording", JsonValue::Bool(recording)),
            ("serving_fraction", JsonValue::Num(fraction)),
            (
                "points",
                JsonValue::Arr(
                    points
                        .iter()
                        .map(|&(clients, pipeline, rate, count, p95)| {
                            JsonValue::obj(vec![
                                ("clients", JsonValue::Uint(clients)),
                                ("pipeline", JsonValue::Uint(pipeline)),
                                ("throughput_per_sec", JsonValue::Num(rate)),
                                ("latency_count", JsonValue::Uint(count)),
                                ("p95_ns", JsonValue::Uint(p95)),
                                ("requests_shed", JsonValue::Uint(point_shed)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some((admitted, cooperative, shed, p95)) = overload {
            fields.push((
                "overload",
                JsonValue::obj(vec![
                    ("clients", JsonValue::Uint(8)),
                    ("pipeline", JsonValue::Uint(32)),
                    ("admitted_per_sec", JsonValue::Num(admitted)),
                    ("cooperative_per_sec", JsonValue::Num(cooperative)),
                    ("requests_shed", JsonValue::Uint(shed)),
                    ("p95_ns", JsonValue::Uint(p95)),
                ]),
            ));
        }
        JsonValue::obj(fields)
    }

    fn serving_doc(
        fraction: f64,
        recording: bool,
        points: &[(u64, u64, f64, u64, u64)],
    ) -> JsonValue {
        serving_doc_with(
            fraction,
            recording,
            points,
            0,
            Some((17e3, 18e3, 5000, 4095)),
        )
    }

    #[test]
    fn serving_identical_documents_pass() {
        let doc = serving_doc(
            0.93,
            true,
            &[(1, 8, 5e3, 512, 2047), (8, 32, 18e3, 2048, 4095)],
        );
        let outcome = gate_documents(&doc, &doc, DEFAULT_GATE_MARGIN);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        // 2 throughput + 1 floor + 2 p95 + 2 cooperative-shed
        // + overload shed/floor/p95.
        assert_eq!(outcome.checks, 10);
    }

    #[test]
    fn serving_current_without_overload_object_fails() {
        let baseline = serving_doc(0.93, true, &[(8, 32, 18e3, 2048, 4095)]);
        let current = serving_doc_with(0.93, true, &[(8, 32, 18e3, 2048, 4095)], 0, None);
        let outcome = gate_documents(&current, &baseline, DEFAULT_GATE_MARGIN);
        let failure = outcome.failures.join("\n");
        assert!(failure.contains("no overload object"), "{failure}");
    }

    #[test]
    fn serving_v1_baseline_downgrades_overload_p95_to_a_note() {
        let baseline = serving_doc_with(0.93, true, &[(8, 32, 18e3, 2048, 4095)], 0, None);
        // The baseline's points also predate requests_shed.
        let current = serving_doc(0.93, true, &[(8, 32, 18e3, 2048, 4095)]);
        let outcome = gate_documents(&current, &baseline, DEFAULT_GATE_MARGIN);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        assert!(
            outcome.notes.iter().any(|n| n.contains("predates")),
            "{:?}",
            outcome.notes
        );
    }

    #[test]
    fn serving_cooperative_shedding_fails() {
        let doc = serving_doc_with(
            0.93,
            true,
            &[(8, 32, 18e3, 2048, 4095)],
            3,
            Some((17e3, 18e3, 5000, 4095)),
        );
        let outcome = gate_documents(&doc, &doc, DEFAULT_GATE_MARGIN);
        let failure = outcome.failures.join("\n");
        assert!(failure.contains("cooperative point"), "{failure}");
    }

    #[test]
    fn serving_overload_that_never_shed_fails() {
        let doc = serving_doc_with(
            0.93,
            true,
            &[(8, 32, 18e3, 2048, 4095)],
            0,
            Some((17e3, 18e3, 0, 4095)),
        );
        let outcome = gate_documents(&doc, &doc, DEFAULT_GATE_MARGIN);
        let failure = outcome.failures.join("\n");
        assert!(failure.contains("shed nothing"), "{failure}");
    }

    #[test]
    fn serving_overload_admitted_collapse_fails() {
        let doc = serving_doc_with(
            0.93,
            true,
            &[(8, 32, 18e3, 2048, 4095)],
            0,
            Some((9e3, 18e3, 5000, 4095)),
        );
        let outcome = gate_documents(&doc, &doc, DEFAULT_GATE_MARGIN);
        let failure = outcome.failures.join("\n");
        assert!(failure.contains("cannibalizing"), "{failure}");
    }

    #[test]
    fn serving_overload_p95_inflation_fails() {
        let baseline = serving_doc_with(
            0.93,
            true,
            &[(8, 32, 18e3, 2048, 4095)],
            0,
            Some((17e3, 18e3, 5000, 2047)),
        );
        let current = serving_doc_with(
            0.93,
            true,
            &[(8, 32, 18e3, 2048, 4095)],
            0,
            Some((17e3, 18e3, 5000, 16383)),
        );
        let outcome = gate_documents(&current, &baseline, DEFAULT_GATE_MARGIN);
        let failure = outcome.failures.join("\n");
        assert!(failure.contains("admitted p95 inflated"), "{failure}");
    }

    #[test]
    fn serving_fraction_below_floor_fails() {
        let doc = serving_doc(0.7, true, &[(8, 32, 18e3, 2048, 4095)]);
        let outcome = gate_documents(&doc, &doc, DEFAULT_GATE_MARGIN);
        let failure = outcome.failures.join("\n");
        assert!(failure.contains("fell to 0.70"), "{failure}");
        // A document that dropped the field cannot pass vacuously.
        let missing = JsonValue::obj(vec![
            ("bench", JsonValue::Str("serving".into())),
            ("metrics_recording", JsonValue::Bool(true)),
            (
                "points",
                JsonValue::Arr(vec![JsonValue::obj(vec![
                    ("clients", JsonValue::Uint(8)),
                    ("pipeline", JsonValue::Uint(32)),
                    ("throughput_per_sec", JsonValue::Num(18e3)),
                ])]),
            ),
        ]);
        let outcome = gate_documents(&missing, &missing, DEFAULT_GATE_MARGIN);
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.contains("no serving_fraction")));
    }

    #[test]
    fn serving_throughput_regression_fails() {
        let baseline = serving_doc(0.93, true, &[(8, 32, 18e3, 2048, 4095)]);
        let current = serving_doc(0.93, true, &[(8, 32, 14e3, 2048, 4095)]);
        let outcome = gate_documents(&current, &baseline, DEFAULT_GATE_MARGIN);
        let failure = outcome.failures.join("\n");
        assert!(
            failure.contains("throughput_per_sec regressed"),
            "{failure}"
        );
    }

    fn learn_doc(final_accuracy: f64, points: &[(u64, f64, f64, u64, u64)]) -> JsonValue {
        JsonValue::obj(vec![
            ("bench", JsonValue::Str("learn".into())),
            ("schema_version", JsonValue::Uint(1)),
            ("final_accuracy", JsonValue::Num(final_accuracy)),
            (
                "points",
                JsonValue::Arr(
                    points
                        .iter()
                        .map(|&(dim, train, classify, count, p95)| {
                            JsonValue::obj(vec![
                                ("dim", JsonValue::Uint(dim)),
                                ("train_per_sec", JsonValue::Num(train)),
                                ("classify_per_sec", JsonValue::Num(classify)),
                                ("latency_count", JsonValue::Uint(count)),
                                ("classify_p95_ns", JsonValue::Uint(p95)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    #[test]
    fn learn_identical_documents_pass() {
        let doc = learn_doc(
            0.92,
            &[(1024, 5e4, 8e4, 4000, 12000), (4096, 2e4, 3e4, 4000, 40000)],
        );
        let outcome = gate_documents(&doc, &doc, DEFAULT_GATE_MARGIN);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        // 2 train + 2 classify + 2 p95 + 1 accuracy.
        assert_eq!(outcome.checks, 7);
    }

    #[test]
    fn learn_throughput_regressions_fail() {
        let baseline = learn_doc(0.92, &[(1024, 5e4, 8e4, 4000, 12000)]);
        let slow_train = learn_doc(0.92, &[(1024, 3e4, 8e4, 4000, 12000)]);
        let outcome = gate_documents(&slow_train, &baseline, DEFAULT_GATE_MARGIN);
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.contains("train_per_sec regressed")));
        let slow_classify = learn_doc(0.92, &[(1024, 5e4, 4e4, 4000, 12000)]);
        let outcome = gate_documents(&slow_classify, &baseline, DEFAULT_GATE_MARGIN);
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.contains("classify_per_sec regressed")));
    }

    #[test]
    fn learn_p95_inflation_and_accuracy_drop_fail() {
        let baseline = learn_doc(0.92, &[(1024, 5e4, 8e4, 4000, 12000)]);
        // One doubling passes (noise), past it fails.
        let doubled = learn_doc(0.92, &[(1024, 5e4, 8e4, 4000, 24000)]);
        assert!(gate_documents(&doubled, &baseline, DEFAULT_GATE_MARGIN).passed());
        let inflated = learn_doc(0.92, &[(1024, 5e4, 8e4, 4000, 60000)]);
        let outcome = gate_documents(&inflated, &baseline, DEFAULT_GATE_MARGIN);
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.contains("classify p95 inflated")));
        // Accuracy: within the slack passes, past it fails.
        let noisy = learn_doc(0.89, &[(1024, 5e4, 8e4, 4000, 12000)]);
        assert!(gate_documents(&noisy, &baseline, DEFAULT_GATE_MARGIN).passed());
        let broken = learn_doc(0.70, &[(1024, 5e4, 8e4, 4000, 12000)]);
        let outcome = gate_documents(&broken, &baseline, DEFAULT_GATE_MARGIN);
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.contains("stopped learning")));
        // A current document that dropped the field cannot pass.
        let missing = learn_doc(f64::NAN, &[(1024, 5e4, 8e4, 4000, 12000)]);
        let missing = match missing {
            JsonValue::Obj(fields) => JsonValue::Obj(
                fields
                    .into_iter()
                    .filter(|(k, _)| k != "final_accuracy")
                    .collect(),
            ),
            other => other,
        };
        let outcome = gate_documents(&missing, &baseline, DEFAULT_GATE_MARGIN);
        assert!(outcome
            .failures
            .iter()
            .any(|f| f.contains("no final_accuracy")));
    }

    #[test]
    fn serving_p95_two_bucket_inflation_fails_and_metrics_off_skips() {
        let baseline = serving_doc(0.93, true, &[(8, 32, 18e3, 2048, 2047)]);
        let inflated = serving_doc(0.93, true, &[(8, 32, 18e3, 2048, 8191)]);
        let outcome = gate_documents(&inflated, &baseline, DEFAULT_GATE_MARGIN);
        assert!(outcome.failures.iter().any(|f| f.contains("serving p95")));
        // Either side recorded with metrics off → p95 skipped, noted.
        let off = serving_doc(0.93, false, &[(8, 32, 18e3, 0, 0)]);
        let outcome = gate_documents(&off, &baseline, DEFAULT_GATE_MARGIN);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        assert!(outcome.notes.iter().any(|n| n.contains("metrics off")));
    }
}
