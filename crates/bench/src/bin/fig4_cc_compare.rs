//! FIG4a–d: FactorHD vs C-C factorizers (resonator network, IMC stochastic
//! factorizer) — accuracy and factorization time vs problem size `M^F`.
//!
//! Protocol (§IV-A): `D = 1500` for `F = 3`, `D = 2000` for `F = 4`;
//! FactorHD stores 2 bits per dimension, so its `D` is halved to equalize
//! storage. Run with `--quick` for a fast smoke pass.
//!
//! Expected shape (paper): FactorHD stays ≥99% with near-flat time; the
//! resonator collapses first (≈10⁶), the IMC factorizer later; both grow
//! steeply in time, so FactorHD's speedup grows with problem size.

use factorhd_bench::{parse_quick, run_factorhd_rep1, run_imc, run_resonator, Table};

fn main() {
    let (quick, fhd_trials) = parse_quick(256, 32);
    let iter_trials = if quick { 8 } else { 24 };

    for (f, d, ms) in [
        (3usize, 1500usize, vec![8usize, 16, 32, 64, 128, 256]),
        (4, 2000, vec![8, 16, 32, 64]),
    ] {
        let mut table = Table::new(
            &format!("Fig. 4 (F = {f}): accuracy and time vs problem size M^{f}"),
            &[
                "M",
                "size",
                "FHD acc",
                "FHD us",
                "Res acc",
                "Res ms",
                "Res iters",
                "IMC acc",
                "IMC ms",
                "IMC iters",
            ],
        );
        for &m in &ms {
            let fhd = run_factorhd_rep1(f, m, d / 2, fhd_trials, 41);
            let res_iters = 300;
            let imc_iters = if m >= 128 { 6000 } else { 3000 };
            let res = run_resonator(f, m, d, iter_trials, res_iters, 42);
            let imc = run_imc(f, m, d, iter_trials, imc_iters, 43);
            table.row(&[
                m.to_string(),
                format!("{:.1e}", (m as f64).powi(f as i32)),
                format!("{:.3}", fhd.accuracy),
                format!("{:.1}", fhd.avg_time.as_secs_f64() * 1e6),
                format!("{:.3}", res.accuracy),
                format!("{:.2}", res.avg_time.as_secs_f64() * 1e3),
                format!("{:.0}", res.avg_ops),
                format!("{:.3}", imc.accuracy),
                format!("{:.2}", imc.avg_time.as_secs_f64() * 1e3),
                format!("{:.0}", imc.avg_ops),
            ]);
        }
        table.print();
        println!();
    }
    println!(
        "shape check: FactorHD accuracy flat/high, time ~flat; resonator \
         accuracy collapses first, IMC later; baseline time grows with M."
    );
}
