//! Online-learning benchmark: prototype training throughput and
//! single-query classification latency over a dimension grid, plus the
//! CIFAR accuracy-vs-epochs retraining curve.
//!
//! Prints the human-readable table and writes the machine-readable
//! `BENCH_learn.json` (schema v1, documented in docs/LEARNING.md) to
//! the working directory. Regression gating lives in the `bench_gate`
//! bin, which diffs this document against the committed
//! `baselines/BENCH_learn.json` and additionally holds the final CIFAR
//! accuracy near its baseline. Flags:
//!
//! * `--quick` — two repetitions and smaller train/query sets instead
//!   of four repetitions.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = factorhd_bench::learn_points(quick);
    factorhd_bench::learn_table(&report).print();
    println!("\nCIFAR retraining curve (held-out accuracy by epoch):");
    for point in &report.accuracy_curve {
        println!(
            "  epoch {}: {} training errors, accuracy {:.3}",
            point.epoch, point.train_errors, point.accuracy
        );
    }
    let json = factorhd_bench::learn_json(&report, quick);
    let path = "BENCH_learn.json";
    std::fs::write(path, json + "\n").expect("write BENCH_learn.json");
    println!("wrote {path}");
}
