//! Loopback serving throughput: the clients × pipeline grid of the
//! network front end against the warm batch-64 direct-engine reference,
//! with server-side end-to-end latency percentiles per point.
//!
//! Prints the human-readable table and writes the machine-readable
//! `BENCH_serving.json` (schema v2, documented in docs/SERVING.md and
//! docs/ROBUSTNESS.md — v2 adds shed counters and the overload point)
//! to the working directory. Regression gating lives in the
//! `bench_gate` bin, which diffs this document against the committed
//! `baselines/BENCH_serving.json` and additionally holds the top-line
//! `serving_fraction` above the serving floor and the overload point's
//! admitted throughput above the overload floor. Flags:
//!
//! * `--quick` — two repetitions and a quarter of the per-point op
//!   target instead of four repetitions.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let report = factorhd_bench::serving_points(quick);
    factorhd_bench::serving_table(&report).print();
    println!();
    factorhd_bench::overload_table(&report).print();
    println!(
        "\nserving fraction at >=8 clients: {:.2} of direct warm batch-64 ({:.0} req/s)",
        report.serving_fraction, report.direct_warm64_per_sec
    );
    let json = factorhd_bench::serving_json(&report, quick);
    let path = "BENCH_serving.json";
    std::fs::write(path, json + "\n").expect("write BENCH_serving.json");
    println!("wrote {path}");
}
