//! Serving-engine throughput: the threads × batch scaling grid — warm
//! batched requests/sec at pool sizes 1/2/4/all and batch sizes
//! 1/8/64/512 against the naive rebuild-per-request baseline — plus the
//! artifact round-trip bit-identity check and the engine telemetry
//! snapshot with its measured overhead.
//!
//! Prints the human-readable table and writes the machine-readable
//! `BENCH_engine.json` (schema v3, documented in docs/SERVING.md and
//! docs/OBSERVABILITY.md) to the working directory. Regression gating
//! lives in the `bench_gate` bin, which diffs this document against the
//! committed `baselines/BENCH_engine.json`. Flags:
//!
//! * `--quick` — three repetitions per grid point instead of five.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let compared = factorhd_bench::verify_artifact_round_trip();
    println!("artifact save→load→factorize: bit-identical across {compared} responses");
    let points = factorhd_bench::engine_throughput_points(quick);
    factorhd_bench::engine_throughput_table(&points).print();
    let report = factorhd_bench::collect_metrics_report(quick);
    println!(
        "\nmetrics overhead on warm batch-64: {:.0}/s recording vs {:.0}/s off ({:+.2}%)",
        report.warm_on_per_sec,
        report.warm_off_per_sec,
        100.0 * report.overhead_fraction()
    );
    let json = factorhd_bench::engine_throughput_json(&points, quick, &report);
    let path = "BENCH_engine.json";
    std::fs::write(path, json + "\n").expect("write BENCH_engine.json");
    println!("wrote {path}");
}
