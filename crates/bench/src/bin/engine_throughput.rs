//! Serving-engine throughput: batched warm-cache requests/sec at batch
//! sizes 1/8/64/512 against the naive rebuild-per-request baseline, plus
//! the artifact round-trip bit-identity check.
//!
//! Prints the human-readable table and writes the machine-readable
//! `BENCH_engine.json` (schema in docs/SERVING.md) to the working
//! directory. Run with `--quick` for a single repetition per point.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let compared = factorhd_bench::verify_artifact_round_trip();
    println!("artifact save→load→factorize: bit-identical across {compared} responses");
    let points = factorhd_bench::engine_throughput_points(quick);
    factorhd_bench::engine_throughput_table(&points).print();
    let json = factorhd_bench::engine_throughput_json(&points, quick);
    let path = "BENCH_engine.json";
    std::fs::write(path, json + "\n").expect("write BENCH_engine.json");
    println!("\nwrote {path}");
}
