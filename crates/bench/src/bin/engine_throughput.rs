//! Serving-engine throughput: the threads × batch scaling grid — warm
//! batched requests/sec at pool sizes 1/2/4/all and batch sizes
//! 1/8/64/512 against the naive rebuild-per-request baseline — plus the
//! artifact round-trip bit-identity check.
//!
//! Prints the human-readable table and writes the machine-readable
//! `BENCH_engine.json` (schema in docs/SERVING.md) to the working
//! directory. Flags:
//!
//! * `--quick` — three repetitions per grid point instead of five.
//! * `--gate` — after the sweep, fail (exit 1) if warm batch-512
//!   throughput fell below the noise margin of warm batch-64 at any
//!   thread count: the batch-512 rollover, encoded as a regression gate.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let gate = std::env::args().any(|a| a == "--gate");
    let compared = factorhd_bench::verify_artifact_round_trip();
    println!("artifact save→load→factorize: bit-identical across {compared} responses");
    let points = factorhd_bench::engine_throughput_points(quick);
    factorhd_bench::engine_throughput_table(&points).print();
    let json = factorhd_bench::engine_throughput_json(&points, quick);
    let path = "BENCH_engine.json";
    std::fs::write(path, json + "\n").expect("write BENCH_engine.json");
    println!("\nwrote {path}");
    if gate {
        match factorhd_bench::throughput_gate(&points) {
            Ok(()) => println!("gate: warm batch-512 holds above warm batch-64 — no rollover"),
            Err(message) => {
                eprintln!("{message}");
                std::process::exit(1);
            }
        }
    }
}
