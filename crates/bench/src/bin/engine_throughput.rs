//! Serving-engine throughput: batched warm-cache requests/sec at batch
//! sizes 1/8/64/512 against the naive rebuild-per-request baseline, plus
//! the artifact round-trip bit-identity check.
//!
//! Run with `--quick` for a single repetition per point.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let compared = factorhd_bench::verify_artifact_round_trip();
    println!("artifact save→load→factorize: bit-identical across {compared} responses");
    let table = factorhd_bench::engine_throughput_table(quick);
    table.print();
}
