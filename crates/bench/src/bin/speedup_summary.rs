//! SPEED: the paper's headline speedups — FactorHD vs the best C-C
//! factorizer at problem sizes 10⁶ and 10⁹ (§IV-B: "a minimum speedup of
//! 18.5× at 10⁶ problem size and reaching 5667× at 10⁹").
//!
//! Absolute times differ from the paper's GPU testbed (DESIGN.md,
//! substitution table); the claim under test is that the ratio *grows by
//! orders of magnitude* with problem size because FactorHD's cost is
//! `O(N_M)` while the iterative factorizers scale super-linearly.

use factorhd_bench::{parse_quick, run_factorhd_rep1, run_imc, run_resonator, Table};

fn main() {
    let (quick, _) = parse_quick(0, 0);
    let mut table = Table::new(
        "Headline speedup: FactorHD vs C-C factorizers (F = 3, D = 1500; FactorHD D = 750)",
        &[
            "size",
            "M",
            "FHD us",
            "FHD acc",
            "IMC ms",
            "IMC acc",
            "Res ms",
            "Res acc",
            "speedup vs IMC",
            "speedup vs Res",
        ],
    );

    let settings: Vec<(usize, usize, usize, usize)> = if quick {
        // (m, fhd_trials, iter_trials, imc_iters)
        vec![(100, 32, 4, 1500), (1000, 8, 2, 1500)]
    } else {
        vec![(100, 128, 12, 3000), (1000, 32, 4, 4000)]
    };

    for (m, fhd_trials, iter_trials, imc_iters) in settings {
        let fhd = run_factorhd_rep1(3, m, 750, fhd_trials, 101);
        let imc = run_imc(3, m, 1500, iter_trials, imc_iters, 102);
        let res = run_resonator(3, m, 1500, iter_trials, 200, 103);
        let speed_imc = imc.avg_time.as_secs_f64() / fhd.avg_time.as_secs_f64();
        let speed_res = res.avg_time.as_secs_f64() / fhd.avg_time.as_secs_f64();
        table.row(&[
            format!("1e{}", (3.0 * (m as f64).log10()).round() as i32),
            m.to_string(),
            format!("{:.1}", fhd.avg_time.as_secs_f64() * 1e6),
            format!("{:.3}", fhd.accuracy),
            format!("{:.2}", imc.avg_time.as_secs_f64() * 1e3),
            format!("{:.3}", imc.accuracy),
            format!("{:.2}", res.avg_time.as_secs_f64() * 1e3),
            format!("{:.3}", res.accuracy),
            format!("{speed_imc:.0}x"),
            format!("{speed_res:.0}x"),
        ]);
    }
    table.print();
    println!();
    println!(
        "paper reference: 18.5x at 1e6, 5667x at 1e9 (GPU testbed). \
         shape check: the speedup ratio grows by orders of magnitude from \
         1e6 to 1e9 while FactorHD stays >99% accurate."
    );
}
