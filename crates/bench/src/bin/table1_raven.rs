//! TAB1: FactorHD factorization accuracy on RAVEN panels, per
//! configuration and hypervector dimension (with the simulated neural
//! front-end extracting the attributes).
//!
//! Expected shape (paper): ≥90% for most configurations at `D = 1000`;
//! graceful degradation at reduced dimensionality; dense multi-object
//! grids (3x3Grid) are the hardest.

use factorhd_bench::{parse_quick, Table};
use factorhd_neural::datasets::raven::RavenConfig;
use factorhd_neural::{RavenPipeline, RavenPipelineConfig};

fn main() {
    let (_, scenes) = parse_quick(200, 40);
    let dims = [250usize, 500, 1000];

    let mut headers: Vec<String> = vec!["config".into()];
    headers.extend(dims.iter().map(|d| format!("D={d}")));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "Table I: RAVEN factorization accuracy (exact panel match)",
        &header_refs,
    );

    for config in RavenConfig::ALL {
        let mut row = vec![config.name().to_string()];
        for &dim in &dims {
            let pipeline = RavenPipeline::new(
                config,
                RavenPipelineConfig {
                    dim,
                    ..RavenPipelineConfig::default()
                },
            )
            .expect("valid RAVEN pipeline");
            let acc = pipeline.evaluate(scenes, 81).expect("evaluation runs");
            row.push(format!("{acc:.3}"));
        }
        table.row(&row);
    }
    table.print();
    println!();
    println!(
        "shape check: accuracy rises with D; single/two-object configurations \
         (Center, L-R, U-D, O-IC) ≥90% at D = 1000; dense grids degrade."
    );
}
