//! QUERY: partial factorization via membership probes — the §I workload
//! where "only a subset of class and subclass items are of interest".
//! A [`SceneQuery`] answers "does this scene contain item X in class c?"
//! with one dot product; this binary measures its true/false-positive
//! rates against scene size, versus the full-factorization alternative.

use factorhd_bench::{parse_quick, Table};
use factorhd_core::{Encoder, SceneQuery, TaxonomyBuilder};

fn main() {
    let (_, trials) = parse_quick(200, 32);
    let f = 3usize;
    let m = 16usize;
    let d = 4096usize;

    let taxonomy = TaxonomyBuilder::new(d)
        .seed(501)
        .uniform_classes(f, &[m])
        .build()
        .expect("valid taxonomy");
    let encoder = Encoder::new(&taxonomy);

    let mut table = Table::new(
        "Membership probes (F = 3, M = 16, D = 4096): 1 dot product per query",
        &["N objects", "TPR", "FPR", "mean margin"],
    );

    for n in [1usize, 2, 3, 4] {
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut margin = 0.0f64;
        for t in 0..trials {
            let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[502, n as u64, t as u64]));
            let scene = taxonomy.sample_scene(n, true, &mut rng);
            let hv = encoder.encode_scene(&scene).expect("encodable");

            // Positive probe: class 0 of the first object.
            let present_path = scene.objects()[0]
                .assignment(0)
                .expect("sample_scene fills every class")
                .clone();
            let positive = SceneQuery::new(&taxonomy)
                .with_item(0, present_path.clone())
                .expect("valid path");
            let answer = positive.evaluate(&hv).expect("well-formed query");
            if answer.present {
                tp += 1;
            }
            margin += answer.evidence;

            // Negative probe: an item no object carries in class 0.
            let used: Vec<u16> = scene
                .objects()
                .iter()
                .filter_map(|o| o.assignment(0).map(|p| p.indices()[0]))
                .collect();
            let absent = (0..m as u16)
                .find(|i| !used.contains(i))
                .expect("M > N leaves a free item");
            let negative = SceneQuery::new(&taxonomy)
                .with_item(0, factorhd_core::ItemPath::top(absent))
                .expect("valid path");
            if negative.evaluate(&hv).expect("well-formed query").present {
                fp += 1;
            }
        }
        table.row(&[
            n.to_string(),
            format!("{:.3}", tp as f64 / trials.max(1) as f64),
            format!("{:.3}", fp as f64 / trials.max(1) as f64),
            format!("{:.3}", margin / trials.max(1) as f64),
        ]);
    }
    table.print();
    println!();
    println!(
        "cost: 1 similarity per probe vs {} for a full Rep-1 factorization",
        f * (m + 1)
    );
}
