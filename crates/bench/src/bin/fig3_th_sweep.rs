//! FIG3a–c: the optimal threshold similarity `TH*` for multi-object
//! factorization, swept against (a) dimension `D` and object count `N`,
//! (b) codebook size `M`, and (c) factor count `F` — then fitted to the
//! linear form of the paper's Eq. 2.
//!
//! Expected shape (paper): `TH*` increases with `N`, decreases with `F`,
//! and is roughly linear in `D` and `log M`. The paper's Eq. 2 printed
//! verbatim is out of scale (see DESIGN.md); the fit below regenerates the
//! coefficients from our own measurements.

use factorhd_bench::{parse_quick, th_sweep, Table};
use factorhd_core::threshold::{paper_eq2, LinearThresholdModel, ThObservation};

fn grid() -> Vec<f64> {
    (1..=24).map(|i| i as f64 * 0.01).collect()
}

fn main() {
    let (_, trials) = parse_quick(96, 24);
    let mut observations: Vec<ThObservation> = Vec::new();
    let record = |obs: &mut Vec<ThObservation>, n: usize, f: usize, d: usize, m: usize, th: f64| {
        obs.push(ThObservation {
            n_objects: n,
            f_classes: f,
            dim: d,
            m_items: m,
            th_star: th,
        });
    };

    // (a) TH* vs D and N at M = 10, F = 4.
    let mut ta = Table::new(
        "Fig. 3(a): TH* vs D and N (M = 10, F = 4)",
        &["D", "N", "TH*", "best acc"],
    );
    for d in [1000usize, 2000, 3000] {
        for n in [2usize, 3, 4] {
            let (th_star, points) = th_sweep(n, 4, d, 10, &grid(), trials, 71);
            let best = points.iter().map(|p| p.accuracy).fold(0.0, f64::max);
            ta.row(&[
                d.to_string(),
                n.to_string(),
                format!("{th_star:.3}"),
                format!("{best:.3}"),
            ]);
            record(&mut observations, n, 4, d, 10, th_star);
        }
    }
    ta.print();
    println!();

    // (b) TH* vs M at D = 2000, F = 4, N = 3.
    let mut tb = Table::new(
        "Fig. 3(b): TH* vs M (D = 2000, F = 4, N = 3)",
        &["M", "TH*", "best acc"],
    );
    for m in [5usize, 10, 20, 50] {
        let (th_star, points) = th_sweep(3, 4, 2000, m, &grid(), trials, 72);
        let best = points.iter().map(|p| p.accuracy).fold(0.0, f64::max);
        tb.row(&[m.to_string(), format!("{th_star:.3}"), format!("{best:.3}")]);
        record(&mut observations, 3, 4, 2000, m, th_star);
    }
    tb.print();
    println!();

    // (c) TH* vs F at N = 3, M = 10, D = 2000.
    let mut tc = Table::new(
        "Fig. 3(c): TH* vs F (N = 3, M = 10, D = 2000)",
        &["F", "TH*", "best acc"],
    );
    for f in [2usize, 3, 4, 5] {
        let (th_star, points) = th_sweep(3, f, 2000, 10, &grid(), trials, 73);
        let best = points.iter().map(|p| p.accuracy).fold(0.0, f64::max);
        tc.row(&[f.to_string(), format!("{th_star:.3}"), format!("{best:.3}")]);
        record(&mut observations, 3, f, 2000, 10, th_star);
    }
    tc.print();
    println!();

    // Fit the Eq.-2-shaped linear model to our measurements.
    match LinearThresholdModel::fit(&observations) {
        Ok(model) => {
            println!("fitted TH* model (Eq. 2 functional form, our coefficients):");
            println!(
                "  TH* = {:+.4} {:+.4}·N {:+.4}·F {:+.3e}·D {:+.4}·log10(M)   (rmse {:.4})",
                model.intercept,
                model.n_coef,
                model.f_coef,
                model.d_coef,
                model.log_m_coef,
                model.rmse(&observations)
            );
            println!(
                "  paper Eq. 2 verbatim at (N=3, F=4, D=2000, M=10): {:.2} — out of \
                 scale for a normalized similarity (documented discrepancy)",
                paper_eq2(3, 4, 2000, 10)
            );
            println!(
                "  trend check: n_coef > 0 ({}), f_coef < 0 ({})",
                model.n_coef > 0.0,
                model.f_coef < 0.0
            );
        }
        Err(e) => println!("fit failed: {e}"),
    }
}
