//! The SLO regression gate: diffs the current `BENCH_engine.json`,
//! `BENCH_packed_scan.json`, `BENCH_kernels.json`, `BENCH_serving.json`,
//! and `BENCH_learn.json` against the committed `baselines/*.json` and
//! exits non-zero on any throughput regression past the margin, on the
//! batch-512 scaling cliff, on per-op p95 latency inflation (see
//! docs/OBSERVABILITY.md, "The SLO gate"), on the serving front end
//! dropping below its floor fraction of direct-engine throughput (see
//! docs/SERVING.md, "Network front end"), or on the online-learning
//! subsystem losing throughput or CIFAR accuracy (see docs/LEARNING.md).
//! Run it after the bench bins regenerate the current documents:
//!
//! ```text
//! cargo run --release --bin engine_throughput -- --quick
//! cargo run --release --bin packed_scan -- --quick
//! cargo run --release --bin kernel_bench -- --quick
//! cargo run --release --bin serving_bench -- --quick
//! cargo run --release --bin learn_bench -- --quick
//! cargo run --release --bin bench_gate
//! ```
//!
//! Flags:
//!
//! * `--margin <fraction>` — allowed throughput loss vs baseline
//!   (default 0.15, i.e. fail past a 15% regression).
//! * `--baseline-dir <dir>` — where the committed baselines live
//!   (default `baselines`).
//! * `--current-dir <dir>` — where the freshly generated documents live
//!   (default `.`, the working directory the bench bins write to).

use factorhd_bench::gate::{gate_texts, DEFAULT_GATE_MARGIN};
use std::path::Path;
use std::process::ExitCode;

const GATED_FILES: [&str; 5] = [
    "BENCH_engine.json",
    "BENCH_packed_scan.json",
    "BENCH_kernels.json",
    "BENCH_serving.json",
    "BENCH_learn.json",
];

struct Args {
    margin: f64,
    baseline_dir: String,
    current_dir: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        margin: DEFAULT_GATE_MARGIN,
        baseline_dir: "baselines".to_owned(),
        current_dir: ".".to_owned(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or_else(|| format!("{flag} needs a value"));
        match flag.as_str() {
            "--margin" => {
                args.margin = value("--margin")?
                    .parse::<f64>()
                    .map_err(|e| format!("--margin: {e}"))?;
                if !(0.0..1.0).contains(&args.margin) {
                    return Err("--margin must be in [0, 1)".to_owned());
                }
            }
            "--baseline-dir" => args.baseline_dir = value("--baseline-dir")?,
            "--current-dir" => args.current_dir = value("--current-dir")?,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("bench_gate: {message}");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;
    for file in GATED_FILES {
        let baseline_path = Path::new(&args.baseline_dir).join(file);
        let current_path = Path::new(&args.current_dir).join(file);
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("FAIL {file}: baseline {}: {e}", baseline_path.display());
                failed = true;
                continue;
            }
        };
        let current = match std::fs::read_to_string(&current_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("FAIL {file}: current {}: {e}", current_path.display());
                failed = true;
                continue;
            }
        };
        let outcome = gate_texts(&current, &baseline, args.margin);
        let verdict = if outcome.passed() { "ok" } else { "FAIL" };
        println!(
            "{verdict} {file} ({}): {} checks, {} failures",
            outcome.bench,
            outcome.checks,
            outcome.failures.len()
        );
        for note in &outcome.notes {
            println!("  note: {note}");
        }
        for failure in &outcome.failures {
            eprintln!("  {failure}");
        }
        failed |= !outcome.passed();
    }
    if failed {
        eprintln!(
            "bench_gate: regression gate FAILED (margin {})",
            args.margin
        );
        ExitCode::FAILURE
    } else {
        println!("bench_gate: all gates passed (margin {})", args.margin);
        ExitCode::SUCCESS
    }
}
