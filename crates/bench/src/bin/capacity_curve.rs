//! CAP: analytic capacity model vs measurement — predicted single-object
//! accuracy (`factorhd_core::capacity`) against the measured Rep-1 / Rep-2
//! accuracy over a dimension sweep, plus the inverse query: the dimension
//! the model prescribes for a target accuracy.
//!
//! The prediction is documented as conservative (it models the plain
//! greedy descent); the measurement column should sit at or above it.

use factorhd_bench::{parse_quick, run_factorhd_rep1, run_factorhd_rep23, Rep23Setting, Table};
use factorhd_core::capacity::{dimension_for_accuracy, predict_single_object_accuracy};
use factorhd_core::TaxonomyBuilder;

fn main() {
    let (_, trials) = parse_quick(256, 32);

    let mut rep1 = Table::new(
        "Capacity: Rep 1 (F = 3, M = 32) predicted vs measured accuracy",
        &["D", "predicted", "measured"],
    );
    for d in [256usize, 512, 1024, 2048, 4096] {
        let taxonomy = TaxonomyBuilder::new(d)
            .seed(91)
            .uniform_classes(3, &[32])
            .build()
            .expect("valid taxonomy");
        let predicted = predict_single_object_accuracy(&taxonomy);
        let measured = run_factorhd_rep1(3, 32, d, trials, 92).accuracy;
        rep1.row(&[
            d.to_string(),
            format!("{predicted:.3}"),
            format!("{measured:.3}"),
        ]);
    }
    rep1.print();
    println!();

    let mut rep2 = Table::new(
        "Capacity: Rep 2 (F = 3, 256 x 10) predicted vs measured accuracy",
        &["D", "predicted", "measured"],
    );
    for d in [500usize, 1000, 1500, 2000] {
        let taxonomy = TaxonomyBuilder::new(d)
            .seed(93)
            .uniform_classes(3, &[256, 10])
            .build()
            .expect("valid taxonomy");
        let predicted = predict_single_object_accuracy(&taxonomy);
        let measured = run_factorhd_rep23(Rep23Setting::rep2(), d, trials, 94).accuracy;
        rep2.row(&[
            d.to_string(),
            format!("{predicted:.3}"),
            format!("{measured:.3}"),
        ]);
    }
    rep2.print();
    println!();

    let mut inverse = Table::new(
        "Dimension prescribed for target accuracy (F = 3)",
        &["levels", "target", "D*"],
    );
    for (levels, label) in [(&[32usize][..], "[32]"), (&[256, 10][..], "[256, 10]")] {
        for target in [0.9f64, 0.99] {
            let d = dimension_for_accuracy(3, levels, target);
            inverse.row(&[label.to_string(), format!("{target}"), d.to_string()]);
        }
    }
    inverse.print();
}
