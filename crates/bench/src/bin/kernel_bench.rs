//! Scan-kernel throughput sweep: `hamming_words` / `masked_hamming_words`
//! across every kernel the running CPU can dispatch (scalar reference,
//! Harley–Seal ladder, POPCNT, AVX2, AVX-512), at word counts
//! {64, 512, 4096, 65536}, after asserting every kernel bit-identical to
//! the scalar oracle.
//!
//! Prints the detected CPU features, the auto-selected kernel, the
//! human-readable table, and writes the machine-readable
//! `BENCH_kernels.json` (schema in docs/SERVING.md) to the working
//! directory. Run with `--quick` for reduced repetitions per grid point.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("cpu features: {}", hdc::kernels::cpu_features());
    println!(
        "selected kernel: {} (override with FACTORHD_KERNEL)",
        hdc::kernels::selected_kernel().name()
    );
    let compared = factorhd_bench::verify_kernel_equivalence();
    println!("kernels vs scalar oracle: bit-identical across {compared} (kernel, size) pairs\n");
    let points = factorhd_bench::kernel_points(quick);
    factorhd_bench::kernel_bench_table(&points).print();
    let json = factorhd_bench::kernel_bench_json(&points, quick);
    let path = "BENCH_kernels.json";
    std::fs::write(path, json + "\n").expect("write BENCH_kernels.json");
    println!("\nwrote {path}");
}
