//! TAB2: FactorHD + simulated ResNet-18 factorization accuracy on CIFAR-10
//! and CIFAR-100, versus the neural reference, across hypervector
//! dimensions and training-superposition counts.
//!
//! Expected shape (paper): CIFAR-10 factorization lands within ~3% of the
//! neural reference at high D (92.48% headline vs ≈95.4% ResNet-18), the
//! loss shrinking as D grows; accuracy stays usable when training images
//! arrive superposed; CIFAR-100 supports partial factorization of either
//! the coarse or the fine label.

use factorhd_bench::{parse_quick, Table};
use factorhd_neural::{CifarPipeline, CifarPipelineConfig, SimulatedResNet18};

fn main() {
    let (quick, n_test) = parse_quick(1000, 200);
    let super_trials = if quick { 40 } else { 150 };

    // CIFAR-10: accuracy vs D and training superposition.
    let mut t10 = Table::new(
        "Table II (CIFAR-10): factorization accuracy vs D and superposed training",
        &[
            "D",
            "train k",
            "accuracy",
            "ref ResNet-18",
            "superposed k=2",
        ],
    );
    for dim in [1024usize, 2048, 4096] {
        for train_k in [1usize, 2, 4] {
            let pipeline = CifarPipeline::new(CifarPipelineConfig {
                dim,
                train_superposition: train_k,
                ..CifarPipelineConfig::cifar10()
            })
            .expect("valid pipeline");
            let acc = pipeline.evaluate(n_test, 91).expect("evaluation runs");
            let sup = pipeline
                .evaluate_superposed(2, super_trials, 92)
                .expect("evaluation runs");
            t10.row(&[
                dim.to_string(),
                train_k.to_string(),
                format!("{acc:.4}"),
                format!("{:.4}", SimulatedResNet18::CIFAR10_ACCURACY),
                format!("{sup:.3}"),
            ]);
        }
    }
    t10.print();
    println!();

    // CIFAR-100: fine + (partially factorized) coarse accuracy.
    let mut t100 = Table::new(
        "Table II (CIFAR-100): fine and coarse factorization accuracy",
        &["D", "fine acc", "ref fine", "coarse acc", "ref coarse"],
    );
    for dim in [2048usize, 4096] {
        let pipeline = CifarPipeline::new(CifarPipelineConfig {
            dim,
            ..CifarPipelineConfig::cifar100()
        })
        .expect("valid pipeline");
        let fine = pipeline.evaluate(n_test, 93).expect("evaluation runs");
        let coarse = pipeline
            .evaluate_coarse(n_test, 94)
            .expect("evaluation runs");
        t100.row(&[
            dim.to_string(),
            format!("{fine:.4}"),
            format!("{:.4}", SimulatedResNet18::CIFAR100_ACCURACY),
            format!("{coarse:.4}"),
            format!("{:.4}", SimulatedResNet18::CIFAR100_COARSE_ACCURACY),
        ]);
    }
    t100.print();
    println!();
    println!(
        "shape check: accuracy loss vs the neural reference shrinks with D \
         (paper: <3% on CIFAR-10, 92.48% headline); superposed training \
         degrades gracefully."
    );
}
