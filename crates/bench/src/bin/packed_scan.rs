//! Packed-scan throughput: sharded word-table codebook search vs the
//! per-item ternary popcount path, at D ∈ {1k, 8k, 32k}, after asserting
//! both paths answer bit-identically.
//!
//! Run with `--quick` for reduced repetitions per grid point.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let compared = factorhd_bench::verify_packed_equivalence();
    println!("packed vs reference top-1/top-k: bit-identical across {compared} scans");
    let table = factorhd_bench::packed_scan_table(quick);
    table.print();
}
