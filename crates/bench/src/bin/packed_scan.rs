//! Packed-scan throughput: sharded word-table codebook search vs the
//! per-item ternary popcount path, at D ∈ {1k, 8k, 32k}, after asserting
//! both paths answer bit-identically.
//!
//! Prints the human-readable table and writes the machine-readable
//! `BENCH_packed_scan.json` (schema in docs/SERVING.md) to the working
//! directory. Run with `--quick` for reduced repetitions per grid point.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let compared = factorhd_bench::verify_packed_equivalence();
    println!("packed vs reference top-1/top-k: bit-identical across {compared} scans");
    let points = factorhd_bench::packed_scan_points(quick);
    factorhd_bench::packed_scan_table(&points).print();
    let json = factorhd_bench::packed_scan_json(&points, quick);
    let path = "BENCH_packed_scan.json";
    std::fs::write(path, json + "\n").expect("write BENCH_packed_scan.json");
    println!("\nwrote {path}");
}
