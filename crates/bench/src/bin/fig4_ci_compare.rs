//! FIG4e–f: FactorHD vs the class–instance (C-I) model — factorization
//! accuracy across problem sizes at low dimensions.
//!
//! Protocol (§IV-A): `D = 256` for `F = 3` and `D = 512` for `F = 4` for
//! the C-I model; FactorHD's `D` is halved (2 bits/dimension). Both
//! single-object decodes (where the two models' label/role elimination is
//! equally cheap) and two-object scenes (where the C-I model's
//! superposition catastrophe strikes: it recovers per-class item *sets*
//! but cannot attribute items to objects) are reported.
//!
//! Expected shape (paper): FactorHD at least on par on single objects and
//! far ahead on multi-object scenes; times comparable.

use factorhd_bench::runner::{run_ci_model_scene, run_factorhd_multi};
use factorhd_bench::{parse_quick, run_ci_model, run_factorhd_rep1, Table};

fn main() {
    let (quick, trials) = parse_quick(512, 64);
    let scene_trials = if quick { 32 } else { 192 };

    for (f, d) in [(3usize, 256usize), (4, 512)] {
        let mut table = Table::new(
            &format!("Fig. 4(e/f) (F = {f}, D = {d}): FactorHD vs C-I model"),
            &[
                "M",
                "size",
                "FHD 1-obj",
                "C-I 1-obj",
                "FHD 2-obj",
                "C-I 2-obj",
                "FHD us",
                "C-I us",
            ],
        );
        for m in [8usize, 16, 32, 64, 128, 256] {
            let fhd = run_factorhd_rep1(f, m, d / 2, trials, 51);
            let ci = run_ci_model(f, m, d, trials, 52);
            let fhd2 = run_factorhd_multi(f, m, d / 2, 2, scene_trials, 53);
            let ci2 = run_ci_model_scene(f, m, d, 2, scene_trials, 54);
            table.row(&[
                m.to_string(),
                format!("{:.1e}", (m as f64).powi(f as i32)),
                format!("{:.3}", fhd.accuracy),
                format!("{:.3}", ci.accuracy),
                format!("{:.3}", fhd2.accuracy),
                format!("{:.3}", ci2.accuracy),
                format!("{:.1}", fhd.avg_time.as_secs_f64() * 1e6),
                format!("{:.1}", ci.avg_time.as_secs_f64() * 1e6),
            ]);
        }
        table.print();
        println!();
    }
    println!(
        "shape check: single-object decodes comparable; on two-object scenes \
         the C-I model loses object identity (superposition catastrophe) \
         while FactorHD's combination testing keeps accuracy high."
    );
}
