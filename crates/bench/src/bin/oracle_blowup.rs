//! ORACLE: the `M^F` combination blow-up of class–class factorization
//! (§II-B) made concrete — similarity measurements spent by the exhaustive
//! oracle versus the resonator network versus FactorHD's `O(N_M)` scan on
//! the same problem family.
//!
//! The oracle row grows as `M^F`; FactorHD's grows as `F x (M + 1)`. That
//! gap is the paper's complexity argument in one table.

use factorhd_baselines::{oracle, FactorizationProblem, Resonator, ResonatorConfig};
use factorhd_bench::{parse_quick, run_factorhd_rep1, Table};
use std::time::Instant;

fn main() {
    let (quick, trials) = parse_quick(32, 8);
    let f = 3usize;
    let d = 1024usize;
    let sizes: &[usize] = if quick { &[4, 8, 12] } else { &[4, 8, 16, 24] };

    let mut table = Table::new(
        "Combination blow-up (F = 3, D = 1024): similarity measurements per solve",
        &[
            "M",
            "oracle M^F",
            "oracle ms",
            "resonator iters",
            "FHD checks",
            "FHD acc",
        ],
    );

    for &m in sizes {
        let space = m.pow(f as u32);

        // Oracle: measure one mid-seed instance (cost is input-independent).
        let problem = FactorizationProblem::derive(301, f, m, d);
        let start = Instant::now();
        let outcome = oracle::exhaustive_solve(&problem, space);
        let oracle_ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(outcome.is_correct(&problem), "oracle must be exact");

        // Resonator: mean iterations to convergence over the trial set.
        let solver = Resonator::new(ResonatorConfig::default());
        let mut iter_total = 0usize;
        for t in 0..trials {
            let p = FactorizationProblem::derive(400 + t as u64, f, m, d);
            iter_total += solver.solve(&p).iterations;
        }
        let res_iters = iter_total as f64 / trials.max(1) as f64;

        let fhd = run_factorhd_rep1(f, m, d, trials, 95);

        table.row(&[
            m.to_string(),
            space.to_string(),
            format!("{oracle_ms:.2}"),
            format!("{res_iters:.1}"),
            format!("{:.0}", fhd.avg_ops),
            format!("{:.3}", fhd.accuracy),
        ]);
    }
    table.print();
}
