//! FIG5a–b: FactorHD factorization accuracy on Rep 2 and Rep 3 vs
//! hypervector dimension.
//!
//! Protocol (§IV-A): "one or two objects, each with two subclass levels.
//! The top-level classes consist of 256 subclasses, each having 10
//! sub-subclasses" — i.e. per class `M₁ = 256`, `M₂ = 10`, `F = 3`.
//!
//! Expected shape (paper): Rep-2 accuracy reaches ~100% around
//! `D = 1000–1500`; Rep 3 (object count unknown) needs noticeably higher
//! dimensions for the same accuracy.

use factorhd_bench::{parse_quick, run_factorhd_rep23, Rep23Setting, Table};

fn main() {
    let (_, trials) = parse_quick(128, 24);

    let mut rep2 = Table::new(
        "Fig. 5(a): Rep 2 (1 object, 2 subclass levels, 256×10 items)",
        &["D", "accuracy", "us/fact", "sim checks"],
    );
    for d in [400usize, 600, 800, 1000, 1200, 1500, 2000] {
        let r = run_factorhd_rep23(Rep23Setting::rep2(), d, trials, 61);
        rep2.row(&[
            d.to_string(),
            format!("{:.3}", r.accuracy),
            format!("{:.1}", r.avg_time.as_secs_f64() * 1e6),
            format!("{:.0}", r.avg_ops),
        ]);
    }
    rep2.print();
    println!();

    let mut rep3 = Table::new(
        "Fig. 5(b): Rep 3 (2 objects, unknown count, 2 subclass levels)",
        &["D", "accuracy", "us/fact", "sim checks"],
    );
    for d in [1000usize, 1500, 2000, 2500, 3000, 4000] {
        let r = run_factorhd_rep23(Rep23Setting::rep3(), d, trials, 62);
        rep3.row(&[
            d.to_string(),
            format!("{:.3}", r.accuracy),
            format!("{:.1}", r.avg_time.as_secs_f64() * 1e6),
            format!("{:.0}", r.avg_ops),
        ]);
    }
    rep3.print();
    println!();
    println!(
        "shape check: both curves rise with D; Rep 3 is shifted right of \
         Rep 2 (no prior knowledge of the object count costs dimensions)."
    );
}
