//! ABL: ablations over FactorHD's design choices (DESIGN.md experiment
//! index):
//!
//! 1. **Hierarchy refinement width** — `refine_width = 1` is the plain
//!    greedy arg-max descent of Algorithm 1; wider beams combine evidence
//!    across subclass levels.
//! 2. **Reconstruction acceptance** — `accept_threshold = 0` disables the
//!    full-reconstruction test, accepting the best bare-item combination
//!    as-is.
//! 3. **Threshold policy** — analytic signal-model threshold vs fixed
//!    values around it.
//! 4. **Redundant class labels** — FactorHD's labelled clause encoding vs
//!    the bare C-C product (which requires iterative factorization at all).

use factorhd_bench::{parse_quick, Table};
use factorhd_core::report::AccuracyCounter;
use factorhd_core::{Encoder, FactorizeConfig, Factorizer, TaxonomyBuilder, ThresholdPolicy};

fn rep2_accuracy(d: usize, trials: usize, config: FactorizeConfig) -> f64 {
    let taxonomy = TaxonomyBuilder::new(d)
        .seed(1)
        .uniform_classes(3, &[256, 10])
        .build()
        .expect("valid taxonomy");
    let encoder = Encoder::new(&taxonomy);
    let factorizer = Factorizer::new(&taxonomy, config);
    let mut counter = AccuracyCounter::new();
    for trial in 0..trials as u64 {
        let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[7, trial]));
        let object = taxonomy.sample_object(&mut rng);
        let hv = encoder
            .encode_scene(&factorhd_core::Scene::single(object.clone()))
            .expect("encodable");
        let decoded = factorizer.factorize_single(&hv).expect("decodable");
        counter.record(decoded.object() == &object);
    }
    counter.accuracy()
}

fn rep3_accuracy(d: usize, trials: usize, config: FactorizeConfig) -> f64 {
    let taxonomy = TaxonomyBuilder::new(d)
        .seed(2)
        .uniform_classes(3, &[64, 10])
        .build()
        .expect("valid taxonomy");
    let encoder = Encoder::new(&taxonomy);
    let factorizer = Factorizer::new(&taxonomy, config);
    let mut counter = AccuracyCounter::new();
    for trial in 0..trials as u64 {
        let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[8, trial]));
        let scene = taxonomy.sample_scene(2, true, &mut rng);
        let hv = encoder.encode_scene(&scene).expect("encodable");
        let decoded = factorizer.factorize_multi(&hv).expect("decodable");
        counter.record(decoded.to_scene().same_multiset(&scene));
    }
    counter.accuracy()
}

fn main() {
    let (_, trials) = parse_quick(96, 24);

    // 1. Refinement width on Rep 2 at a deliberately tight dimension.
    let mut t1 = Table::new(
        "Ablation 1: hierarchy refinement width (Rep 2, D = 1000)",
        &["refine_width", "accuracy"],
    );
    for width in [1usize, 2, 4, 8] {
        let acc = rep2_accuracy(
            1000,
            trials,
            FactorizeConfig {
                refine_width: width,
                ..FactorizeConfig::default()
            },
        );
        t1.row(&[width.to_string(), format!("{acc:.3}")]);
    }
    t1.print();
    println!();

    // 2. Reconstruction acceptance on Rep 3.
    let mut t2 = Table::new(
        "Ablation 2: reconstruction acceptance (Rep 3, D = 1500, 2 objects)",
        &["accept_threshold", "accuracy"],
    );
    for accept in [0.0f64, 0.5, 0.75, 0.9] {
        let acc = rep3_accuracy(
            1500,
            trials,
            FactorizeConfig {
                accept_threshold: accept,
                threshold: ThresholdPolicy::Analytic { n_objects: 2 },
                ..FactorizeConfig::default()
            },
        );
        t2.row(&[format!("{accept:.2}"), format!("{acc:.3}")]);
    }
    t2.print();
    println!();

    // 3. Threshold policy on Rep 3.
    let mut t3 = Table::new(
        "Ablation 3: pruning threshold (Rep 3, D = 1500, 2 objects)",
        &["policy", "accuracy"],
    );
    let analytic = ThresholdPolicy::Analytic { n_objects: 2 };
    for (name, policy) in [
        ("analytic", analytic),
        ("fixed 0.03", ThresholdPolicy::Fixed(0.03)),
        ("fixed 0.06", ThresholdPolicy::Fixed(0.06)),
        ("fixed 0.10", ThresholdPolicy::Fixed(0.10)),
        ("fixed 0.14 (too high)", ThresholdPolicy::Fixed(0.14)),
    ] {
        let acc = rep3_accuracy(
            1500,
            trials,
            FactorizeConfig {
                threshold: policy,
                ..FactorizeConfig::default()
            },
        );
        t3.row(&[name.to_string(), format!("{acc:.3}")]);
    }
    t3.print();
    println!();

    // 4. What the redundant label buys: a labelled single unbind decodes a
    // class directly; the unlabelled C-C product admits no such direct
    // read-out (its per-item similarity carries no signal).
    let taxonomy = TaxonomyBuilder::new(1024)
        .seed(3)
        .uniform_classes(3, &[32])
        .build()
        .expect("valid taxonomy");
    let encoder = Encoder::new(&taxonomy);
    let mut labelled = AccuracyCounter::new();
    let mut unlabelled_signal = 0.0f64;
    let factorizer = Factorizer::new(&taxonomy, FactorizeConfig::default());
    for trial in 0..trials as u64 {
        let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[9, trial]));
        let object = taxonomy.sample_object(&mut rng);
        let hv = encoder
            .encode_scene(&factorhd_core::Scene::single(object.clone()))
            .expect("encodable");
        let decoded = factorizer.factorize_single(&hv).expect("decodable");
        labelled.record(decoded.object() == &object);

        // Bare C-C product: direct per-item similarity is pure noise.
        let cc = encoder
            .encode_object_unlabelled(&object)
            .expect("encodable");
        let item = taxonomy
            .item_hv(0, object.assignment(0).expect("present"))
            .expect("valid path");
        unlabelled_signal += cc.sim(&item).abs();
    }
    let mut t4 = Table::new(
        "Ablation 4: redundant labels (F = 3, M = 32, D = 1024)",
        &["encoding", "direct unbind decode"],
    );
    t4.row(&[
        "FactorHD (labelled clauses)".into(),
        format!("accuracy {:.3}", labelled.accuracy()),
    ]);
    t4.row(&[
        "bare C-C product".into(),
        format!(
            "mean |item sim| {:.4} (noise level — needs iterative search)",
            unlabelled_signal / trials as f64
        ),
    ]);
    t4.print();
}
