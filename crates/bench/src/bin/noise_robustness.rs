//! NOISE: single-object decode robustness to superposed clutter — random
//! bipolar distractors added to the scene accumulator, modelling unrelated
//! bundle content (sensor fusion residue, stale memory traces). The
//! capacity model treats clutter as extra objects in its noise term, so
//! the analytic column tracks the measurement.

use factorhd_bench::{parse_quick, Table};
use factorhd_core::capacity::argmax_success_probability;
use factorhd_core::threshold::{clause_density, expected_signal};
use factorhd_core::{Encoder, FactorizeConfig, Factorizer, Scene, TaxonomyBuilder};
use hdc::BipolarHv;

fn main() {
    let (_, trials) = parse_quick(200, 32);
    let f = 3usize;
    let m = 16usize;
    let d = 2048usize;

    let taxonomy = TaxonomyBuilder::new(d)
        .seed(601)
        .uniform_classes(f, &[m])
        .build()
        .expect("valid taxonomy");
    let encoder = Encoder::new(&taxonomy);
    let factorizer = Factorizer::new(&taxonomy, FactorizeConfig::default());

    let clause_sizes = taxonomy.clause_sizes();
    let signal = expected_signal(&clause_sizes);
    let rho: f64 = clause_sizes.iter().map(|&k| clause_density(k)).product();

    let mut table = Table::new(
        "Clutter robustness (F = 3, M = 16, D = 2048, single object)",
        &["distractors", "measured acc", "analytic (per class)^F"],
    );

    for clutter in [0usize, 1, 2, 4, 8] {
        let mut correct = 0usize;
        for t in 0..trials {
            let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[602, clutter as u64, t as u64]));
            let object = taxonomy.sample_object(&mut rng);
            let mut hv = encoder
                .encode_scene(&Scene::single(object.clone()))
                .expect("encodable");
            for _ in 0..clutter {
                hv.add_bipolar(&BipolarHv::random(d, &mut rng), 1);
            }
            if let Ok(decoded) = factorizer.factorize_single(&hv) {
                if decoded.object() == &object {
                    correct += 1;
                }
            }
        }
        // One random bipolar distractor carries density 1 where an object
        // clause carries rho, so clutter counts as 1/rho effective objects
        // in the argmax noise term.
        let effective_n = 1.0 + clutter as f64 / rho;
        let per_class = argmax_success_probability(
            signal,
            d,
            m + 1, // item candidates + NULL
            effective_n.ceil() as usize,
            rho,
        );
        table.row(&[
            clutter.to_string(),
            format!("{:.3}", correct as f64 / trials.max(1) as f64),
            format!("{:.3}", per_class.powi(f as i32)),
        ]);
    }
    table.print();
}
