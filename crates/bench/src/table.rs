//! Plain-text table and CSV output for the experiment binaries.

use std::fmt::Write as _;

/// A simple column-aligned table with a title, printable to stdout or
/// serializable as CSV.
///
/// ```
/// use factorhd_bench::Table;
///
/// let mut t = Table::new("demo", &["M", "accuracy"]);
/// t.row(&["8".into(), "0.999".into()]);
/// let text = t.render();
/// assert!(text.contains("accuracy"));
/// assert!(t.to_csv().starts_with("M,accuracy"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Serializes as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("t", &["a", "long-header"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["100".into(), "2000".into()]);
        let text = t.render();
        assert!(text.contains("== t =="));
        assert!(text.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new("t", &["x", "y"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_arity_checked() {
        let mut t = Table::new("t", &["x", "y"]);
        t.row(&["only-one".into()]);
    }
}
