//! Trial runners: one function per (method, representation) pair.
//!
//! Every runner takes explicit problem parameters and a trial count,
//! executes the trials in parallel, and reports accuracy, mean wall-clock
//! time per factorization, and mean iteration / similarity-measurement
//! counts. The Fig. 4 protocol ("D of FactorHD reduces by half to match
//! the storage space of other models") is the caller's responsibility —
//! the binaries pass `d / 2` to the FactorHD runners.

use factorhd_baselines::{
    CiModel, FactorizationProblem, ImcConfig, ImcFactorizer, Resonator, ResonatorConfig,
};
use factorhd_core::report::AccuracyCounter;
use factorhd_core::{
    Encoder, FactorizeConfig, Factorizer, Scene, TaxonomyBuilder, ThresholdPolicy,
};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Aggregated outcome of a batch of factorization trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodResult {
    /// Fraction of trials whose decode matched the ground truth.
    pub accuracy: f64,
    /// Mean wall-clock time per factorization.
    pub avg_time: Duration,
    /// Mean solver iterations (iterative baselines) or similarity
    /// measurements (FactorHD / C-I) per trial.
    pub avg_ops: f64,
}

impl MethodResult {
    fn from_trials(outcomes: Vec<(bool, Duration, f64)>) -> Self {
        let n = outcomes.len().max(1) as f64;
        let mut counter = AccuracyCounter::new();
        let mut total_time = Duration::ZERO;
        let mut total_ops = 0.0;
        for (ok, time, ops) in outcomes {
            counter.record(ok);
            total_time += time;
            total_ops += ops;
        }
        MethodResult {
            accuracy: counter.accuracy(),
            avg_time: total_time.div_f64(n),
            avg_ops: total_ops / n,
        }
    }
}

/// FactorHD on Rep 1 (single object, one subclass level, `F` classes of
/// `M` items) at dimension `d`.
pub fn run_factorhd_rep1(f: usize, m: usize, d: usize, trials: usize, seed: u64) -> MethodResult {
    let taxonomy = TaxonomyBuilder::new(d)
        .seed(hdc::derive_seed(&[seed, 0xFAC7]))
        .uniform_classes(f, &[m])
        .build()
        .expect("valid benchmark taxonomy");
    let encoder = Encoder::new(&taxonomy);
    let factorizer = Factorizer::new(&taxonomy, FactorizeConfig::default());

    let outcomes: Vec<(bool, Duration, f64)> = (0..trials as u64)
        .into_par_iter()
        .map(|trial| {
            let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[seed, 1, trial]));
            let object = taxonomy.sample_object(&mut rng);
            let hv = encoder
                .encode_scene(&Scene::single(object.clone()))
                .expect("encodable");
            let start = Instant::now();
            let (decoded, stats) = factorizer
                .factorize_single_traced(&hv)
                .expect("well-formed query");
            let elapsed = start.elapsed();
            (
                decoded.object() == &object,
                elapsed,
                stats.similarity_checks as f64,
            )
        })
        .collect();
    MethodResult::from_trials(outcomes)
}

/// The Rep 2 / Rep 3 experiment settings of Fig. 5 (§IV-A: "one or two
/// objects, each with two subclass levels; the top-level classes consist
/// of 256 subclasses, each having 10 sub-subclasses").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rep23Setting {
    /// Number of classes `F`.
    pub f: usize,
    /// Level-1 codebook size.
    pub m1: usize,
    /// Level-2 codebook size.
    pub m2: usize,
    /// Objects per scene (1 = Rep 2, ≥2 = Rep 3).
    pub n_objects: usize,
}

impl Rep23Setting {
    /// The paper's Rep 2 setting.
    pub fn rep2() -> Self {
        Rep23Setting {
            f: 3,
            m1: 256,
            m2: 10,
            n_objects: 1,
        }
    }

    /// The paper's Rep 3 setting (two objects).
    pub fn rep3() -> Self {
        Rep23Setting {
            n_objects: 2,
            ..Self::rep2()
        }
    }
}

/// FactorHD on Rep 2/Rep 3 scenes at dimension `d`. Single-object settings
/// use the arg-max descent; multi-object settings run the full Algorithm-1
/// loop with the analytic threshold and no prior knowledge of the object
/// count.
pub fn run_factorhd_rep23(
    setting: Rep23Setting,
    d: usize,
    trials: usize,
    seed: u64,
) -> MethodResult {
    let taxonomy = TaxonomyBuilder::new(d)
        .seed(hdc::derive_seed(&[seed, 0x4E23]))
        .uniform_classes(setting.f, &[setting.m1, setting.m2])
        .build()
        .expect("valid benchmark taxonomy");
    let encoder = Encoder::new(&taxonomy);
    let factorizer = Factorizer::new(
        &taxonomy,
        FactorizeConfig {
            threshold: ThresholdPolicy::Analytic {
                n_objects: setting.n_objects,
            },
            max_objects: setting.n_objects + 2,
            ..FactorizeConfig::default()
        },
    );

    let outcomes: Vec<(bool, Duration, f64)> = (0..trials as u64)
        .into_par_iter()
        .map(|trial| {
            let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[seed, 2, trial]));
            let scene = taxonomy.sample_scene(setting.n_objects, true, &mut rng);
            let hv = encoder.encode_scene(&scene).expect("encodable");
            let start = Instant::now();
            if setting.n_objects == 1 {
                let (decoded, stats) = factorizer
                    .factorize_single_traced(&hv)
                    .expect("well-formed query");
                (
                    decoded.object() == &scene.objects()[0],
                    start.elapsed(),
                    stats.similarity_checks as f64,
                )
            } else {
                let decoded = factorizer.factorize_multi(&hv).expect("well-formed query");
                (
                    decoded.to_scene().same_multiset(&scene),
                    start.elapsed(),
                    decoded.stats.similarity_checks as f64,
                )
            }
        })
        .collect();
    MethodResult::from_trials(outcomes)
}

/// The resonator network on C-C problems (`F` codebooks × `M` items,
/// dimension `d`), `max_iterations` sweeps per trial.
pub fn run_resonator(
    f: usize,
    m: usize,
    d: usize,
    trials: usize,
    max_iterations: usize,
    seed: u64,
) -> MethodResult {
    let solver = Resonator::new(ResonatorConfig {
        max_iterations,
        early_exit_on_solution: true,
    });
    let outcomes: Vec<(bool, Duration, f64)> = (0..trials as u64)
        .into_par_iter()
        .map(|trial| {
            let problem =
                FactorizationProblem::derive(hdc::derive_seed(&[seed, 3, trial]), f, m, d);
            let start = Instant::now();
            let outcome = solver.solve(&problem);
            (
                outcome.is_correct(&problem),
                start.elapsed(),
                outcome.iterations as f64,
            )
        })
        .collect();
    MethodResult::from_trials(outcomes)
}

/// The IMC stochastic factorizer on C-C problems.
pub fn run_imc(
    f: usize,
    m: usize,
    d: usize,
    trials: usize,
    max_iterations: usize,
    seed: u64,
) -> MethodResult {
    let outcomes: Vec<(bool, Duration, f64)> = (0..trials as u64)
        .into_par_iter()
        .map(|trial| {
            let problem =
                FactorizationProblem::derive(hdc::derive_seed(&[seed, 4, trial]), f, m, d);
            let solver = ImcFactorizer::new(ImcConfig {
                max_iterations,
                seed: hdc::derive_seed(&[seed, 5, trial]),
                ..ImcConfig::default()
            });
            let start = Instant::now();
            let outcome = solver.solve(&problem);
            (
                outcome.is_correct(&problem),
                start.elapsed(),
                outcome.iterations as f64,
            )
        })
        .collect();
    MethodResult::from_trials(outcomes)
}

/// The class–instance model on single objects (Fig. 4(e,f) protocol).
pub fn run_ci_model(f: usize, m: usize, d: usize, trials: usize, seed: u64) -> MethodResult {
    let model = CiModel::derive(hdc::derive_seed(&[seed, 0xC1]), f, m, d);
    let outcomes: Vec<(bool, Duration, f64)> = (0..trials as u64)
        .into_par_iter()
        .map(|trial| {
            let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[seed, 6, trial]));
            let items: Vec<usize> = (0..f)
                .map(|_| rand::Rng::gen_range(&mut rng, 0..m))
                .collect();
            let hv = model.encode_object(&items);
            let start = Instant::now();
            let decoded = model.factorize_object(&hv);
            // One similarity scan of M items per class.
            ((decoded == items), start.elapsed(), (f * m) as f64)
        })
        .collect();
    MethodResult::from_trials(outcomes)
}

/// FactorHD on flat multi-object scenes (`n_objects` distinct objects,
/// one subclass level) — the protocol that exposes the C-I model's
/// superposition catastrophe in Fig. 4(e,f).
pub fn run_factorhd_multi(
    f: usize,
    m: usize,
    d: usize,
    n_objects: usize,
    trials: usize,
    seed: u64,
) -> MethodResult {
    let taxonomy = TaxonomyBuilder::new(d)
        .seed(hdc::derive_seed(&[seed, 0xFAC8]))
        .uniform_classes(f, &[m])
        .build()
        .expect("valid benchmark taxonomy");
    let encoder = Encoder::new(&taxonomy);
    let factorizer = Factorizer::new(
        &taxonomy,
        FactorizeConfig {
            threshold: ThresholdPolicy::Analytic { n_objects },
            max_objects: n_objects + 2,
            ..FactorizeConfig::default()
        },
    );
    let outcomes: Vec<(bool, Duration, f64)> = (0..trials as u64)
        .into_par_iter()
        .map(|trial| {
            let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[seed, 8, trial]));
            let scene = taxonomy.sample_scene(n_objects, true, &mut rng);
            let hv = encoder.encode_scene(&scene).expect("encodable");
            let start = Instant::now();
            let decoded = factorizer.factorize_multi(&hv).expect("well-formed query");
            (
                decoded.to_scene().same_multiset(&scene),
                start.elapsed(),
                decoded.stats.similarity_checks as f64,
            )
        })
        .collect();
    MethodResult::from_trials(outcomes)
}

/// The C-I model on multi-object scenes: per class it can only rank the
/// present items (role unbinding mixes all objects), so objects are
/// reconstructed by pairing equal ranks — the best the representation
/// permits, and exactly where the superposition catastrophe bites.
pub fn run_ci_model_scene(
    f: usize,
    m: usize,
    d: usize,
    n_objects: usize,
    trials: usize,
    seed: u64,
) -> MethodResult {
    let model = CiModel::derive(hdc::derive_seed(&[seed, 0xC1 + 1]), f, m, d);
    let outcomes: Vec<(bool, Duration, f64)> = (0..trials as u64)
        .into_par_iter()
        .map(|trial| {
            let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[seed, 9, trial]));
            // Distinct objects (item tuples).
            let mut objects: Vec<Vec<usize>> = Vec::new();
            while objects.len() < n_objects {
                let candidate: Vec<usize> = (0..f)
                    .map(|_| rand::Rng::gen_range(&mut rng, 0..m))
                    .collect();
                if !objects.contains(&candidate) {
                    objects.push(candidate);
                }
            }
            let hv = model.encode_scene(&objects);
            let start = Instant::now();
            // Top-n items per class (sorted by similarity), then rank
            // pairing across classes.
            let sets = model.factorize_scene_items(&hv, f64::NEG_INFINITY);
            let ranked: Vec<Vec<usize>> = sets
                .iter()
                .map(|hits| hits.iter().take(n_objects).map(|h| h.index).collect())
                .collect();
            let decoded: Vec<Vec<usize>> = (0..n_objects)
                .map(|rank| {
                    (0..f)
                        .map(|class| ranked[class].get(rank).copied().unwrap_or(0))
                        .collect()
                })
                .collect();
            let elapsed = start.elapsed();
            let mut a = decoded.clone();
            let mut b = objects.clone();
            a.sort();
            b.sort();
            ((a == b), elapsed, (f * m) as f64)
        })
        .collect();
    MethodResult::from_trials(outcomes)
}

/// One point of a threshold sweep: the threshold value and the measured
/// scene-recovery accuracy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The threshold tested.
    pub th: f64,
    /// Exact scene-recovery accuracy at that threshold.
    pub accuracy: f64,
}

/// Sweeps the Rep-3 threshold over `grid` for scenes of `n` objects on a
/// flat `F × M` taxonomy at dimension `d`, returning the measured accuracy
/// per grid point and the arg-max threshold `TH*` (the Fig. 3 measurement).
pub fn th_sweep(
    n: usize,
    f: usize,
    d: usize,
    m: usize,
    grid: &[f64],
    trials: usize,
    seed: u64,
) -> (f64, Vec<SweepPoint>) {
    let taxonomy = TaxonomyBuilder::new(d)
        .seed(hdc::derive_seed(&[seed, 0x5EEB]))
        .uniform_classes(f, &[m])
        .build()
        .expect("valid benchmark taxonomy");
    let encoder = Encoder::new(&taxonomy);

    let points: Vec<SweepPoint> = grid
        .iter()
        .map(|&th| {
            let factorizer = Factorizer::new(
                &taxonomy,
                FactorizeConfig {
                    threshold: ThresholdPolicy::Fixed(th),
                    max_objects: n + 3,
                    ..FactorizeConfig::default()
                },
            );
            let successes: usize = (0..trials as u64)
                .into_par_iter()
                .map(|trial| {
                    let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[seed, 7, trial]));
                    let scene = taxonomy.sample_scene(n, true, &mut rng);
                    let hv = encoder.encode_scene(&scene).expect("encodable");
                    let decoded = factorizer.factorize_multi(&hv).expect("well-formed query");
                    usize::from(decoded.to_scene().same_multiset(&scene))
                })
                .sum();
            SweepPoint {
                th,
                accuracy: successes as f64 / trials.max(1) as f64,
            }
        })
        .collect();

    // Accuracy is typically flat-topped in TH (a plateau of equally good
    // thresholds); report the plateau midpoint as TH*, which is what a
    // practitioner would pick and what makes the Fig. 3 trends visible.
    let best = points
        .iter()
        .map(|p| p.accuracy)
        .fold(f64::NEG_INFINITY, f64::max);
    let plateau: Vec<f64> = points
        .iter()
        .filter(|p| (p.accuracy - best).abs() < 1e-12)
        .map(|p| p.th)
        .collect();
    let th_star = match (plateau.first(), plateau.last()) {
        (Some(lo), Some(hi)) => 0.5 * (lo + hi),
        _ => 0.0,
    };
    (th_star, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorhd_rep1_is_accurate_at_modest_dim() {
        let result = run_factorhd_rep1(3, 16, 1024, 32, 1);
        assert!(result.accuracy > 0.95, "accuracy {}", result.accuracy);
        // F × (M + null) similarity checks.
        assert_eq!(result.avg_ops, 3.0 * 17.0);
    }

    #[test]
    fn resonator_solves_small() {
        let result = run_resonator(3, 8, 1024, 16, 1000, 2);
        assert!(result.accuracy > 0.9, "accuracy {}", result.accuracy);
        assert!(result.avg_ops >= 1.0);
    }

    #[test]
    fn imc_solves_small() {
        let result = run_imc(3, 8, 1024, 8, 2000, 3);
        assert!(result.accuracy > 0.9, "accuracy {}", result.accuracy);
    }

    #[test]
    fn ci_model_solves_single_objects() {
        let result = run_ci_model(3, 16, 512, 32, 4);
        assert!(result.accuracy > 0.9, "accuracy {}", result.accuracy);
    }

    #[test]
    fn rep23_settings_match_paper() {
        let rep2 = Rep23Setting::rep2();
        assert_eq!((rep2.m1, rep2.m2, rep2.n_objects), (256, 10, 1));
        let rep3 = Rep23Setting::rep3();
        assert_eq!(rep3.n_objects, 2);
    }

    #[test]
    fn rep2_accuracy_rises_with_dimension() {
        // Fig. 5(a) shape: strong by D = 1500, imperfect at low D.
        let hi = run_factorhd_rep23(Rep23Setting::rep2(), 1500, 32, 5);
        assert!(hi.accuracy > 0.9, "accuracy at D=1500: {}", hi.accuracy);
        let lo = run_factorhd_rep23(Rep23Setting::rep2(), 500, 32, 5);
        assert!(
            lo.accuracy < hi.accuracy,
            "low-D should be worse: {} vs {}",
            lo.accuracy,
            hi.accuracy
        );
    }

    #[test]
    fn rep3_reaches_high_accuracy_at_d2000() {
        // Fig. 5(b) shape: Rep 3 needs more dimensions than Rep 2.
        let result = run_factorhd_rep23(Rep23Setting::rep3(), 2000, 24, 5);
        assert!(result.accuracy > 0.8, "accuracy {}", result.accuracy);
    }

    #[test]
    fn th_sweep_finds_interior_optimum() {
        let grid: Vec<f64> = (1..=8).map(|i| i as f64 * 0.02).collect();
        let (th_star, points) = th_sweep(2, 3, 2048, 8, &grid, 24, 6);
        assert_eq!(points.len(), 8);
        // The plateau midpoint is neither the smallest nor an absurd value.
        assert!(th_star > 0.02 && th_star < 0.17, "th_star {th_star}");
        let best = points.iter().map(|p| p.accuracy).fold(0.0, f64::max);
        assert!(best > 0.7, "best sweep accuracy {best}");
    }
}
