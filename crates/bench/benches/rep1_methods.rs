//! FIG4 Criterion tracking bench: one Rep-1 factorization per method at a
//! reduced size (F = 3, M = 16, D = 512), so regressions in any solver's
//! inner loop show up in CI-sized runs.

use criterion::{criterion_group, criterion_main, Criterion};
use factorhd_baselines::{
    CiModel, FactorizationProblem, ImcConfig, ImcFactorizer, Resonator, ResonatorConfig,
};
use factorhd_core::{Encoder, FactorizeConfig, Factorizer, Scene, TaxonomyBuilder};
use std::hint::black_box;

const F: usize = 3;
const M: usize = 16;
const DIM: usize = 512;

fn bench_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("rep1_methods");

    // FactorHD.
    let taxonomy = TaxonomyBuilder::new(DIM / 2)
        .seed(1)
        .uniform_classes(F, &[M])
        .build()
        .expect("valid taxonomy");
    let encoder = Encoder::new(&taxonomy);
    let factorizer = Factorizer::new(&taxonomy, FactorizeConfig::default());
    let mut rng = hdc::rng_from_seed(2);
    let object = taxonomy.sample_object(&mut rng);
    let hv = encoder
        .encode_scene(&Scene::single(object))
        .expect("encodable");
    group.bench_function("factorhd_single", |b| {
        b.iter(|| {
            factorizer
                .factorize_single(black_box(&hv))
                .expect("decodes")
        })
    });

    // Resonator.
    let problem = FactorizationProblem::derive(3, F, M, DIM);
    let resonator = Resonator::new(ResonatorConfig::default());
    group.bench_function("resonator_solve", |b| {
        b.iter(|| resonator.solve(black_box(&problem)))
    });

    // IMC factorizer.
    let imc = ImcFactorizer::new(ImcConfig::default());
    group.bench_function("imc_solve", |b| b.iter(|| imc.solve(black_box(&problem))));

    // C-I model.
    let ci = CiModel::derive(4, F, M, DIM);
    let ci_hv = ci.encode_object(&[1, 2, 3]);
    group.bench_function("ci_factorize", |b| {
        b.iter(|| ci.factorize_object(black_box(&ci_hv)))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_methods
}
criterion_main!(benches);
