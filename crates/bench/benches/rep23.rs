//! FIG5 Criterion tracking bench: Rep-2 and Rep-3 factorizations at a
//! reduced hierarchy (64 × 10 items) and D = 1024.

use criterion::{criterion_group, criterion_main, Criterion};
use factorhd_core::{Encoder, FactorizeConfig, Factorizer, TaxonomyBuilder, ThresholdPolicy};
use std::hint::black_box;

fn bench_rep23(c: &mut Criterion) {
    let taxonomy = TaxonomyBuilder::new(1024)
        .seed(5)
        .uniform_classes(3, &[64, 10])
        .build()
        .expect("valid taxonomy");
    let encoder = Encoder::new(&taxonomy);
    let mut rng = hdc::rng_from_seed(6);

    let mut group = c.benchmark_group("rep23");

    let single = encoder
        .encode_scene(&factorhd_core::Scene::single(
            taxonomy.sample_object(&mut rng),
        ))
        .expect("encodable");
    let factorizer = Factorizer::new(&taxonomy, FactorizeConfig::default());
    group.bench_function("rep2_single_object", |b| {
        b.iter(|| {
            factorizer
                .factorize_single(black_box(&single))
                .expect("decodes")
        })
    });

    let scene = taxonomy.sample_scene(2, true, &mut rng);
    let multi = encoder.encode_scene(&scene).expect("encodable");
    let multi_factorizer = Factorizer::new(
        &taxonomy,
        FactorizeConfig {
            threshold: ThresholdPolicy::Analytic { n_objects: 2 },
            max_objects: 4,
            ..FactorizeConfig::default()
        },
    );
    group.bench_function("rep3_two_objects", |b| {
        b.iter(|| {
            multi_factorizer
                .factorize_multi(black_box(&multi))
                .expect("decodes")
        })
    });

    group.bench_function("encode_scene_two_objects", |b| {
        b.iter(|| encoder.encode_scene(black_box(&scene)).expect("encodes"))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_rep23
}
criterion_main!(benches);
