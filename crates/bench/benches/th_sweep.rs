//! FIG3 Criterion tracking bench: one threshold-sweep grid point (the unit
//! of work the Fig. 3 experiment repeats).

use criterion::{criterion_group, criterion_main, Criterion};
use factorhd_bench::th_sweep;
use std::hint::black_box;

fn bench_sweep_point(c: &mut Criterion) {
    c.bench_function("th_sweep_point_n2_f3_d1024_m8", |b| {
        b.iter(|| {
            let grid = [0.06f64];
            th_sweep(2, 3, 1024, 8, black_box(&grid), 8, 7)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep_point
}
criterion_main!(benches);
