//! Bench-harness entry for the scan-kernel throughput sweep; compiles
//! under `cargo bench --no-run` and runs the quick sweep under
//! `cargo bench -p factorhd-bench --bench kernels`.

fn main() {
    println!("cpu features: {}", hdc::kernels::cpu_features());
    println!(
        "selected kernel: {}",
        hdc::kernels::selected_kernel().name()
    );
    let compared = factorhd_bench::verify_kernel_equivalence();
    println!("kernels vs scalar oracle: bit-identical across {compared} (kernel, size) pairs");
    let points = factorhd_bench::kernel_points(true);
    factorhd_bench::kernel_bench_table(&points).print();
}
