//! Bench-harness entry for the packed-scan throughput sweep; compiles
//! under `cargo bench --no-run` and runs the quick sweep under
//! `cargo bench -p factorhd-bench --bench packed_scan`.

fn main() {
    let compared = factorhd_bench::verify_packed_equivalence();
    println!("packed vs reference top-1/top-k: bit-identical across {compared} scans");
    let points = factorhd_bench::packed_scan_points(true);
    factorhd_bench::packed_scan_table(&points).print();
}
