//! ABL Criterion tracking bench: the *time* cost of FactorHD's design
//! choices (the accuracy side lives in the `ablations` binary). Greedy vs
//! refined hierarchy descent, and acceptance-test on vs off.

use criterion::{criterion_group, criterion_main, Criterion};
use factorhd_core::{
    Encoder, FactorizeConfig, Factorizer, Scene, TaxonomyBuilder, ThresholdPolicy,
};
use std::hint::black_box;

fn bench_ablations(c: &mut Criterion) {
    let taxonomy = TaxonomyBuilder::new(1024)
        .seed(9)
        .uniform_classes(3, &[64, 10])
        .build()
        .expect("valid taxonomy");
    let encoder = Encoder::new(&taxonomy);
    let mut rng = hdc::rng_from_seed(10);
    let single = encoder
        .encode_scene(&Scene::single(taxonomy.sample_object(&mut rng)))
        .expect("encodable");
    let multi = encoder
        .encode_scene(&taxonomy.sample_scene(2, true, &mut rng))
        .expect("encodable");

    let mut group = c.benchmark_group("ablations");
    for width in [1usize, 4] {
        let factorizer = Factorizer::new(
            &taxonomy,
            FactorizeConfig {
                refine_width: width,
                ..FactorizeConfig::default()
            },
        );
        group.bench_function(format!("rep2_refine_width_{width}"), |b| {
            b.iter(|| {
                factorizer
                    .factorize_single(black_box(&single))
                    .expect("decodes")
            })
        });
    }
    for (name, accept) in [("off", 0.0f64), ("on", 0.75)] {
        let factorizer = Factorizer::new(
            &taxonomy,
            FactorizeConfig {
                accept_threshold: accept,
                threshold: ThresholdPolicy::Analytic { n_objects: 2 },
                max_objects: 4,
                ..FactorizeConfig::default()
            },
        );
        group.bench_function(format!("rep3_acceptance_{name}"), |b| {
            b.iter(|| {
                factorizer
                    .factorize_multi(black_box(&multi))
                    .expect("decodes")
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_ablations
}
criterion_main!(benches);
