//! TAB1/TAB2 Criterion tracking benches: the per-item costs of the
//! neuro-symbolic pipelines (pipeline construction happens once in setup;
//! the benches time encode/classify/decode only).

use criterion::{criterion_group, criterion_main, Criterion};
use factorhd_neural::datasets::raven::{RavenConfig, RavenScene};
use factorhd_neural::{CifarPipeline, CifarPipelineConfig, RavenPipeline, RavenPipelineConfig};
use std::hint::black_box;

fn bench_pipelines(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipelines");

    // CIFAR-10 at a reduced dimension to keep setup fast.
    let cifar = CifarPipeline::new(CifarPipelineConfig {
        dim: 1024,
        samples_per_class: 8,
        ..CifarPipelineConfig::cifar10()
    })
    .expect("valid pipeline");
    let mut rng = hdc::rng_from_seed(8);
    let image = cifar.encode_image(3, &mut rng).expect("encodes");
    group.bench_function("cifar10_encode_image", |b| {
        b.iter(|| cifar.encode_image(black_box(3), &mut rng).expect("encodes"))
    });
    group.bench_function("cifar10_classify", |b| {
        b.iter(|| cifar.classify(black_box(&image)).expect("classifies"))
    });

    // RAVEN 2x2 grid.
    let raven = RavenPipeline::new(
        RavenConfig::Grid2x2,
        RavenPipelineConfig {
            dim: 1000,
            ..RavenPipelineConfig::default()
        },
    )
    .expect("valid pipeline");
    let scene = RavenScene::sample_with_count(RavenConfig::Grid2x2, 2, &mut rng);
    let panel = raven.encode_scene(&scene, &mut rng).expect("encodes");
    group.bench_function("raven_encode_panel", |b| {
        b.iter(|| {
            raven
                .encode_scene(black_box(&scene), &mut rng)
                .expect("encodes")
        })
    });
    group.bench_function("raven_decode_panel", |b| {
        b.iter(|| raven.decode_scene(black_box(&panel)).expect("decodes"))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipelines
}
criterion_main!(benches);
