//! Bench-harness entry for the serving-engine throughput sweep; compiles
//! under `cargo bench --no-run` and runs the quick sweep under
//! `cargo bench -p factorhd-bench --bench engine_throughput`.

fn main() {
    let compared = factorhd_bench::verify_artifact_round_trip();
    println!("artifact save→load→factorize: bit-identical across {compared} responses");
    let points = factorhd_bench::engine_throughput_points(true);
    factorhd_bench::engine_throughput_table(&points).print();
}
