//! Microbenchmarks of the HDC substrate operators (the kernels every
//! experiment is built from): bind, dot, bundle, clip, codebook search and
//! weighted superposition.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hdc::{AccumHv, Bind, BipolarHv, Codebook};
use std::hint::black_box;

const DIM: usize = 2048;

fn bench_ops(c: &mut Criterion) {
    let mut rng = hdc::rng_from_seed(1);
    let a = BipolarHv::random(DIM, &mut rng);
    let b = BipolarHv::random(DIM, &mut rng);
    let accum = {
        let mut acc = AccumHv::zeros(DIM);
        for _ in 0..4 {
            acc.add_bipolar(&BipolarHv::random(DIM, &mut rng), 1);
        }
        acc
    };
    let ternary = accum.clip_ternary();
    let codebook = Codebook::derive(2, 64, DIM);
    let weights: Vec<i64> = (0..64).map(|i| (i % 7) as i64 - 3).collect();

    let mut group = c.benchmark_group("ops");
    group.bench_function("bipolar_bind", |bench| {
        bench.iter(|| black_box(&a).bind(black_box(&b)))
    });
    group.bench_function("bipolar_dot", |bench| {
        bench.iter(|| black_box(&a).dot(black_box(&b)))
    });
    group.bench_function("accum_add_bipolar", |bench| {
        bench.iter_batched(
            || accum.clone(),
            |mut acc| acc.add_bipolar(black_box(&a), 1),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("accum_clip_ternary", |bench| {
        bench.iter(|| black_box(&accum).clip_ternary())
    });
    group.bench_function("ternary_dot_bipolar", |bench| {
        bench.iter(|| black_box(&ternary).dot_bipolar(black_box(&a)))
    });
    group.bench_function("codebook_sims_m64", |bench| {
        bench.iter(|| black_box(&codebook).sims(black_box(&accum)))
    });
    group.bench_function("codebook_weighted_superposition_m64", |bench| {
        bench.iter(|| black_box(&codebook).weighted_superposition(black_box(&weights)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_ops
}
criterion_main!(benches);
