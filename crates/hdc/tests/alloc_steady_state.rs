//! Zero-allocation guarantee for the serving-path scans: once warm, the
//! caller-buffer scan variants (`top_k_into`, `top_k_many_into`,
//! `dots_into`, `above_threshold_into`) must not touch the heap at all —
//! the bounded candidate heaps live in `hdc`'s thread-local scan
//! scratch, the final ordering is an in-place unstable sort, and the
//! output buffers are caller-owned and reused.
//!
//! Proven with a counting global allocator: every `alloc`/`realloc` in
//! the process increments a counter, and the steady-state scan loop must
//! leave it untouched. This file holds exactly one test so no sibling
//! test thread can allocate concurrently and blur the measurement.
//!
//! The loop runs with **metrics recording enabled**: the scan stage
//! timers (`hdc::stage`) sit inside every `_into` scan, so this test
//! also proves the telemetry layer keeps the zero-allocation guarantee
//! (its tables are statically allocated atomics; see
//! docs/OBSERVABILITY.md).

use hdc::{AsPackedQuery, Bundle, Codebook, PackedQuery, TernaryHv};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Delegates to the system allocator, counting every allocation and
/// reallocation (deallocations are free to happen — the invariant under
/// test is "no new memory", not "no memory").
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure delegation to `System`, which upholds the `GlobalAlloc`
// contract; the counter is a side effect invisible to allocation
// semantics.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Completed-span count of the scan stage (`hdc::stage::Stage::Scan`).
fn scan_stage_count() -> u64 {
    hdc::stage::stage_totals()
        .iter()
        .find(|total| total.stage == hdc::Stage::Scan)
        .expect("scan stage present")
        .count
}

#[test]
fn steady_state_scans_perform_zero_heap_allocations() {
    const K: usize = 4;
    const THRESHOLD: f64 = 0.0;

    // Serving-sized geometry, well below the rayon fork threshold so the
    // scans stay on the single-threaded zero-allocation path.
    let cb = Codebook::derive(0x00A1_10C8, 256, 2048);
    let view = cb.packed_view();
    let queries: Vec<TernaryHv> = (0..8)
        .map(|i| {
            let mut rng = hdc::rng_from_seed(0x5CA7C4 + i);
            let a = hdc::BipolarHv::random(2048, &mut rng);
            let b = hdc::BipolarHv::random(2048, &mut rng);
            a.bundle(&b).clip_ternary()
        })
        .collect();
    let packed: Vec<PackedQuery<'_>> = queries.iter().map(|q| q.packed_query()).collect();

    let mut hits = Vec::new();
    let mut many = Vec::new();
    let mut dots = Vec::new();
    let mut th_hits = Vec::new();

    let run_all = |hits: &mut Vec<_>, many: &mut _, dots: &mut Vec<_>, th: &mut Vec<_>| {
        for q in &packed {
            view.top_k_into(*q, K, hits);
            view.dots_into(*q, dots);
            view.above_threshold_into(*q, THRESHOLD, th);
        }
        view.top_k_many_into(&packed, K, many);
    };

    // Warm-up: grow every caller buffer and the thread-local scratch to
    // the workload's steady-state sizes (and pay the one-time kernel
    // dispatch, which reads the environment).
    for _ in 0..2 {
        run_all(&mut hits, &mut many, &mut dots, &mut th_hits);
    }

    // Reference copies for the post-measurement correctness check
    // (cloning allocates, so it happens before the snapshot).
    let expected_hits = hits.clone();
    let expected_many = many.clone();
    let expected_dots = dots.clone();
    let expected_th = th_hits.clone();

    // The measured rounds run with stage-timer recording on (the
    // default; re-asserted here in case a sibling build flipped it).
    hdc::stage::set_metrics_recording(true);
    let scans_before = scan_stage_count();

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..25 {
        run_all(&mut hits, &mut many, &mut dots, &mut th_hits);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state scans must not allocate (saw {} allocations over 25 warm rounds)",
        after - before
    );

    // Recording was live during the allocation-free rounds: the scan
    // stage must have counted every timed span (25 rounds × 8 queries ×
    // 3 per-query scans + 25 many-scans), unless the telemetry layer was
    // compiled out, in which case the timers are inert by design.
    if hdc::stage::metrics_recording() {
        assert_eq!(
            scan_stage_count() - scans_before,
            25 * (8 * 3 + 1),
            "scan stage timer must record every steady-state scan"
        );
    } else {
        assert!(hdc::stage::metrics_compiled_out());
    }

    // The allocation-free rounds still computed the right answers.
    assert_eq!(hits, expected_hits);
    assert_eq!(many, expected_many);
    assert_eq!(dots, expected_dots);
    assert_eq!(th_hits, expected_th);
    assert_eq!(many.len(), queries.len());
    assert!(many.iter().all(|m| m.len() == K));
}
