//! Kernel exactness suite: every scan kernel the running CPU can
//! dispatch must be **bit-identical** to the scalar reference oracle —
//! on raw word buffers (`hamming_words` / `masked_hamming_words`) across
//! lengths straddling every SIMD lane width and the Harley–Seal 16-word
//! block, and end to end through `PackedShards::top_k`, where small
//! dimensions force exact similarity ties and the tie *ordering* must
//! survive a forced-kernel override.
//!
//! CI runs the whole test suite once more with `FACTORHD_KERNEL=scalar`
//! and once with `RUSTFLAGS="-C target-cpu=native"`, so both dispatch
//! extremes are exercised on every push; this file is the per-kernel
//! sweep in between.

use hdc::kernels::{self, SCALAR};
use hdc::{AsPackedQuery, Bundle, Codebook, TernaryHv};
use proptest::prelude::*;

/// Word-buffer families: pseudorandom, all-zero (empty masks), all-ones
/// (every carry level of the ladder), and alternating signs.
fn arb_buffer(len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        proptest::collection::vec(any::<u64>(), len),
        Just(vec![0u64; len]),
        Just(vec![u64::MAX; len]),
        Just(vec![0xAAAA_AAAA_AAAA_AAAAu64; len]),
        Just(vec![0x5555_5555_5555_5555u64; len]),
    ]
}

/// Lengths 0..=257: empty buffers, every lane-width boundary (4, 8, 16
/// words) with its off-by-one neighbors, and multi-block tails.
fn arb_len() -> impl Strategy<Value = usize> {
    prop_oneof![
        0usize..=17,
        Just(63usize),
        Just(64usize),
        Just(65usize),
        Just(127usize),
        Just(128usize),
        Just(129usize),
        Just(255usize),
        Just(256usize),
        Just(257usize),
        0usize..=257,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn hamming_words_matches_scalar_for_every_kernel(
        (a, b) in arb_len().prop_flat_map(|n| (arb_buffer(n), arb_buffer(n)))
    ) {
        let expected = SCALAR.hamming_words(&a, &b);
        for kernel in kernels::available_kernels() {
            prop_assert_eq!(
                kernel.hamming_words(&a, &b),
                expected,
                "kernel {} diverged at {} words",
                kernel.name(),
                a.len()
            );
        }
    }

    #[test]
    fn masked_hamming_words_matches_scalar_for_every_kernel(
        (s, m, w) in arb_len().prop_flat_map(|n| (arb_buffer(n), arb_buffer(n), arb_buffer(n)))
    ) {
        let expected = SCALAR.masked_hamming_words(&s, &m, &w);
        for kernel in kernels::available_kernels() {
            prop_assert_eq!(
                kernel.masked_hamming_words(&s, &m, &w),
                expected,
                "kernel {} diverged at {} words",
                kernel.name(),
                s.len()
            );
        }
    }

    #[test]
    fn top_k_tie_ordering_survives_forced_kernel_override(
        (seed, m, k) in (any::<u64>(), 2usize..64, 1usize..80)
    ) {
        // Tiny dimension ⇒ a handful of distinct dot values over up to 64
        // items ⇒ guaranteed exact ties; the scalar reference ordering
        // (descending similarity, ties by ascending index) must be
        // reproduced under every forced kernel.
        let dim = 16;
        let cb = Codebook::derive(seed, m, dim);
        let query = {
            let mut rng = hdc::rng_from_seed(seed ^ 0xD15A);
            let a = hdc::BipolarHv::random(dim, &mut rng);
            let b = hdc::BipolarHv::random(dim, &mut rng);
            a.bundle(&b).clip_ternary()
        };
        let reference = cb.top_k(&query, k);
        let original = kernels::selected_kernel();
        for kernel in kernels::available_kernels() {
            kernels::force_kernel(kernel.name()).expect("available kernel");
            let packed = cb.packed_view().top_k(query.packed_query(), k);
            prop_assert_eq!(
                &packed,
                &reference,
                "kernel {} changed top-{} ordering",
                kernel.name(),
                k
            );
        }
        kernels::force_kernel(original.name()).expect("restore selection");
    }

    #[test]
    fn ternary_scan_queries_agree_across_kernels(
        (seed, dim) in (any::<u64>(), 1usize..300)
    ) {
        // End-to-end dot products (dense + masked planes) through the
        // packed query path, every kernel against the scalar oracle.
        let mut rng = hdc::rng_from_seed(seed);
        let item = hdc::BipolarHv::random(dim, &mut rng);
        let t: TernaryHv = {
            let a = hdc::BipolarHv::random(dim, &mut rng);
            let b = hdc::BipolarHv::random(dim, &mut rng);
            a.bundle(&b).clip_ternary()
        };
        let expected = t.dot_bipolar(&item);
        let original = kernels::selected_kernel();
        for kernel in kernels::available_kernels() {
            kernels::force_kernel(kernel.name()).expect("available kernel");
            let cb = Codebook::from_items(vec![item.clone()]).expect("one item");
            let mut dots = Vec::new();
            cb.packed_view().dots_into(t.packed_query(), &mut dots);
            prop_assert_eq!(dots[0], expected, "kernel {}", kernel.name());
        }
        kernels::force_kernel(original.name()).expect("restore selection");
    }
}
