//! Property-based tests for the VSA algebra invariants.

use hdc::prelude::*;
use hdc::rng_from_seed;
use proptest::prelude::*;

fn arb_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..=8,     // tiny, exercises tail masking
        60usize..=70,   // around one word boundary
        120usize..=200, // multi-word
        Just(1024usize),
    ]
}

fn arb_bipolar(dim: usize) -> impl Strategy<Value = BipolarHv> {
    any::<u64>().prop_map(move |seed| BipolarHv::random(dim, &mut rng_from_seed(seed)))
}

fn arb_ternary(dim: usize) -> impl Strategy<Value = TernaryHv> {
    proptest::collection::vec(-1i8..=1, dim)
        .prop_map(|c| TernaryHv::from_components(&c).expect("valid ternary components"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bipolar_bind_self_inverse((dim, s1, s2) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), any::<u64>()))) {
        let a = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let b = BipolarHv::random(dim, &mut rng_from_seed(s2));
        prop_assert_eq!(a.bind(&b).bind(&b), a);
    }

    #[test]
    fn bipolar_bind_commutative((dim, s1, s2) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), any::<u64>()))) {
        let a = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let b = BipolarHv::random(dim, &mut rng_from_seed(s2));
        prop_assert_eq!(a.bind(&b), b.bind(&a));
    }

    #[test]
    fn bipolar_dot_symmetric((dim, s1, s2) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), any::<u64>()))) {
        let a = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let b = BipolarHv::random(dim, &mut rng_from_seed(s2));
        prop_assert_eq!(a.dot(&b), b.dot(&a));
    }

    #[test]
    fn bipolar_dot_bounds((dim, s1, s2) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), any::<u64>()))) {
        let a = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let b = BipolarHv::random(dim, &mut rng_from_seed(s2));
        let dot = a.dot(&b);
        prop_assert!(dot.abs() <= dim as i64);
        // dot and dim always share parity for bipolar vectors.
        prop_assert_eq!((dot.rem_euclid(2)) as usize, dim % 2);
    }

    #[test]
    fn binding_distributes_over_dot((dim, s1, s2, s3) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), any::<u64>(), any::<u64>()))) {
        // <a ⊙ c, b ⊙ c> = <a, b>: binding by a common key preserves similarity.
        let a = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let b = BipolarHv::random(dim, &mut rng_from_seed(s2));
        let c = BipolarHv::random(dim, &mut rng_from_seed(s3));
        prop_assert_eq!(a.bind(&c).dot(&b.bind(&c)), a.dot(&b));
    }

    #[test]
    fn ternary_bind_associative(dim in 1usize..100) {
        let run = |s: u64| {
            let comps: Vec<i8> = (0..dim).map(|i| ((hdc::derive_seed(&[s, i as u64]) % 3) as i8) - 1).collect();
            TernaryHv::from_components(&comps).expect("valid components")
        };
        let (a, b, c) = (run(1), run(2), run(3));
        prop_assert_eq!(a.bind(&b).bind(&c), a.bind(&b.bind(&c)));
    }

    #[test]
    fn ternary_density_in_unit_interval(dim in 1usize..300, seed in any::<u64>()) {
        let comps: Vec<i8> = (0..dim).map(|i| ((hdc::derive_seed(&[seed, i as u64]) % 3) as i8) - 1).collect();
        let t = TernaryHv::from_components(&comps).expect("valid components");
        prop_assert!(t.density() >= 0.0 && t.density() <= 1.0);
        prop_assert_eq!(t.nonzero_count(), comps.iter().filter(|&&c| c != 0).count());
    }

    #[test]
    fn accum_bundle_commutes((dim, s1, s2) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), any::<u64>()))) {
        let a = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let b = BipolarHv::random(dim, &mut rng_from_seed(s2));
        prop_assert_eq!(a.bundle(&b), b.bundle(&a));
    }

    #[test]
    fn accum_unbind_recovers_dot((dim, s1, s2, s3) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), any::<u64>(), any::<u64>()))) {
        // (acc ⊙ k) · (v ⊙ k) == acc · v for any bipolar key k.
        let v = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let w = BipolarHv::random(dim, &mut rng_from_seed(s2));
        let k = BipolarHv::random(dim, &mut rng_from_seed(s3));
        let acc = v.bundle(&w);
        let unbound = acc.bind(&k);
        prop_assert_eq!(unbound.dot_bipolar(&v.bind(&k)), acc.dot_bipolar(&v));
    }

    #[test]
    fn clip_ternary_then_dot_consistent(dim in 1usize..200, s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let b = BipolarHv::random(dim, &mut rng_from_seed(s2));
        let clause = a.bundle(&b).clip_ternary();
        let naive: i64 = (0..dim).map(|i| clause.component(i) as i64 * a.component(i) as i64).sum();
        prop_assert_eq!(clause.dot_bipolar(&a), naive);
    }

    #[test]
    fn permute_composes(dim in 2usize..150, s in any::<u64>(), k1 in 0usize..300, k2 in 0usize..300) {
        let v = BipolarHv::random(dim, &mut rng_from_seed(s));
        prop_assert_eq!(v.permute(k1).permute(k2), v.permute((k1 + k2) % dim));
    }

    #[test]
    fn codebook_best_match_is_argmax(seed in any::<u64>(), m in 2usize..32) {
        let cb = Codebook::derive(seed, m, 256);
        let q = BipolarHv::random(256, &mut rng_from_seed(seed ^ 0xABCD));
        let sims = cb.sims(&q);
        let best = cb.best_match(&q).expect("non-empty codebook");
        let max = sims.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((best.sim - max).abs() < 1e-12);
    }

    #[test]
    fn codebook_threshold_consistent(seed in any::<u64>(), m in 2usize..32, th in -0.5f64..0.9) {
        let cb = Codebook::derive(seed, m, 256);
        let q = BipolarHv::random(256, &mut rng_from_seed(seed ^ 0x1234));
        let hits = cb.above_threshold(&q, th);
        let sims = cb.sims(&q);
        let expected = sims.iter().filter(|&&s| s > th).count();
        prop_assert_eq!(hits.len(), expected);
        for hit in hits {
            prop_assert!(hit.sim > th);
            prop_assert!((sims[hit.index] - hit.sim).abs() < 1e-12);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // Packed backend vs the f64/scalar reference (the oracle): dot,
    // Hamming, and every batched codebook search must agree exactly —
    // including at non-multiple-of-64 dimensions where tail-word masking
    // can go wrong.
    // ------------------------------------------------------------------

    #[test]
    fn packed_dot_and_hamming_match_reference((dim, s1, s2) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), any::<u64>()))) {
        let a = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let b = BipolarHv::random(dim, &mut rng_from_seed(s2));
        let (pa, pb) = (PackedHv::from_bipolar(&a), PackedHv::from_bipolar(&b));
        prop_assert_eq!(pa.dot(&pb), a.dot(&b));
        prop_assert_eq!(pa.hamming(&pb), a.hamming(&b));
        prop_assert_eq!(pa.sim(&pb), a.sim(&b));
    }

    #[test]
    fn packed_ternary_dot_matches_reference((dim, s) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>()))) {
        let t = {
            let a = BipolarHv::random(dim, &mut rng_from_seed(s));
            let b = BipolarHv::random(dim, &mut rng_from_seed(s ^ 0xD00D));
            a.bundle(&b).clip_ternary()
        };
        let b = BipolarHv::random(dim, &mut rng_from_seed(s ^ 0xBEEF));
        let pt = PackedHv::from_ternary(&t);
        prop_assert_eq!(pt.dot(&PackedHv::from_bipolar(&b)), t.dot_bipolar(&b));
        prop_assert_eq!(pt.sim_to(&b), t.sim_bipolar(&b));
    }

    #[test]
    fn packed_bind_matches_reference((dim, s1, s2) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), any::<u64>()))) {
        let make = |s: u64| {
            let a = BipolarHv::random(dim, &mut rng_from_seed(s));
            let b = BipolarHv::random(dim, &mut rng_from_seed(s ^ 0x5150));
            a.bundle(&b).clip_ternary()
        };
        let (t, u) = (make(s1), make(s2));
        let packed = PackedHv::from_ternary(&t).bind(&PackedHv::from_ternary(&u));
        let reference: TernaryHv = t.bind(&u);
        prop_assert_eq!(packed.to_ternary(), reference);
    }

    #[test]
    fn packed_top_k_matches_reference((dim, seed, m, k) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), 1usize..48, 0usize..64))) {
        let cb = Codebook::derive(seed, m, dim);
        // Small dims force many exact similarity ties: the packed heap
        // merge must reproduce the reference's stable tie ordering.
        let q = {
            let a = BipolarHv::random(dim, &mut rng_from_seed(seed ^ 0xACE));
            let b = BipolarHv::random(dim, &mut rng_from_seed(seed ^ 0xDEAF));
            a.bundle(&b).clip_ternary()
        };
        prop_assert_eq!(q.scan_top_k(&cb, k), cb.top_k(&q, k));
        let dense = BipolarHv::random(dim, &mut rng_from_seed(seed ^ 0xF00));
        prop_assert_eq!(dense.scan_top_k(&cb, k), cb.top_k(&dense, k));
    }

    #[test]
    fn packed_above_threshold_matches_reference((dim, seed, m, th) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), 1usize..48, -0.6f64..0.9))) {
        let cb = Codebook::derive(seed, m, dim);
        let q = {
            let a = BipolarHv::random(dim, &mut rng_from_seed(seed ^ 0x7777));
            let b = BipolarHv::random(dim, &mut rng_from_seed(seed ^ 0x8888));
            a.bundle(&b).clip_ternary()
        };
        prop_assert_eq!(q.scan_above_threshold(&cb, th), cb.above_threshold(&q, th));
        prop_assert_eq!(q.scan_best(&cb).unwrap(), cb.best_match(&q).unwrap());
    }

    #[test]
    fn packed_dots_match_per_item_reference((dim, seed, m) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), 1usize..48))) {
        let cb = Codebook::derive(seed, m, dim);
        let q = BipolarHv::random(dim, &mut rng_from_seed(seed ^ 0x1CE));
        let reference: Vec<i64> = cb.iter().map(|item| q.dot(item)).collect();
        prop_assert_eq!(cb.dots_bipolar(&q), reference);
    }

    #[test]
    fn accum_scan_route_matches_packed_route((dim, seed, m) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), 1usize..32))) {
        // The AccumHv reference route and the packed ternary route answer
        // identically for any query that fits both representations.
        let cb = Codebook::derive(seed, m, dim);
        let t = {
            let a = BipolarHv::random(dim, &mut rng_from_seed(seed ^ 0x3A3));
            let b = BipolarHv::random(dim, &mut rng_from_seed(seed ^ 0x4B4));
            a.bundle(&b).clip_ternary()
        };
        let acc = t.to_accum();
        prop_assert_eq!(acc.scan_top_k(&cb, 5), t.scan_top_k(&cb, 5));
        prop_assert_eq!(acc.scan_above_threshold(&cb, 0.05), t.scan_above_threshold(&cb, 0.05));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn arb_ternary_produces_valid_vectors(t in arb_ternary(32)) {
        prop_assert_eq!(t.dim(), 32);
        for i in 0..32 {
            prop_assert!((-1..=1).contains(&t.component(i)));
        }
    }

    #[test]
    fn arb_bipolar_produces_valid_vectors(v in arb_bipolar(65)) {
        prop_assert_eq!(v.dim(), 65);
        prop_assert_eq!(v.dot(&v), 65);
    }
}
