//! Property-based tests for the VSA algebra invariants.

use hdc::prelude::*;
use hdc::rng_from_seed;
use proptest::prelude::*;

fn arb_dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        1usize..=8,     // tiny, exercises tail masking
        60usize..=70,   // around one word boundary
        120usize..=200, // multi-word
        Just(1024usize),
    ]
}

fn arb_bipolar(dim: usize) -> impl Strategy<Value = BipolarHv> {
    any::<u64>().prop_map(move |seed| BipolarHv::random(dim, &mut rng_from_seed(seed)))
}

fn arb_ternary(dim: usize) -> impl Strategy<Value = TernaryHv> {
    proptest::collection::vec(-1i8..=1, dim)
        .prop_map(|c| TernaryHv::from_components(&c).expect("valid ternary components"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bipolar_bind_self_inverse((dim, s1, s2) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), any::<u64>()))) {
        let a = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let b = BipolarHv::random(dim, &mut rng_from_seed(s2));
        prop_assert_eq!(a.bind(&b).bind(&b), a);
    }

    #[test]
    fn bipolar_bind_commutative((dim, s1, s2) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), any::<u64>()))) {
        let a = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let b = BipolarHv::random(dim, &mut rng_from_seed(s2));
        prop_assert_eq!(a.bind(&b), b.bind(&a));
    }

    #[test]
    fn bipolar_dot_symmetric((dim, s1, s2) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), any::<u64>()))) {
        let a = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let b = BipolarHv::random(dim, &mut rng_from_seed(s2));
        prop_assert_eq!(a.dot(&b), b.dot(&a));
    }

    #[test]
    fn bipolar_dot_bounds((dim, s1, s2) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), any::<u64>()))) {
        let a = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let b = BipolarHv::random(dim, &mut rng_from_seed(s2));
        let dot = a.dot(&b);
        prop_assert!(dot.abs() <= dim as i64);
        // dot and dim always share parity for bipolar vectors.
        prop_assert_eq!((dot.rem_euclid(2)) as usize, dim % 2);
    }

    #[test]
    fn binding_distributes_over_dot((dim, s1, s2, s3) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), any::<u64>(), any::<u64>()))) {
        // <a ⊙ c, b ⊙ c> = <a, b>: binding by a common key preserves similarity.
        let a = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let b = BipolarHv::random(dim, &mut rng_from_seed(s2));
        let c = BipolarHv::random(dim, &mut rng_from_seed(s3));
        prop_assert_eq!(a.bind(&c).dot(&b.bind(&c)), a.dot(&b));
    }

    #[test]
    fn ternary_bind_associative(dim in 1usize..100) {
        let run = |s: u64| {
            let comps: Vec<i8> = (0..dim).map(|i| ((hdc::derive_seed(&[s, i as u64]) % 3) as i8) - 1).collect();
            TernaryHv::from_components(&comps).expect("valid components")
        };
        let (a, b, c) = (run(1), run(2), run(3));
        prop_assert_eq!(a.bind(&b).bind(&c), a.bind(&b.bind(&c)));
    }

    #[test]
    fn ternary_density_in_unit_interval(dim in 1usize..300, seed in any::<u64>()) {
        let comps: Vec<i8> = (0..dim).map(|i| ((hdc::derive_seed(&[seed, i as u64]) % 3) as i8) - 1).collect();
        let t = TernaryHv::from_components(&comps).expect("valid components");
        prop_assert!(t.density() >= 0.0 && t.density() <= 1.0);
        prop_assert_eq!(t.nonzero_count(), comps.iter().filter(|&&c| c != 0).count());
    }

    #[test]
    fn accum_bundle_commutes((dim, s1, s2) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), any::<u64>()))) {
        let a = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let b = BipolarHv::random(dim, &mut rng_from_seed(s2));
        prop_assert_eq!(a.bundle(&b), b.bundle(&a));
    }

    #[test]
    fn accum_unbind_recovers_dot((dim, s1, s2, s3) in arb_dim().prop_flat_map(|d| (Just(d), any::<u64>(), any::<u64>(), any::<u64>()))) {
        // (acc ⊙ k) · (v ⊙ k) == acc · v for any bipolar key k.
        let v = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let w = BipolarHv::random(dim, &mut rng_from_seed(s2));
        let k = BipolarHv::random(dim, &mut rng_from_seed(s3));
        let acc = v.bundle(&w);
        let unbound = acc.bind(&k);
        prop_assert_eq!(unbound.dot_bipolar(&v.bind(&k)), acc.dot_bipolar(&v));
    }

    #[test]
    fn clip_ternary_then_dot_consistent(dim in 1usize..200, s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = BipolarHv::random(dim, &mut rng_from_seed(s1));
        let b = BipolarHv::random(dim, &mut rng_from_seed(s2));
        let clause = a.bundle(&b).clip_ternary();
        let naive: i64 = (0..dim).map(|i| clause.component(i) as i64 * a.component(i) as i64).sum();
        prop_assert_eq!(clause.dot_bipolar(&a), naive);
    }

    #[test]
    fn permute_composes(dim in 2usize..150, s in any::<u64>(), k1 in 0usize..300, k2 in 0usize..300) {
        let v = BipolarHv::random(dim, &mut rng_from_seed(s));
        prop_assert_eq!(v.permute(k1).permute(k2), v.permute((k1 + k2) % dim));
    }

    #[test]
    fn codebook_best_match_is_argmax(seed in any::<u64>(), m in 2usize..32) {
        let cb = Codebook::derive(seed, m, 256);
        let q = BipolarHv::random(256, &mut rng_from_seed(seed ^ 0xABCD));
        let sims = cb.sims(&q);
        let best = cb.best_match(&q).expect("non-empty codebook");
        let max = sims.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((best.sim - max).abs() < 1e-12);
    }

    #[test]
    fn codebook_threshold_consistent(seed in any::<u64>(), m in 2usize..32, th in -0.5f64..0.9) {
        let cb = Codebook::derive(seed, m, 256);
        let q = BipolarHv::random(256, &mut rng_from_seed(seed ^ 0x1234));
        let hits = cb.above_threshold(&q, th);
        let sims = cb.sims(&q);
        let expected = sims.iter().filter(|&&s| s > th).count();
        prop_assert_eq!(hits.len(), expected);
        for hit in hits {
            prop_assert!(hit.sim > th);
            prop_assert!((sims[hit.index] - hit.sim).abs() < 1e-12);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn arb_ternary_produces_valid_vectors(t in arb_ternary(32)) {
        prop_assert_eq!(t.dim(), 32);
        for i in 0..32 {
            prop_assert!((-1..=1).contains(&t.component(i)));
        }
    }

    #[test]
    fn arb_bipolar_produces_valid_vectors(v in arb_bipolar(65)) {
        prop_assert_eq!(v.dim(), 65);
        prop_assert_eq!(v.dot(&v), 65);
    }
}
