//! Integer accumulator hypervectors (`Z^D`).
//!
//! Bundling several objects keeps component sums un-clipped ("when bundling
//! HVs of different objects, we retain the results in Z^D", §II-A), so the
//! scene representation and all intermediate unbinding results live here.

use crate::ops::{Bind, Bundle, Permute};
use crate::{BipolarHv, TernaryHv, WORD_BITS};
use std::fmt;

/// An integer-valued hypervector in `Z^D`, the bundling accumulator.
///
/// ```
/// use hdc::{AccumHv, BipolarHv};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let a = BipolarHv::random(256, &mut rng);
/// let b = BipolarHv::random(256, &mut rng);
///
/// let mut scene = AccumHv::zeros(256);
/// scene.add_bipolar(&a, 1);
/// scene.add_bipolar(&b, 1);
/// // The bundle stays similar to each member.
/// assert!(scene.sim_bipolar(&a) > 0.3);
/// assert!(scene.sim_bipolar(&b) > 0.3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AccumHv {
    data: Vec<i32>,
    dim: usize,
}

impl AccumHv {
    /// The all-zero accumulator.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn zeros(dim: usize) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        AccumHv {
            data: vec![0; dim],
            dim,
        }
    }

    /// Builds from explicit integer components.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty.
    pub fn from_components(components: Vec<i32>) -> Self {
        assert!(
            !components.is_empty(),
            "hypervector dimension must be positive"
        );
        let dim = components.len();
        AccumHv {
            data: components,
            dim,
        }
    }

    /// The dimensionality `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow the raw components.
    #[inline]
    pub fn components(&self) -> &[i32] {
        &self.data
    }

    /// Component at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    #[inline]
    pub fn component(&self, index: usize) -> i32 {
        self.data[index]
    }

    /// Adds `weight ×` a bipolar vector in place.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_bipolar(&mut self, rhs: &BipolarHv, weight: i32) {
        assert_eq!(
            self.dim,
            rhs.dim(),
            "dimension mismatch: {} vs {}",
            self.dim,
            rhs.dim()
        );
        for (w_idx, &word) in rhs.words().iter().enumerate() {
            let base = w_idx * WORD_BITS;
            let end = (base + WORD_BITS).min(self.dim);
            for i in base..end {
                if word >> (i - base) & 1 == 1 {
                    self.data[i] -= weight;
                } else {
                    self.data[i] += weight;
                }
            }
        }
    }

    /// Adds `weight ×` a ternary vector in place.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_ternary(&mut self, rhs: &TernaryHv, weight: i32) {
        assert_eq!(
            self.dim,
            rhs.dim(),
            "dimension mismatch: {} vs {}",
            self.dim,
            rhs.dim()
        );
        for i in 0..self.dim {
            self.data[i] += weight * rhs.component(i) as i32;
        }
    }

    /// Adds another accumulator in place.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn add_accum(&mut self, rhs: &AccumHv) {
        assert_eq!(
            self.dim, rhs.dim,
            "dimension mismatch: {} vs {}",
            self.dim, rhs.dim
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Subtracts another accumulator in place (used by the Rep-3
    /// reconstruct-and-exclude loop).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn sub_accum(&mut self, rhs: &AccumHv) {
        assert_eq!(
            self.dim, rhs.dim,
            "dimension mismatch: {} vs {}",
            self.dim, rhs.dim
        );
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }

    /// Subtracts a ternary vector in place.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn sub_ternary(&mut self, rhs: &TernaryHv) {
        self.add_ternary(rhs, -1);
    }

    /// Multiplies every component by `factor`.
    pub fn scale(&mut self, factor: i32) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Component-wise multiplication by a bipolar vector, in place. This is
    /// the unbinding step FactorHD applies to a scene bundle.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn bind_bipolar_assign(&mut self, rhs: &BipolarHv) {
        assert_eq!(
            self.dim,
            rhs.dim(),
            "dimension mismatch: {} vs {}",
            self.dim,
            rhs.dim()
        );
        for (w_idx, &word) in rhs.words().iter().enumerate() {
            if word == 0 {
                continue;
            }
            let base = w_idx * WORD_BITS;
            let end = (base + WORD_BITS).min(self.dim);
            for i in base..end {
                if word >> (i - base) & 1 == 1 {
                    self.data[i] = -self.data[i];
                }
            }
        }
    }

    /// Serialized length of [`AccumHv::to_le_bytes`] for dimension `dim`:
    /// one little-endian `i32` per component.
    #[inline]
    pub fn byte_len(dim: usize) -> usize {
        dim * 4
    }

    /// Serializes the components as little-endian `i32` values — the
    /// word-level wire form used by the `.fhd` model-artifact codec.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::byte_len(self.dim));
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Reconstructs an accumulator from [`AccumHv::to_le_bytes`] output.
    ///
    /// # Errors
    ///
    /// [`crate::HdcError::InvalidDimension`] if `dim == 0`, or
    /// [`crate::HdcError::InvalidEncoding`] if `bytes` is not exactly
    /// [`AccumHv::byte_len`] long.
    pub fn from_le_bytes(dim: usize, bytes: &[u8]) -> Result<Self, crate::HdcError> {
        if dim == 0 {
            return Err(crate::HdcError::InvalidDimension(0));
        }
        let expected = Self::byte_len(dim);
        if bytes.len() != expected {
            return Err(crate::HdcError::InvalidEncoding {
                expected,
                actual: bytes.len(),
            });
        }
        let data: Vec<i32> = bytes
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        Ok(AccumHv { data, dim })
    }

    /// The exact ternary view of this accumulator when every component
    /// already lies in `{-1, 0, 1}` (true for any single-object scene and
    /// for fully-peeled Rep-3 residuals), `None` otherwise.
    ///
    /// The conversion is lossless, so similarity kernels running on the
    /// returned [`TernaryHv`] produce bit-identical integer dot products
    /// while replacing per-component scalar loops with word-level
    /// popcounts — the fast path the factorizer takes when it can.
    pub fn to_ternary_lossless(&self) -> Option<TernaryHv> {
        if self.data.iter().any(|&v| !(-1..=1).contains(&v)) {
            return None;
        }
        let comps: Vec<i8> = self.data.iter().map(|&v| v as i8).collect();
        Some(TernaryHv::from_components(&comps).expect("dim > 0 by construction"))
    }

    /// Clips to `{-1, 0, 1}` by sign, the FactorHD clause normalization.
    pub fn clip_ternary(&self) -> TernaryHv {
        let comps: Vec<i8> = self.data.iter().map(|&v| v.signum() as i8).collect();
        TernaryHv::from_components(&comps).expect("dim > 0 by construction")
    }

    /// Collapses to bipolar by sign; zero components resolve to `+1`
    /// (deterministic tie-breaking, documented behaviour).
    pub fn sign_bipolar(&self) -> BipolarHv {
        let comps: Vec<i8> = self
            .data
            .iter()
            .map(|&v| if v < 0 { -1 } else { 1 })
            .collect();
        BipolarHv::from_components(&comps).expect("dim > 0 by construction")
    }

    /// Exact integer dot product with a bipolar vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[inline]
    pub fn dot_bipolar(&self, rhs: &BipolarHv) -> i64 {
        assert_eq!(
            self.dim,
            rhs.dim(),
            "dimension mismatch: {} vs {}",
            self.dim,
            rhs.dim()
        );
        let mut total: i64 = 0;
        for (w_idx, &word) in rhs.words().iter().enumerate() {
            let base = w_idx * WORD_BITS;
            let end = (base + WORD_BITS).min(self.dim);
            for i in base..end {
                let v = self.data[i] as i64;
                if word >> (i - base) & 1 == 1 {
                    total -= v;
                } else {
                    total += v;
                }
            }
        }
        total
    }

    /// Exact integer dot product with a ternary vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[inline]
    pub fn dot_ternary(&self, rhs: &TernaryHv) -> i64 {
        assert_eq!(
            self.dim,
            rhs.dim(),
            "dimension mismatch: {} vs {}",
            self.dim,
            rhs.dim()
        );
        let mut total: i64 = 0;
        for i in 0..self.dim {
            total += self.data[i] as i64 * rhs.component(i) as i64;
        }
        total
    }

    /// Exact integer dot product with another accumulator.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[inline]
    pub fn dot(&self, rhs: &AccumHv) -> i64 {
        assert_eq!(
            self.dim, rhs.dim,
            "dimension mismatch: {} vs {}",
            self.dim, rhs.dim
        );
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| a as i64 * b as i64)
            .sum()
    }

    /// Normalized dot similarity against a bipolar vector (`dot / D`).
    #[inline]
    pub fn sim_bipolar(&self, rhs: &BipolarHv) -> f64 {
        self.dot_bipolar(rhs) as f64 / self.dim as f64
    }

    /// Normalized dot similarity against a ternary vector (`dot / D`).
    #[inline]
    pub fn sim_ternary(&self, rhs: &TernaryHv) -> f64 {
        self.dot_ternary(rhs) as f64 / self.dim as f64
    }

    /// Euclidean norm of the components.
    pub fn norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }

    /// `true` if every component is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&v| v == 0)
    }
}

impl Bind<BipolarHv> for AccumHv {
    type Output = AccumHv;

    fn bind(&self, rhs: &BipolarHv) -> AccumHv {
        let mut out = self.clone();
        out.bind_bipolar_assign(rhs);
        out
    }
}

impl Bundle for AccumHv {
    type Output = AccumHv;

    fn bundle(&self, rhs: &AccumHv) -> AccumHv {
        let mut out = self.clone();
        out.add_accum(rhs);
        out
    }
}

impl Permute for AccumHv {
    fn permute(&self, shift: usize) -> Self {
        let shift = shift % self.dim;
        let mut data = vec![0; self.dim];
        for i in 0..self.dim {
            data[(i + shift) % self.dim] = self.data[i];
        }
        AccumHv {
            data,
            dim: self.dim,
        }
    }
}

impl From<BipolarHv> for AccumHv {
    fn from(value: BipolarHv) -> Self {
        value.to_accum()
    }
}

impl From<TernaryHv> for AccumHv {
    fn from(value: TernaryHv) -> Self {
        value.to_accum()
    }
}

impl fmt::Debug for AccumHv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<i32> = self.data.iter().take(8).copied().collect();
        f.debug_struct("AccumHv")
            .field("dim", &self.dim)
            .field("head", &preview)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn add_bipolar_matches_components() {
        let mut rng = rng_from_seed(30);
        let v = BipolarHv::random(130, &mut rng);
        let mut acc = AccumHv::zeros(130);
        acc.add_bipolar(&v, 3);
        for i in 0..130 {
            assert_eq!(acc.component(i), 3 * v.component(i) as i32);
        }
    }

    #[test]
    fn add_then_sub_ternary_is_identity() {
        let mut rng = rng_from_seed(31);
        let a = BipolarHv::random(200, &mut rng);
        let b = BipolarHv::random(200, &mut rng);
        let t = a.bundle(&b).clip_ternary();
        let mut acc = AccumHv::zeros(200);
        acc.add_ternary(&t, 1);
        acc.sub_ternary(&t);
        assert!(acc.is_zero());
    }

    #[test]
    fn bind_bipolar_is_self_inverse() {
        let mut rng = rng_from_seed(32);
        let v = BipolarHv::random(99, &mut rng);
        let orig = AccumHv::from_components((0..99).map(|i| i - 50).collect());
        let mut acc = orig.clone();
        acc.bind_bipolar_assign(&v);
        acc.bind_bipolar_assign(&v);
        assert_eq!(acc, orig);
    }

    #[test]
    fn dot_bipolar_matches_naive() {
        let mut rng = rng_from_seed(33);
        let v = BipolarHv::random(257, &mut rng);
        let acc = AccumHv::from_components((0..257).map(|i| (i % 7) - 3).collect());
        let naive: i64 = (0..257)
            .map(|i| acc.component(i) as i64 * v.component(i) as i64)
            .sum();
        assert_eq!(acc.dot_bipolar(&v), naive);
    }

    #[test]
    fn dot_accum_matches_naive() {
        let a = AccumHv::from_components(vec![1, -2, 3, 0]);
        let b = AccumHv::from_components(vec![4, 5, -6, 7]);
        assert_eq!(a.dot(&b), 4 - 10 - 18);
    }

    #[test]
    fn clip_ternary_signs() {
        let acc = AccumHv::from_components(vec![5, -3, 0, 1, -1]);
        let t = acc.clip_ternary();
        let comps: Vec<i8> = t.iter().collect();
        assert_eq!(comps, vec![1, -1, 0, 1, -1]);
    }

    #[test]
    fn sign_bipolar_breaks_ties_positive() {
        let acc = AccumHv::from_components(vec![2, -2, 0]);
        let b = acc.sign_bipolar();
        assert_eq!(b.component(0), 1);
        assert_eq!(b.component(1), -1);
        assert_eq!(b.component(2), 1);
    }

    #[test]
    fn bundle_preserves_member_similarity() {
        let mut rng = rng_from_seed(34);
        let members: Vec<BipolarHv> = (0..5).map(|_| BipolarHv::random(2048, &mut rng)).collect();
        let mut scene = AccumHv::zeros(2048);
        for m in &members {
            scene.add_bipolar(m, 1);
        }
        let outsider = BipolarHv::random(2048, &mut rng);
        for m in &members {
            assert!(
                scene.sim_bipolar(m) > 0.2,
                "member lost: {}",
                scene.sim_bipolar(m)
            );
        }
        assert!(scene.sim_bipolar(&outsider).abs() < 0.15);
    }

    #[test]
    fn le_bytes_round_trip() {
        let acc = AccumHv::from_components(vec![5, -3, 0, i32::MAX, i32::MIN, 1]);
        let bytes = acc.to_le_bytes();
        assert_eq!(bytes.len(), AccumHv::byte_len(6));
        assert_eq!(AccumHv::from_le_bytes(6, &bytes).unwrap(), acc);
        assert!(AccumHv::from_le_bytes(0, &[]).is_err());
        assert!(AccumHv::from_le_bytes(6, &bytes[1..]).is_err());
    }

    #[test]
    fn ternary_lossless_view() {
        let small = AccumHv::from_components(vec![1, -1, 0, 1]);
        let t = small.to_ternary_lossless().expect("in range");
        let comps: Vec<i8> = t.iter().collect();
        assert_eq!(comps, vec![1, -1, 0, 1]);
        assert_eq!(t.to_accum(), small);
        let big = AccumHv::from_components(vec![1, 2, 0]);
        assert!(big.to_ternary_lossless().is_none());
    }

    #[test]
    fn ternary_lossless_sims_match_accum_sims() {
        let mut rng = rng_from_seed(35);
        let a = BipolarHv::random(500, &mut rng);
        let b = BipolarHv::random(500, &mut rng);
        let acc = a.bundle(&b).clip_ternary().to_accum();
        let t = acc.to_ternary_lossless().expect("clipped values");
        let probe = BipolarHv::random(500, &mut rng);
        assert_eq!(acc.dot_bipolar(&probe), t.dot_bipolar(&probe));
    }

    #[test]
    fn scale_and_norm() {
        let mut acc = AccumHv::from_components(vec![3, 4]);
        assert!((acc.norm() - 5.0).abs() < 1e-12);
        acc.scale(2);
        assert_eq!(acc.components(), &[6, 8]);
    }

    #[test]
    fn permute_shifts() {
        let acc = AccumHv::from_components(vec![1, 2, 3]);
        let p = acc.permute(1);
        assert_eq!(p.components(), &[3, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn add_accum_mismatch_panics() {
        let mut a = AccumHv::zeros(4);
        let b = AccumHv::zeros(5);
        a.add_accum(&b);
    }
}
