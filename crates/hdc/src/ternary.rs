//! Ternary (`{-1, 0, +1}`) hypervectors stored as two packed bit planes.
//!
//! FactorHD clips every single-object clause bundle into this space (§III-A
//! of the paper: "we restrict and clip the component values of bundling
//! results of single object to the range of {-1, 0, 1}"), storing 2 bits per
//! dimension. The `mask` plane marks non-zero components; the `sign` plane
//! carries their sign (set bit ⇔ `-1`). Sign bits under a cleared mask bit
//! are kept at zero so equal vectors are bit-identical.

use crate::ops::{Bind, Bundle, Permute};
use crate::{clear_padding, words_for, AccumHv, BipolarHv, HdcError, WORD_BITS};
use std::fmt;

/// A ternary hypervector in `{-1, 0, +1}^D`.
///
/// ```
/// use hdc::{AccumHv, BipolarHv, TernaryHv};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let label = BipolarHv::random(512, &mut rng);
/// let item = BipolarHv::random(512, &mut rng);
///
/// // A FactorHD clause: clip(label + item) into {-1, 0, 1}.
/// let mut acc = AccumHv::zeros(512);
/// acc.add_bipolar(&label, 1);
/// acc.add_bipolar(&item, 1);
/// let clause = acc.clip_ternary();
/// // The clause stays similar to both of its members.
/// assert!(clause.sim_bipolar(&label) > 0.3);
/// assert!(clause.sim_bipolar(&item) > 0.3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TernaryHv {
    /// Bit set ⇔ component is non-zero.
    mask: Vec<u64>,
    /// Bit set ⇔ component is negative (only meaningful where mask is set).
    sign: Vec<u64>,
    dim: usize,
}

impl TernaryHv {
    /// The all-zero ternary vector.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn zeros(dim: usize) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        let n = words_for(dim);
        TernaryHv {
            mask: vec![0; n],
            sign: vec![0; n],
            dim,
        }
    }

    /// Builds from raw planes, canonicalizing sign bits under zero mask.
    pub(crate) fn from_planes(mut mask: Vec<u64>, mut sign: Vec<u64>, dim: usize) -> Self {
        debug_assert_eq!(mask.len(), words_for(dim));
        debug_assert_eq!(sign.len(), words_for(dim));
        clear_padding(&mut mask, dim);
        for (s, m) in sign.iter_mut().zip(&mask) {
            *s &= m;
        }
        TernaryHv { mask, sign, dim }
    }

    /// Builds a vector from explicit `{-1, 0, 1}` components.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDimension`] for an empty slice or for any
    /// component outside `{-1, 0, 1}`.
    pub fn from_components(components: &[i8]) -> Result<Self, HdcError> {
        if components.is_empty() {
            return Err(HdcError::InvalidDimension(0));
        }
        let mut hv = TernaryHv::zeros(components.len());
        for (i, &c) in components.iter().enumerate() {
            let (w, b) = (i / WORD_BITS, i % WORD_BITS);
            match c {
                0 => {}
                1 => hv.mask[w] |= 1 << b,
                -1 => {
                    hv.mask[w] |= 1 << b;
                    hv.sign[w] |= 1 << b;
                }
                _ => return Err(HdcError::InvalidDimension(components.len())),
            }
        }
        Ok(hv)
    }

    /// The dimensionality `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed non-zero mask plane (bit set ⇔ component is non-zero).
    #[inline]
    pub(crate) fn mask_words(&self) -> &[u64] {
        &self.mask
    }

    /// The packed sign plane (bit set ⇔ component is `-1`; canonical:
    /// zero under a cleared mask bit).
    #[inline]
    pub(crate) fn sign_words(&self) -> &[u64] {
        &self.sign
    }

    /// Component at `index` (`-1`, `0` or `+1`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    #[inline]
    pub fn component(&self, index: usize) -> i8 {
        assert!(
            index < self.dim,
            "component {index} out of bounds (dim {})",
            self.dim
        );
        let (w, b) = (index / WORD_BITS, index % WORD_BITS);
        if self.mask[w] >> b & 1 == 0 {
            0
        } else if self.sign[w] >> b & 1 == 1 {
            -1
        } else {
            1
        }
    }

    /// Number of non-zero components.
    #[inline]
    pub fn nonzero_count(&self) -> usize {
        self.mask.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of non-zero components, `nonzero_count / D`.
    #[inline]
    pub fn density(&self) -> f64 {
        self.nonzero_count() as f64 / self.dim as f64
    }

    /// Dot product with a bipolar vector, exact integer result.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[inline]
    pub fn dot_bipolar(&self, rhs: &BipolarHv) -> i64 {
        assert_eq!(
            self.dim,
            rhs.dim(),
            "dimension mismatch: {} vs {}",
            self.dim,
            rhs.dim()
        );
        let mut nonzero = 0u32;
        let mut neg = 0u32;
        for ((m, s), r) in self.mask.iter().zip(&self.sign).zip(rhs.words()) {
            nonzero += m.count_ones();
            neg += ((s ^ r) & m).count_ones();
        }
        nonzero as i64 - 2 * neg as i64
    }

    /// Dot product with another ternary vector, exact integer result.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[inline]
    pub fn dot(&self, rhs: &TernaryHv) -> i64 {
        assert_eq!(
            self.dim, rhs.dim,
            "dimension mismatch: {} vs {}",
            self.dim, rhs.dim
        );
        let mut common = 0u32;
        let mut neg = 0u32;
        for i in 0..self.mask.len() {
            let both = self.mask[i] & rhs.mask[i];
            common += both.count_ones();
            neg += ((self.sign[i] ^ rhs.sign[i]) & both).count_ones();
        }
        common as i64 - 2 * neg as i64
    }

    /// Normalized dot similarity against a bipolar vector (`dot / D`).
    #[inline]
    pub fn sim_bipolar(&self, rhs: &BipolarHv) -> f64 {
        self.dot_bipolar(rhs) as f64 / self.dim as f64
    }

    /// Normalized dot similarity against another ternary vector (`dot / D`).
    #[inline]
    pub fn sim(&self, rhs: &TernaryHv) -> f64 {
        self.dot(rhs) as f64 / self.dim as f64
    }

    /// Serialized length of [`TernaryHv::to_le_bytes`] for dimension `dim`:
    /// two bit planes of one little-endian `u64` per 64 components each.
    #[inline]
    pub fn byte_len(dim: usize) -> usize {
        2 * words_for(dim) * 8
    }

    /// Serializes the mask plane followed by the sign plane as
    /// little-endian words — the word-level wire form used by the `.fhd`
    /// model-artifact codec.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::byte_len(self.dim));
        for w in self.mask.iter().chain(&self.sign) {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Reconstructs a vector from [`TernaryHv::to_le_bytes`] output.
    /// Padding bits and sign bits under a zero mask are cleared, so the
    /// result is canonical.
    ///
    /// # Errors
    ///
    /// [`HdcError::InvalidDimension`] if `dim == 0`, or
    /// [`HdcError::InvalidEncoding`] if `bytes` is not exactly
    /// [`TernaryHv::byte_len`] long.
    pub fn from_le_bytes(dim: usize, bytes: &[u8]) -> Result<Self, HdcError> {
        if dim == 0 {
            return Err(HdcError::InvalidDimension(0));
        }
        let expected = Self::byte_len(dim);
        if bytes.len() != expected {
            return Err(HdcError::InvalidEncoding {
                expected,
                actual: bytes.len(),
            });
        }
        let n = words_for(dim);
        let word_at = |plane: usize, i: usize| {
            let start = (plane * n + i) * 8;
            u64::from_le_bytes(bytes[start..start + 8].try_into().expect("8-byte chunk"))
        };
        let mask: Vec<u64> = (0..n).map(|i| word_at(0, i)).collect();
        let sign: Vec<u64> = (0..n).map(|i| word_at(1, i)).collect();
        Ok(TernaryHv::from_planes(mask, sign, dim))
    }

    /// Expands into an integer accumulator.
    pub fn to_accum(&self) -> AccumHv {
        let mut acc = AccumHv::zeros(self.dim);
        acc.add_ternary(self, 1);
        acc
    }

    /// Iterates over components as `i8` values.
    pub fn iter(&self) -> impl Iterator<Item = i8> + '_ {
        (0..self.dim).map(move |i| self.component(i))
    }
}

impl Bind for TernaryHv {
    type Output = TernaryHv;

    /// Component-wise product: zero wherever either operand is zero, signs
    /// multiply elsewhere. This is how FactorHD binds clipped clauses into
    /// an object hypervector.
    #[inline]
    fn bind(&self, rhs: &TernaryHv) -> TernaryHv {
        assert_eq!(
            self.dim, rhs.dim,
            "dimension mismatch: {} vs {}",
            self.dim, rhs.dim
        );
        let n = self.mask.len();
        let mut mask = Vec::with_capacity(n);
        let mut sign = Vec::with_capacity(n);
        for i in 0..n {
            let m = self.mask[i] & rhs.mask[i];
            mask.push(m);
            sign.push((self.sign[i] ^ rhs.sign[i]) & m);
        }
        TernaryHv {
            mask,
            sign,
            dim: self.dim,
        }
    }
}

impl Bind<BipolarHv> for TernaryHv {
    type Output = TernaryHv;

    /// Binding with a bipolar vector flips signs but keeps the zero pattern;
    /// FactorHD uses this to unbind class labels from clipped clauses.
    #[inline]
    fn bind(&self, rhs: &BipolarHv) -> TernaryHv {
        assert_eq!(
            self.dim,
            rhs.dim(),
            "dimension mismatch: {} vs {}",
            self.dim,
            rhs.dim()
        );
        let mut sign = Vec::with_capacity(self.sign.len());
        for (i, s) in self.sign.iter().enumerate() {
            sign.push((s ^ rhs.words()[i]) & self.mask[i]);
        }
        TernaryHv {
            mask: self.mask.clone(),
            sign,
            dim: self.dim,
        }
    }
}

impl Bundle for TernaryHv {
    type Output = AccumHv;

    fn bundle(&self, rhs: &TernaryHv) -> AccumHv {
        let mut acc = self.to_accum();
        acc.add_ternary(rhs, 1);
        acc
    }
}

impl Permute for TernaryHv {
    fn permute(&self, shift: usize) -> Self {
        let shift = shift % self.dim;
        let mut out = TernaryHv::zeros(self.dim);
        for i in 0..self.dim {
            let c = self.component(i);
            if c != 0 {
                let j = (i + shift) % self.dim;
                let (w, b) = (j / WORD_BITS, j % WORD_BITS);
                out.mask[w] |= 1 << b;
                if c == -1 {
                    out.sign[w] |= 1 << b;
                }
            }
        }
        out
    }
}

impl From<BipolarHv> for TernaryHv {
    fn from(value: BipolarHv) -> Self {
        value.to_ternary()
    }
}

impl fmt::Debug for TernaryHv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<i8> = self.iter().take(8).collect();
        f.debug_struct("TernaryHv")
            .field("dim", &self.dim)
            .field("density", &self.density())
            .field("head", &preview)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    fn random_ternary(dim: usize, seed: u64) -> TernaryHv {
        let mut rng = rng_from_seed(seed);
        let a = BipolarHv::random(dim, &mut rng);
        let b = BipolarHv::random(dim, &mut rng);
        a.bundle(&b).clip_ternary()
    }

    #[test]
    fn from_components_round_trips() {
        let comps = [1i8, 0, -1, -1, 0, 1, 0];
        let hv = TernaryHv::from_components(&comps).unwrap();
        let back: Vec<i8> = hv.iter().collect();
        assert_eq!(back, comps);
        assert_eq!(hv.nonzero_count(), 4);
    }

    #[test]
    fn from_components_rejects_invalid() {
        assert!(TernaryHv::from_components(&[]).is_err());
        assert!(TernaryHv::from_components(&[2]).is_err());
    }

    #[test]
    fn bind_zero_annihilates() {
        let t = random_ternary(256, 1);
        let z = TernaryHv::zeros(256);
        assert_eq!(t.bind(&z), z);
    }

    #[test]
    fn bind_matches_componentwise_product() {
        let a = random_ternary(200, 2);
        let b = random_ternary(200, 3);
        let c = a.bind(&b);
        for i in 0..200 {
            assert_eq!(c.component(i), a.component(i) * b.component(i));
        }
    }

    #[test]
    fn bind_bipolar_matches_componentwise_product() {
        let a = random_ternary(200, 4);
        let mut rng = rng_from_seed(5);
        let b = BipolarHv::random(200, &mut rng);
        let c: TernaryHv = a.bind(&b);
        for i in 0..200 {
            assert_eq!(c.component(i), a.component(i) * b.component(i));
        }
    }

    #[test]
    fn dot_matches_naive() {
        let a = random_ternary(333, 6);
        let b = random_ternary(333, 7);
        let naive: i64 = (0..333)
            .map(|i| a.component(i) as i64 * b.component(i) as i64)
            .sum();
        assert_eq!(a.dot(&b), naive);
    }

    #[test]
    fn dot_bipolar_matches_naive() {
        let a = random_ternary(333, 8);
        let mut rng = rng_from_seed(9);
        let b = BipolarHv::random(333, &mut rng);
        let naive: i64 = (0..333)
            .map(|i| a.component(i) as i64 * b.component(i) as i64)
            .sum();
        assert_eq!(a.dot_bipolar(&b), naive);
    }

    #[test]
    fn clipped_two_bundle_has_half_density() {
        // clip(a + b) for independent bipolar a,b: zero where they disagree
        // (probability 1/2).
        let t = random_ternary(20_000, 10);
        assert!((t.density() - 0.5).abs() < 0.02, "density {}", t.density());
    }

    #[test]
    fn label_unbinding_recovers_agreement_mask() {
        // (label + item) clipped, then bound with label, is +1 wherever
        // label and item agreed and 0 elsewhere — the "memorization clause"
        // elimination at the heart of FactorHD's factorization.
        let mut rng = rng_from_seed(11);
        let label = BipolarHv::random(1024, &mut rng);
        let item = BipolarHv::random(1024, &mut rng);
        let clause = label.bundle(&item).clip_ternary();
        let unbound: TernaryHv = clause.bind(&label);
        for i in 0..1024 {
            let expected = if label.component(i) == item.component(i) {
                1
            } else {
                0
            };
            assert_eq!(unbound.component(i), expected);
        }
    }

    #[test]
    fn le_bytes_round_trip() {
        for (dim, seed) in [(1usize, 20u64), (63, 21), (64, 22), (130, 23), (1024, 24)] {
            let t = random_ternary(dim, seed);
            let bytes = t.to_le_bytes();
            assert_eq!(bytes.len(), TernaryHv::byte_len(dim));
            assert_eq!(TernaryHv::from_le_bytes(dim, &bytes).unwrap(), t);
        }
    }

    #[test]
    fn from_le_bytes_canonicalizes() {
        // Sign bits under a zero mask and padding bits must be cleared.
        let mut bytes = vec![0u8; TernaryHv::byte_len(3)];
        bytes[0] = 0b101; // mask
        bytes[8] = 0b111; // sign (bit 1 is under a zero mask)
        let t = TernaryHv::from_le_bytes(3, &bytes).unwrap();
        assert_eq!(t, TernaryHv::from_components(&[-1, 0, -1]).unwrap());
    }

    #[test]
    fn from_le_bytes_validates() {
        assert!(TernaryHv::from_le_bytes(0, &[]).is_err());
        assert!(matches!(
            TernaryHv::from_le_bytes(64, &[0u8; 8]),
            Err(HdcError::InvalidEncoding {
                expected: 16,
                actual: 8
            })
        ));
    }

    #[test]
    fn permute_round_trip() {
        let t = random_ternary(101, 12);
        assert_eq!(t.permute(0), t);
        assert_eq!(t.permute(40).permute(61), t);
    }

    #[test]
    fn canonical_signs_give_equality() {
        // Two routes to the same logical vector must compare equal.
        let a = TernaryHv::from_components(&[1, 0, -1]).unwrap();
        let b_raw = TernaryHv::from_planes(vec![0b101], vec![0b110], 3);
        assert_eq!(a, b_raw);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_dim_mismatch_panics() {
        let a = TernaryHv::zeros(10);
        let b = TernaryHv::zeros(11);
        let _ = a.dot(&b);
    }
}
