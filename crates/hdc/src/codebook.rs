//! Codebooks: indexed collections of quasi-orthogonal item hypervectors.
//!
//! A codebook holds the `M` holographic item vectors of one class (or one
//! subclass level) and answers the similarity queries every factorizer is
//! built from: best match, top-k, above-threshold, and weighted
//! superposition (the resonator "cleanup" step).

use crate::packed::{AsPackedQuery, PackedShards};
use crate::{AccumHv, BipolarHv, HdcError, Similarity, TernaryHv, WORD_BITS};
use rand::Rng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Monotonic codebook-generation source: every constructed codebook gets
/// a fresh stamp, so derived structures (the packed shard table, external
/// caches) can assert they were built from exactly this item set.
static GENERATION: AtomicU64 = AtomicU64::new(1);

fn next_generation() -> u64 {
    GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// One similarity-search result: item index plus its normalized similarity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchHit {
    /// Index of the item inside the codebook.
    pub index: usize,
    /// Normalized dot similarity of the query to that item.
    pub sim: f64,
}

/// An ordered set of `M` random bipolar item hypervectors.
///
/// ```
/// use hdc::Codebook;
///
/// let cb = Codebook::derive(42, 16, 1024);
/// let query = cb.item(5).clone();
/// let best = cb.best_match(&query).unwrap();
/// assert_eq!(best.index, 5);
/// assert!((best.sim - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct Codebook {
    items: Vec<BipolarHv>,
    dim: usize,
    /// Row-major dense `i8` mirror of the items, built lazily for the
    /// weighted-superposition kernel (resonator cleanup).
    dense: OnceLock<Vec<i8>>,
    /// Contiguous sharded word table for packed scans, built lazily by
    /// [`Codebook::packed_view`] (or primed eagerly by the `.fhd` artifact
    /// loader via [`Codebook::from_le_bytes_with_shards`]).
    packed: OnceLock<PackedShards>,
    /// Construction stamp guarding derived structures against staleness;
    /// see [`Codebook::generation`].
    generation: u64,
}

impl PartialEq for Codebook {
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.items == other.items
    }
}

impl Codebook {
    /// Creates a codebook of `m` random items sampled from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyCodebook`] if `m == 0` and
    /// [`HdcError::InvalidDimension`] if `dim == 0`.
    pub fn random<R: Rng + ?Sized>(m: usize, dim: usize, rng: &mut R) -> Result<Self, HdcError> {
        if m == 0 {
            return Err(HdcError::EmptyCodebook);
        }
        if dim == 0 {
            return Err(HdcError::InvalidDimension(0));
        }
        let items = (0..m).map(|_| BipolarHv::random(dim, rng)).collect();
        Ok(Codebook {
            items,
            dim,
            dense: OnceLock::new(),
            packed: OnceLock::new(),
            generation: next_generation(),
        })
    }

    /// Deterministically derives a codebook from a seed. The same
    /// `(seed, m, dim)` always produces the same items, which lets the
    /// taxonomy generate per-parent child codebooks lazily.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0` or `dim == 0`.
    pub fn derive(seed: u64, m: usize, dim: usize) -> Self {
        let mut rng = crate::rng_from_seed(seed);
        Codebook::random(m, dim, &mut rng).expect("validated m and dim")
    }

    /// Builds a codebook from existing item vectors (e.g. trained
    /// prototypes from the neural pipeline).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyCodebook`] for an empty list and
    /// [`HdcError::DimensionMismatch`] if items disagree on dimension.
    pub fn from_items(items: Vec<BipolarHv>) -> Result<Self, HdcError> {
        let dim = items.first().ok_or(HdcError::EmptyCodebook)?.dim();
        if let Some(bad) = items.iter().find(|v| v.dim() != dim) {
            return Err(HdcError::DimensionMismatch {
                left: dim,
                right: bad.dim(),
            });
        }
        Ok(Codebook {
            items,
            dim,
            dense: OnceLock::new(),
            packed: OnceLock::new(),
            generation: next_generation(),
        })
    }

    /// Serialized length of [`Codebook::to_le_bytes`] for `m` items of
    /// dimension `dim`.
    #[inline]
    pub fn byte_len(m: usize, dim: usize) -> usize {
        m * BipolarHv::byte_len(dim)
    }

    /// Serializes all items, concatenated in index order, each in the
    /// [`BipolarHv::to_le_bytes`] wire form.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::byte_len(self.items.len(), self.dim));
        for item in &self.items {
            out.extend_from_slice(&item.to_le_bytes());
        }
        out
    }

    /// Reconstructs a codebook of `m` items of dimension `dim` from
    /// [`Codebook::to_le_bytes`] output.
    ///
    /// # Errors
    ///
    /// [`HdcError::EmptyCodebook`] if `m == 0`,
    /// [`HdcError::InvalidDimension`] if `dim == 0`, or
    /// [`HdcError::InvalidEncoding`] if `bytes` is not exactly
    /// [`Codebook::byte_len`] long.
    pub fn from_le_bytes(m: usize, dim: usize, bytes: &[u8]) -> Result<Self, HdcError> {
        if m == 0 {
            return Err(HdcError::EmptyCodebook);
        }
        if dim == 0 {
            return Err(HdcError::InvalidDimension(0));
        }
        let expected = Self::byte_len(m, dim);
        if bytes.len() != expected {
            return Err(HdcError::InvalidEncoding {
                expected,
                actual: bytes.len(),
            });
        }
        let stride = BipolarHv::byte_len(dim);
        let items = bytes
            .chunks_exact(stride)
            .map(|chunk| BipolarHv::from_le_bytes(dim, chunk))
            .collect::<Result<Vec<_>, _>>()?;
        Codebook::from_items(items)
    }

    /// Reconstructs a codebook from [`Codebook::to_le_bytes`] output
    /// **with its packed shard table primed** at the given geometry —
    /// the wire payload *is* the shard table's word layout, so the `.fhd`
    /// artifact loader uses this to make packed scans warm from the first
    /// request instead of rebuilding the table on first use.
    ///
    /// # Errors
    ///
    /// The conditions of [`Codebook::from_le_bytes`], plus
    /// [`HdcError::InvalidShardLen`] if `shard_len == 0`.
    pub fn from_le_bytes_with_shards(
        m: usize,
        dim: usize,
        bytes: &[u8],
        shard_len: usize,
    ) -> Result<Self, HdcError> {
        if shard_len == 0 {
            return Err(HdcError::InvalidShardLen);
        }
        let cb = Codebook::from_le_bytes(m, dim, bytes)?;
        let shards = PackedShards::build(&cb.items, dim, shard_len, cb.generation);
        cb.packed
            .set(shards)
            .expect("freshly constructed codebook has no packed view");
        Ok(cb)
    }

    /// The construction stamp of this codebook's item set. Structures
    /// derived from the items — the [`PackedShards`] table, external
    /// caches — carry the generation they were built from, so a table can
    /// never silently describe a different item set (replacing a codebook,
    /// e.g. via `Taxonomy::set_codebook`, always installs a freshly
    /// stamped codebook with an empty view).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The packed shard table over this codebook's items, built on first
    /// use and cached (construction is one pass over the item words).
    ///
    /// All batched searches — [`PackedShards::top_k`],
    /// [`PackedShards::above_threshold`], [`PackedShards::dots`] — run on
    /// this contiguous table instead of chasing per-item allocations, and
    /// return results bit-identical to the scalar reference methods on
    /// this codebook.
    pub fn packed_view(&self) -> &PackedShards {
        self.packed.get_or_init(|| {
            PackedShards::build(
                &self.items,
                self.dim,
                PackedShards::default_shard_len(self.dim),
                self.generation,
            )
        })
    }

    /// `true` when the packed shard table has already been built (always
    /// true for codebooks loaded via
    /// [`Codebook::from_le_bytes_with_shards`]).
    #[inline]
    pub fn packed_view_ready(&self) -> bool {
        self.packed.get().is_some()
    }

    /// The shard geometry a `.fhd` artifact should persist for this
    /// codebook: the built table's geometry when the view exists, the
    /// default geometry for this dimension otherwise. Does **not** force
    /// the table to be built.
    #[inline]
    pub fn packed_shard_len(&self) -> usize {
        self.packed.get().map_or_else(
            || PackedShards::default_shard_len(self.dim),
            |s| s.shard_len(),
        )
    }

    /// Number of items `M`.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the codebook has no items (never constructible publicly).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The hypervector dimension `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow item `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn item(&self, index: usize) -> &BipolarHv {
        &self.items[index]
    }

    /// Fallible item access.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::ItemOutOfBounds`] for an invalid index.
    pub fn get(&self, index: usize) -> Result<&BipolarHv, HdcError> {
        self.items.get(index).ok_or(HdcError::ItemOutOfBounds {
            index,
            len: self.items.len(),
        })
    }

    /// Iterates over the item vectors.
    pub fn iter(&self) -> std::slice::Iter<'_, BipolarHv> {
        self.items.iter()
    }

    /// Normalized similarity of `query` to every item, in item order.
    pub fn sims<Q: Similarity>(&self, query: &Q) -> Vec<f64> {
        self.items.iter().map(|item| query.sim_to(item)).collect()
    }

    /// Integer dot products of a bipolar query against every item
    /// (the resonator hot path), served from the contiguous packed shard
    /// table — bit-identical to per-item [`BipolarHv::dot`] calls.
    pub fn dots_bipolar(&self, query: &BipolarHv) -> Vec<i64> {
        self.packed_view().dots(query.packed_query())
    }

    /// The single most similar item to `query`.
    ///
    /// # Errors
    ///
    /// Never fails for a constructed codebook; returns
    /// [`HdcError::EmptyCodebook`] defensively.
    pub fn best_match<Q: Similarity>(&self, query: &Q) -> Result<SearchHit, HdcError> {
        let mut best: Option<SearchHit> = None;
        for (index, item) in self.items.iter().enumerate() {
            let sim = query.sim_to(item);
            if best.is_none_or(|b| sim > b.sim) {
                best = Some(SearchHit { index, sim });
            }
        }
        best.ok_or(HdcError::EmptyCodebook)
    }

    /// All items whose similarity to `query` strictly exceeds `threshold`,
    /// sorted by descending similarity. This is FactorHD's Rep-3 candidate
    /// selection ("select all the subclass items ... with a similarity
    /// larger than TH").
    pub fn above_threshold<Q: Similarity>(&self, query: &Q, threshold: f64) -> Vec<SearchHit> {
        let mut hits: Vec<SearchHit> = self
            .items
            .iter()
            .enumerate()
            .filter_map(|(index, item)| {
                let sim = query.sim_to(item);
                (sim > threshold).then_some(SearchHit { index, sim })
            })
            .collect();
        hits.sort_by(|a, b| b.sim.total_cmp(&a.sim));
        hits
    }

    /// The `k` most similar items, sorted by descending similarity.
    pub fn top_k<Q: Similarity>(&self, query: &Q, k: usize) -> Vec<SearchHit> {
        let mut hits: Vec<SearchHit> = self
            .items
            .iter()
            .enumerate()
            .map(|(index, item)| SearchHit {
                index,
                sim: query.sim_to(item),
            })
            .collect();
        hits.sort_by(|a, b| b.sim.total_cmp(&a.sim));
        hits.truncate(k);
        hits
    }

    /// Bundles all items into one accumulator (the resonator's initial
    /// estimate is the sign of this superposition).
    pub fn superposition(&self) -> AccumHv {
        let mut acc = AccumHv::zeros(self.dim);
        for item in &self.items {
            acc.add_bipolar(item, 1);
        }
        acc
    }

    /// Weighted superposition `Σ_j weights[j] · item_j`, the codebook
    /// "cleanup" projection of resonator networks. Uses a dense `i8`
    /// mirror of the items so the inner loop vectorizes.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != len()`.
    pub fn weighted_superposition(&self, weights: &[i64]) -> AccumHv {
        assert_eq!(
            weights.len(),
            self.items.len(),
            "weight count {} != item count {}",
            weights.len(),
            self.items.len()
        );
        let dense = self.dense();
        let mut data = vec![0i64; self.dim];
        for (j, &w) in weights.iter().enumerate() {
            if w == 0 {
                continue;
            }
            let row = &dense[j * self.dim..(j + 1) * self.dim];
            for (d, &s) in data.iter_mut().zip(row) {
                *d += w * s as i64;
            }
        }
        let clamped: Vec<i32> = data
            .iter()
            .map(|&v| v.clamp(i32::MIN as i64, i32::MAX as i64) as i32)
            .collect();
        AccumHv::from_components(clamped)
    }

    fn dense(&self) -> &[i8] {
        self.dense.get_or_init(|| {
            let mut dense = Vec::with_capacity(self.items.len() * self.dim);
            for item in &self.items {
                for w_idx in 0..item.words().len() {
                    let word = item.words()[w_idx];
                    let base = w_idx * WORD_BITS;
                    let end = (base + WORD_BITS).min(self.dim);
                    for b in 0..(end - base) {
                        dense.push(if word >> b & 1 == 1 { -1 } else { 1 });
                    }
                }
            }
            dense
        })
    }

    /// Clips each item's bundle with `others` — utility for building
    /// clause-like structures in tests.
    pub fn bundle_with(&self, index: usize, others: &[&BipolarHv]) -> Result<TernaryHv, HdcError> {
        let item = self.get(index)?;
        let mut acc = AccumHv::zeros(self.dim);
        acc.add_bipolar(item, 1);
        for other in others {
            acc.add_bipolar(other, 1);
        }
        Ok(acc.clip_ternary())
    }
}

impl<'a> IntoIterator for &'a Codebook {
    type Item = &'a BipolarHv;
    type IntoIter = std::slice::Iter<'a, BipolarHv>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn derive_is_deterministic() {
        let a = Codebook::derive(77, 8, 256);
        let b = Codebook::derive(77, 8, 256);
        assert_eq!(a, b);
        let c = Codebook::derive(78, 8, 256);
        assert_ne!(a, c);
    }

    #[test]
    fn random_rejects_degenerate() {
        let mut rng = rng_from_seed(50);
        assert_eq!(
            Codebook::random(0, 64, &mut rng).unwrap_err(),
            HdcError::EmptyCodebook
        );
        assert_eq!(
            Codebook::random(4, 0, &mut rng).unwrap_err(),
            HdcError::InvalidDimension(0)
        );
    }

    #[test]
    fn best_match_finds_exact_item() {
        let cb = Codebook::derive(51, 32, 512);
        for idx in [0, 15, 31] {
            let hit = cb.best_match(cb.item(idx)).unwrap();
            assert_eq!(hit.index, idx);
            assert!((hit.sim - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn best_match_tolerates_noise() {
        let cb = Codebook::derive(52, 64, 2048);
        let mut rng = rng_from_seed(53);
        let noisy = cb.item(7).flip_noise(0.2, &mut rng);
        assert_eq!(cb.best_match(&noisy).unwrap().index, 7);
    }

    #[test]
    fn above_threshold_selects_bundle_members() {
        let cb = Codebook::derive(54, 16, 4096);
        let mut acc = AccumHv::zeros(4096);
        acc.add_bipolar(cb.item(2), 1);
        acc.add_bipolar(cb.item(9), 1);
        let hits = cb.above_threshold(&acc, 0.3);
        let indices: Vec<usize> = hits.iter().map(|h| h.index).collect();
        assert_eq!(indices.len(), 2);
        assert!(indices.contains(&2) && indices.contains(&9));
    }

    #[test]
    fn above_threshold_sorted_descending() {
        let cb = Codebook::derive(55, 16, 1024);
        let hits = cb.top_k(cb.item(0), 16);
        for w in hits.windows(2) {
            assert!(w[0].sim >= w[1].sim);
        }
    }

    #[test]
    fn top_k_truncates() {
        let cb = Codebook::derive(56, 10, 256);
        assert_eq!(cb.top_k(cb.item(0), 3).len(), 3);
        assert_eq!(cb.top_k(cb.item(0), 100).len(), 10);
    }

    #[test]
    fn weighted_superposition_matches_naive() {
        let cb = Codebook::derive(57, 5, 200);
        let weights = [3i64, -1, 0, 7, 2];
        let fast = cb.weighted_superposition(&weights);
        let mut naive = AccumHv::zeros(200);
        for (j, &w) in weights.iter().enumerate() {
            naive.add_bipolar(cb.item(j), w as i32);
        }
        assert_eq!(fast, naive);
    }

    #[test]
    fn superposition_similar_to_all_items() {
        let cb = Codebook::derive(58, 4, 4096);
        let sup = cb.superposition();
        for item in &cb {
            assert!(sup.sim_bipolar(item) > 0.2);
        }
    }

    #[test]
    fn from_items_validates_dims() {
        let mut rng = rng_from_seed(59);
        let a = BipolarHv::random(64, &mut rng);
        let b = BipolarHv::random(65, &mut rng);
        assert!(Codebook::from_items(vec![]).is_err());
        assert!(Codebook::from_items(vec![a.clone(), b]).is_err());
        assert!(Codebook::from_items(vec![a.clone(), a]).is_ok());
    }

    #[test]
    fn le_bytes_round_trip() {
        let cb = Codebook::derive(61, 7, 130);
        let bytes = cb.to_le_bytes();
        assert_eq!(bytes.len(), Codebook::byte_len(7, 130));
        assert_eq!(Codebook::from_le_bytes(7, 130, &bytes).unwrap(), cb);
        assert!(Codebook::from_le_bytes(0, 130, &[]).is_err());
        assert!(Codebook::from_le_bytes(7, 0, &bytes).is_err());
        assert!(Codebook::from_le_bytes(6, 130, &bytes).is_err());
    }

    #[test]
    fn get_bounds_error() {
        let cb = Codebook::derive(60, 3, 64);
        assert!(cb.get(2).is_ok());
        assert_eq!(
            cb.get(3).unwrap_err(),
            HdcError::ItemOutOfBounds { index: 3, len: 3 }
        );
    }
}
