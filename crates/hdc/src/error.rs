//! Error types for the HDC substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by fallible substrate operations.
///
/// Low-level arithmetic (binding, dot products) panics on dimension
/// mismatch instead — mixing dimensions is a programming error, not a
/// runtime condition — while constructors and search entry points return
/// this type.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HdcError {
    /// A hypervector dimension of zero (or otherwise unusable) was requested.
    InvalidDimension(usize),
    /// Two operands had different dimensions.
    DimensionMismatch {
        /// Dimension of the left operand.
        left: usize,
        /// Dimension of the right operand.
        right: usize,
    },
    /// A codebook with zero items was supplied where items are required.
    EmptyCodebook,
    /// A requested item index was out of bounds for the codebook.
    ItemOutOfBounds {
        /// The requested index.
        index: usize,
        /// Number of items actually present.
        len: usize,
    },
    /// A named symbol was not present in an [`crate::ItemMemory`].
    UnknownSymbol(String),
    /// A serialized byte payload had the wrong length for the declared
    /// shape (dimension / item count).
    InvalidEncoding {
        /// Expected payload length in bytes.
        expected: usize,
        /// Actual payload length in bytes.
        actual: usize,
    },
    /// A packed shard table was requested with zero items per shard.
    InvalidShardLen,
    /// A scan kernel was requested that is not compiled into this build
    /// or not supported by the running CPU
    /// (see [`crate::kernels::force_kernel`]).
    UnknownKernel {
        /// The kernel name that was requested.
        requested: String,
        /// Comma-separated names of the kernels that can be selected.
        available: String,
    },
}

impl fmt::Display for HdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdcError::InvalidDimension(d) => write!(f, "invalid hypervector dimension {d}"),
            HdcError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            HdcError::EmptyCodebook => write!(f, "codebook contains no items"),
            HdcError::ItemOutOfBounds { index, len } => {
                write!(
                    f,
                    "item index {index} out of bounds for codebook of {len} items"
                )
            }
            HdcError::UnknownSymbol(name) => write!(f, "unknown symbol `{name}` in item memory"),
            HdcError::InvalidEncoding { expected, actual } => {
                write!(
                    f,
                    "invalid encoding: expected {expected} payload bytes, got {actual}"
                )
            }
            HdcError::InvalidShardLen => {
                write!(f, "packed shard length must be positive")
            }
            HdcError::UnknownKernel {
                requested,
                available,
            } => {
                write!(f, "unknown scan kernel `{requested}` (valid: {available})")
            }
        }
    }
}

impl Error for HdcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let cases = [
            HdcError::InvalidDimension(0),
            HdcError::DimensionMismatch { left: 3, right: 5 },
            HdcError::EmptyCodebook,
            HdcError::ItemOutOfBounds { index: 9, len: 2 },
            HdcError::UnknownSymbol("dog".into()),
            HdcError::InvalidEncoding {
                expected: 16,
                actual: 7,
            },
            HdcError::InvalidShardLen,
            HdcError::UnknownKernel {
                requested: "quantum".into(),
                available: "scalar,harley-seal".into(),
            },
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HdcError>();
    }
}
