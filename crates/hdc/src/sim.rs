//! Similarity metrics between hypervectors.
//!
//! The paper standardizes on the normalized dot product
//! `sim(V1, V2) = V1 · V2 / D` (§II-A); cosine and Hamming are provided for
//! completeness and used by some baseline diagnostics.

use crate::{AccumHv, BipolarHv, TernaryHv};

/// Normalized dot-product similarity between two bipolar vectors.
///
/// Equivalent to [`BipolarHv::sim`]; provided as a free function for use in
/// generic harness code.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let v = hdc::BipolarHv::random(512, &mut rng);
/// assert!((hdc::normalized_dot(&v, &v) - 1.0).abs() < 1e-12);
/// ```
pub fn normalized_dot(a: &BipolarHv, b: &BipolarHv) -> f64 {
    a.sim(b)
}

/// Cosine similarity between two integer accumulators.
///
/// Returns `0.0` when either vector has zero norm.
pub fn cosine(a: &AccumHv, b: &AccumHv) -> f64 {
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    a.dot(b) as f64 / (na * nb)
}

/// Hamming distance between two bipolar vectors (disagreeing positions).
pub fn hamming_distance(a: &BipolarHv, b: &BipolarHv) -> usize {
    a.hamming(b)
}

/// Unified similarity measurement against a bipolar reference.
///
/// Implemented by every hypervector representation so codebook search and
/// the factorizers can be generic over the query type.
pub trait Similarity {
    /// Normalized dot similarity `self · reference / D`.
    fn sim_to(&self, reference: &BipolarHv) -> f64;
}

impl Similarity for BipolarHv {
    fn sim_to(&self, reference: &BipolarHv) -> f64 {
        self.sim(reference)
    }
}

impl Similarity for TernaryHv {
    fn sim_to(&self, reference: &BipolarHv) -> f64 {
        self.sim_bipolar(reference)
    }
}

impl Similarity for AccumHv {
    fn sim_to(&self, reference: &BipolarHv) -> f64 {
        self.sim_bipolar(reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn cosine_of_self_is_one() {
        let a = AccumHv::from_components(vec![1, 2, -3]);
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_zero_is_zero() {
        let a = AccumHv::from_components(vec![1, 2, -3]);
        let z = AccumHv::zeros(3);
        assert_eq!(cosine(&a, &z), 0.0);
    }

    #[test]
    fn cosine_of_opposite_is_minus_one() {
        let a = AccumHv::from_components(vec![1, 2, -3]);
        let mut b = a.clone();
        b.scale(-2);
        assert!((cosine(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn sim_trait_agrees_across_representations() {
        let mut rng = rng_from_seed(40);
        let reference = BipolarHv::random(512, &mut rng);
        let q = BipolarHv::random(512, &mut rng);
        let direct = q.sim(&reference);
        assert!((q.sim_to(&reference) - direct).abs() < 1e-12);
        assert!((q.to_ternary().sim_to(&reference) - direct).abs() < 1e-12);
        assert!((q.to_accum().sim_to(&reference) - direct).abs() < 1e-12);
    }

    #[test]
    fn hamming_distance_free_fn() {
        let mut rng = rng_from_seed(41);
        let a = BipolarHv::random(64, &mut rng);
        assert_eq!(hamming_distance(&a, &a), 0);
        assert_eq!(hamming_distance(&a, &a.negated()), 64);
    }
}
