//! Deterministic random-number utilities.
//!
//! Every random structure in the reproduction (codebooks, labels, noise) is
//! derived from explicit seeds so that experiments are exactly repeatable.
//! [`derive_seed`] mixes a parent seed with path components (class index,
//! taxonomy path, trial number) to generate independent child streams, which
//! is how per-parent child codebooks are derived lazily without storing an
//! exponential tree.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Default seed used by convenience constructors throughout the workspace.
pub const DEFAULT_SEED: u64 = 0x1ACF_0D25_DAC2_0255;

/// Creates a deterministic RNG from a 64-bit seed.
///
/// `StdRng` (ChaCha-based) produces an identical stream on every platform,
/// which keeps experiment outputs stable across machines.
///
/// ```
/// use rand::RngCore;
/// let mut a = hdc::rng_from_seed(42);
/// let mut b = hdc::rng_from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Mixes a sequence of 64-bit values into a single derived seed.
///
/// Uses the SplitMix64 finalizer on each component so nearby inputs
/// (`[seed, 0]` vs `[seed, 1]`) yield statistically independent outputs.
///
/// ```
/// let root = 99;
/// let a = hdc::derive_seed(&[root, 0]);
/// let b = hdc::derive_seed(&[root, 1]);
/// assert_ne!(a, b);
/// // Deterministic: same inputs, same output.
/// assert_eq!(a, hdc::derive_seed(&[root, 0]));
/// ```
pub fn derive_seed(parts: &[u64]) -> u64 {
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    for &part in parts {
        state = splitmix64(state ^ splitmix64(part));
    }
    state
}

#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_is_deterministic() {
        let xs: Vec<u64> = (0..8).map(|_| rng_from_seed(7).next_u64()).collect();
        assert!(xs.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(rng_from_seed(1).next_u64(), rng_from_seed(2).next_u64());
    }

    #[test]
    fn derive_seed_component_order_matters() {
        assert_ne!(derive_seed(&[1, 2]), derive_seed(&[2, 1]));
    }

    #[test]
    fn derive_seed_length_matters() {
        assert_ne!(derive_seed(&[1]), derive_seed(&[1, 0]));
        assert_ne!(derive_seed(&[]), derive_seed(&[0]));
    }

    #[test]
    fn derive_seed_avalanche() {
        // Flipping one input bit should flip roughly half the output bits.
        let a = derive_seed(&[0x1234]);
        let b = derive_seed(&[0x1235]);
        let flipped = (a ^ b).count_ones();
        assert!(
            (16..=48).contains(&flipped),
            "poor avalanche: {flipped} bits"
        );
    }
}
