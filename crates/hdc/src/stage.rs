//! Per-stage wall-clock accounting for the serving pipeline.
//!
//! The engine's execution path decomposes into four stages — **plan**
//! (grouping and task building), **scan** (packed codebook similarity
//! scans), **rerank** (the factorizer's decode/descend/reconstruct work
//! around the scans), and **scatter** (writing grouped results back into
//! submission order). This module keeps one global nanosecond total and
//! span count per stage, fed by [`StageTimer`] guards placed at the
//! stage boundaries in `plan.rs`, the factorizer entry points, and the
//! `PackedShards` scan routines.
//!
//! Attribution is **exclusive** (self-time): when a scan span opens
//! inside a rerank span, the elapsed time up to that point is flushed to
//! *rerank* and the nested interval accrues to *scan*. Totals therefore
//! partition wall-clock time instead of double-counting nested work.
//! The bookkeeping is a fixed-depth per-thread stack of `Cell`s — no
//! heap allocation, no locks, and two relaxed atomic adds per span.
//!
//! Recording can be disabled at runtime ([`set_metrics_recording`]) or
//! compiled out entirely with the `metrics-off` cargo feature, which
//! turns [`StageTimer::enter`] into a no-op that never reads the clock.
//! Overhead budget and snapshot schema are documented in
//! `docs/OBSERVABILITY.md`.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Number of pipeline stages tracked by this module.
pub const STAGE_COUNT: usize = 4;

/// Maximum tracked nesting depth of simultaneously open [`StageTimer`]s
/// on one thread. Deeper spans still measure correctly in total; only
/// their exclusive attribution folds into the depth-8 ancestor.
const MAX_DEPTH: usize = 8;

/// A pipeline stage of the batch execution path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Grouping, task building, and chunking in the batch planner.
    Plan,
    /// Packed codebook similarity scans (`PackedShards::*_into`).
    Scan,
    /// Factorizer decode work around the scans: label elimination,
    /// beam descent, combination testing, reconstruct-and-exclude.
    Rerank,
    /// Writing grouped results back into submission order.
    Scatter,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [Stage::Plan, Stage::Scan, Stage::Rerank, Stage::Scatter];

    /// Dense index of this stage (0-based, pipeline order).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Stage::Plan => 0,
            Stage::Scan => 1,
            Stage::Rerank => 2,
            Stage::Scatter => 3,
        }
    }

    /// Lower-case stable name used in snapshots and BENCH JSON.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Plan => "plan",
            Stage::Scan => "scan",
            Stage::Rerank => "rerank",
            Stage::Scatter => "scatter",
        }
    }
}

/// Aggregated totals for one stage, as returned by [`stage_totals`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageTotal {
    /// Which stage the totals belong to.
    pub stage: Stage,
    /// Number of spans entered for this stage.
    pub count: u64,
    /// Exclusive (self-time) nanoseconds accumulated across all spans.
    pub nanos: u64,
}

static RECORDING: AtomicBool = AtomicBool::new(true);

static STAGE_NANOS: [AtomicU64; STAGE_COUNT] = [const { AtomicU64::new(0) }; STAGE_COUNT];
static STAGE_COUNTS: [AtomicU64; STAGE_COUNT] = [const { AtomicU64::new(0) }; STAGE_COUNT];

/// Enables or disables metrics recording process-wide.
///
/// Affects stage timers here and the engine-level counters and
/// histograms that consult the same switch. Disabling recording
/// short-circuits every record path to a single relaxed atomic load;
/// it never changes computation results. The switch defaults to **on**.
pub fn set_metrics_recording(on: bool) {
    RECORDING.store(on, Ordering::Relaxed);
}

/// Returns `true` when metrics recording is active: the crate was built
/// without the `metrics-off` feature and the runtime switch
/// ([`set_metrics_recording`]) is on.
#[inline]
pub fn metrics_recording() -> bool {
    !cfg!(feature = "metrics-off") && RECORDING.load(Ordering::Relaxed)
}

/// Returns `true` when the `metrics-off` cargo feature compiled the
/// telemetry layer out entirely.
#[inline]
pub fn metrics_compiled_out() -> bool {
    cfg!(feature = "metrics-off")
}

/// Per-thread stack of open spans for exclusive-time attribution.
struct SpanStack {
    depth: Cell<usize>,
    stages: [Cell<u8>; MAX_DEPTH],
    /// Instant of the most recent stage transition on this thread.
    last: Cell<Option<Instant>>,
}

thread_local! {
    static SPANS: SpanStack = const {
        SpanStack {
            depth: Cell::new(0),
            stages: [const { Cell::new(0) }; MAX_DEPTH],
            last: Cell::new(None),
        }
    };
}

#[inline]
fn flush(stage_index: usize, since: Instant, now: Instant) {
    let nanos = now.duration_since(since).as_nanos() as u64;
    STAGE_NANOS[stage_index].fetch_add(nanos, Ordering::Relaxed);
}

/// RAII guard measuring one span of a pipeline [`Stage`].
///
/// Created by [`StageTimer::enter`]; the interval from creation to drop
/// accrues to the stage, minus any intervals spent inside nested
/// `StageTimer` spans (exclusive attribution — see the module docs).
/// The guard is `!Send`: spans must open and close on the same thread.
#[must_use = "the span is measured from enter() until the guard drops"]
pub struct StageTimer {
    stage: Stage,
    active: bool,
    _not_send: PhantomData<*const ()>,
}

impl StageTimer {
    /// Opens a span for `stage`. When recording is disabled (runtime
    /// switch off or `metrics-off` build) this is a no-op that never
    /// reads the clock.
    #[inline]
    pub fn enter(stage: Stage) -> StageTimer {
        if !metrics_recording() {
            return StageTimer {
                stage,
                active: false,
                _not_send: PhantomData,
            };
        }
        let now = Instant::now();
        SPANS.with(|spans| {
            let depth = spans.depth.get();
            if depth > 0 && depth <= MAX_DEPTH {
                if let Some(last) = spans.last.get() {
                    flush(spans.stages[depth - 1].get() as usize, last, now);
                }
            }
            if depth < MAX_DEPTH {
                spans.stages[depth].set(stage.index() as u8);
            }
            spans.depth.set(depth + 1);
            spans.last.set(Some(now));
        });
        STAGE_COUNTS[stage.index()].fetch_add(1, Ordering::Relaxed);
        StageTimer {
            stage,
            active: true,
            _not_send: PhantomData,
        }
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let now = Instant::now();
        SPANS.with(|spans| {
            let depth = spans.depth.get();
            if depth == 0 {
                return;
            }
            if let Some(last) = spans.last.get() {
                flush(self.stage.index(), last, now);
            }
            spans.depth.set(depth - 1);
            spans.last.set(if depth > 1 { Some(now) } else { None });
        });
    }
}

/// Copies out the accumulated per-stage totals, in pipeline order.
pub fn stage_totals() -> [StageTotal; STAGE_COUNT] {
    Stage::ALL.map(|stage| StageTotal {
        stage,
        count: STAGE_COUNTS[stage.index()].load(Ordering::Relaxed),
        nanos: STAGE_NANOS[stage.index()].load(Ordering::Relaxed),
    })
}

/// Resets all per-stage totals to zero.
///
/// Not linearizable against concurrent recording — intended for test
/// and benchmark setup, not for sampling.
pub fn reset_stage_totals() {
    for i in 0..STAGE_COUNT {
        STAGE_NANOS[i].store(0, Ordering::Relaxed);
        STAGE_COUNTS[i].store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that read or toggle the global recording switch;
    /// cargo runs tests on parallel threads within one process.
    static RECORDING_LOCK: Mutex<()> = Mutex::new(());

    fn totals_of(stage: Stage) -> StageTotal {
        stage_totals()[stage.index()]
    }

    #[test]
    fn spans_accumulate_counts_and_time() {
        let _guard = RECORDING_LOCK.lock().unwrap();
        if !metrics_recording() {
            return; // metrics-off build: nothing to observe
        }
        let before = totals_of(Stage::Plan);
        {
            let _t = StageTimer::enter(Stage::Plan);
            std::hint::black_box(1 + 1);
        }
        let after = totals_of(Stage::Plan);
        assert_eq!(after.count, before.count + 1);
        assert!(after.nanos >= before.nanos);
    }

    #[test]
    fn nested_spans_attribute_exclusive_time() {
        let _guard = RECORDING_LOCK.lock().unwrap();
        if !metrics_recording() {
            return;
        }
        let scan_before = totals_of(Stage::Scan).count;
        let rerank_before = totals_of(Stage::Rerank).count;
        {
            let _outer = StageTimer::enter(Stage::Rerank);
            let _inner = StageTimer::enter(Stage::Scan);
        }
        assert_eq!(totals_of(Stage::Scan).count, scan_before + 1);
        assert_eq!(totals_of(Stage::Rerank).count, rerank_before + 1);
    }

    #[test]
    fn deep_nesting_does_not_panic() {
        let _guard = RECORDING_LOCK.lock().unwrap();
        if !metrics_recording() {
            return;
        }
        fn nest(levels: usize) {
            if levels == 0 {
                return;
            }
            let _t = StageTimer::enter(Stage::Scan);
            nest(levels - 1);
        }
        nest(2 * MAX_DEPTH);
    }

    #[test]
    fn disabled_recording_skips_spans() {
        let _guard = RECORDING_LOCK.lock().unwrap();
        if metrics_compiled_out() {
            return;
        }
        set_metrics_recording(false);
        let before = totals_of(Stage::Scatter).count;
        {
            let _t = StageTimer::enter(Stage::Scatter);
        }
        let after = totals_of(Stage::Scatter).count;
        set_metrics_recording(true);
        assert_eq!(after, before);
    }

    #[test]
    fn stage_names_and_indices_are_stable() {
        assert_eq!(
            Stage::ALL.map(Stage::name),
            ["plan", "scan", "rerank", "scatter"]
        );
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
    }
}
