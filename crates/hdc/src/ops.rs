//! The VSA operator traits: binding, bundling and permutation.
//!
//! These traits let the FactorHD layers stay generic over which hypervector
//! representation they combine (bipolar codebook items, clipped ternary
//! clauses, or integer scene bundles).

/// Binding (`⊙`): component-wise multiplication.
///
/// The bound vector is quasi-orthogonal to both inputs, and binding with a
/// bipolar vector is self-inverse (`v ⊙ v = 1`), which is how FactorHD
/// *unbinds* class labels during factorization.
pub trait Bind<Rhs = Self> {
    /// The representation of the bound result.
    type Output;

    /// Component-wise product of `self` and `rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    fn bind(&self, rhs: &Rhs) -> Self::Output;
}

/// Bundling (`+`): component-wise addition acting as memorization.
///
/// Bundled vectors remain similar to each of their components, so they can
/// be recovered by similarity search against a codebook.
pub trait Bundle<Rhs = Self> {
    /// The representation of the accumulated result (integer-valued).
    type Output;

    /// Component-wise sum of `self` and `rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    fn bundle(&self, rhs: &Rhs) -> Self::Output;
}

/// Cyclic permutation (`ρ`): preserves position/sequence information.
pub trait Permute {
    /// Rotates the vector left by `shift` positions (cyclically).
    ///
    /// `permute(0)` is the identity; `permute(dim)` is also the identity.
    fn permute(&self, shift: usize) -> Self;
}
