//! Dense bipolar (`{-1, +1}`) hypervectors stored as packed sign bits.
//!
//! A set bit encodes `-1`, a clear bit encodes `+1`. With this layout
//! binding is a word-wise XOR and dot products reduce to popcounts, which
//! is what makes the large factorization sweeps tractable on a CPU.

use crate::ops::{Bind, Bundle, Permute};
use crate::{clear_padding, words_for, AccumHv, HdcError, TernaryHv, WORD_BITS};
use rand::Rng;
use std::fmt;

/// A dense bipolar hypervector in `{-1, +1}^D`.
///
/// ```
/// use hdc::{BipolarHv, Bind};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let v = BipolarHv::random(256, &mut rng);
/// // Binding with itself gives the identity vector (all +1).
/// assert_eq!(v.bind(&v), BipolarHv::ones(256));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BipolarHv {
    words: Vec<u64>,
    dim: usize,
}

impl BipolarHv {
    /// Creates the all-`+1` vector, the multiplicative identity of binding.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn ones(dim: usize) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        BipolarHv {
            words: vec![0; words_for(dim)],
            dim,
        }
    }

    /// Samples a uniformly random bipolar vector.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn random<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        let mut words: Vec<u64> = (0..words_for(dim)).map(|_| rng.gen()).collect();
        clear_padding(&mut words, dim);
        BipolarHv { words, dim }
    }

    /// Builds a vector from explicit `±1` components.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidDimension`] for an empty slice, and
    /// [`HdcError::InvalidDimension`] if any component is not `+1` or `-1`.
    pub fn from_components(components: &[i8]) -> Result<Self, HdcError> {
        if components.is_empty() {
            return Err(HdcError::InvalidDimension(0));
        }
        let mut hv = BipolarHv::ones(components.len());
        for (i, &c) in components.iter().enumerate() {
            match c {
                1 => {}
                -1 => hv.set_negative(i),
                _ => return Err(HdcError::InvalidDimension(components.len())),
            }
        }
        Ok(hv)
    }

    /// The dimensionality `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed sign words (bit set ⇔ component is `-1`).
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Component at `index`, as `+1` or `-1`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    #[inline]
    pub fn component(&self, index: usize) -> i8 {
        assert!(
            index < self.dim,
            "component {index} out of bounds (dim {})",
            self.dim
        );
        if self.words[index / WORD_BITS] >> (index % WORD_BITS) & 1 == 1 {
            -1
        } else {
            1
        }
    }

    #[inline]
    fn set_negative(&mut self, index: usize) {
        self.words[index / WORD_BITS] |= 1 << (index % WORD_BITS);
    }

    /// Flips each component independently with probability `p`.
    ///
    /// Used to model noisy channels (e.g. the simulated neural front-end).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn flip_noise<R: Rng + ?Sized>(&self, p: f64, rng: &mut R) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "flip probability must be in [0,1]"
        );
        let mut out = self.clone();
        for i in 0..self.dim {
            if rng.gen_bool(p) {
                out.words[i / WORD_BITS] ^= 1 << (i % WORD_BITS);
            }
        }
        out
    }

    /// The component-wise negation (`-v`).
    pub fn negated(&self) -> Self {
        let mut words: Vec<u64> = self.words.iter().map(|w| !w).collect();
        clear_padding(&mut words, self.dim);
        BipolarHv {
            words,
            dim: self.dim,
        }
    }

    /// Dot product `Σ_i self_i · rhs_i` as an integer in `[-D, D]`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[inline]
    pub fn dot(&self, rhs: &BipolarHv) -> i64 {
        assert_eq!(
            self.dim, rhs.dim,
            "dimension mismatch: {} vs {}",
            self.dim, rhs.dim
        );
        let disagreements: u32 = self
            .words
            .iter()
            .zip(&rhs.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        self.dim as i64 - 2 * disagreements as i64
    }

    /// Normalized dot-product similarity `self · rhs / D`, the metric the
    /// paper uses for all recognition steps.
    #[inline]
    pub fn sim(&self, rhs: &BipolarHv) -> f64 {
        self.dot(rhs) as f64 / self.dim as f64
    }

    /// Hamming distance (number of disagreeing components).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[inline]
    pub fn hamming(&self, rhs: &BipolarHv) -> usize {
        assert_eq!(
            self.dim, rhs.dim,
            "dimension mismatch: {} vs {}",
            self.dim, rhs.dim
        );
        self.words
            .iter()
            .zip(&rhs.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// In-place binding (`self ⊙= rhs`), avoiding an allocation in hot loops.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    #[inline]
    pub fn bind_assign(&mut self, rhs: &BipolarHv) {
        assert_eq!(
            self.dim, rhs.dim,
            "dimension mismatch: {} vs {}",
            self.dim, rhs.dim
        );
        for (a, b) in self.words.iter_mut().zip(&rhs.words) {
            *a ^= b;
        }
    }

    /// Serialized length of [`BipolarHv::to_le_bytes`] for dimension `dim`:
    /// one little-endian `u64` per 64 components.
    #[inline]
    pub fn byte_len(dim: usize) -> usize {
        words_for(dim) * 8
    }

    /// Serializes the packed sign words as little-endian bytes — the
    /// word-level wire form used by the `.fhd` model-artifact codec.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.words.len() * 8);
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Reconstructs a vector from [`BipolarHv::to_le_bytes`] output.
    /// Padding bits beyond `dim` are cleared, so the result is canonical.
    ///
    /// # Errors
    ///
    /// [`HdcError::InvalidDimension`] if `dim == 0`, or
    /// [`HdcError::InvalidEncoding`] if `bytes` is not exactly
    /// [`BipolarHv::byte_len`] long.
    pub fn from_le_bytes(dim: usize, bytes: &[u8]) -> Result<Self, HdcError> {
        if dim == 0 {
            return Err(HdcError::InvalidDimension(0));
        }
        let expected = Self::byte_len(dim);
        if bytes.len() != expected {
            return Err(HdcError::InvalidEncoding {
                expected,
                actual: bytes.len(),
            });
        }
        let mut words: Vec<u64> = bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        clear_padding(&mut words, dim);
        Ok(BipolarHv { words, dim })
    }

    /// Views this vector as a ternary vector with no zero components.
    pub fn to_ternary(&self) -> TernaryHv {
        TernaryHv::from_planes(
            vec![u64::MAX; self.words.len()],
            self.words.clone(),
            self.dim,
        )
    }

    /// Expands into an integer accumulator (each component `±1`).
    pub fn to_accum(&self) -> AccumHv {
        let mut acc = AccumHv::zeros(self.dim);
        acc.add_bipolar(self, 1);
        acc
    }

    /// Iterates over components as `i8` values (`+1` / `-1`).
    pub fn iter(&self) -> impl Iterator<Item = i8> + '_ {
        (0..self.dim).map(move |i| self.component(i))
    }
}

impl Bind for BipolarHv {
    type Output = BipolarHv;

    #[inline]
    fn bind(&self, rhs: &BipolarHv) -> BipolarHv {
        assert_eq!(
            self.dim, rhs.dim,
            "dimension mismatch: {} vs {}",
            self.dim, rhs.dim
        );
        let words = self
            .words
            .iter()
            .zip(&rhs.words)
            .map(|(a, b)| a ^ b)
            .collect();
        BipolarHv {
            words,
            dim: self.dim,
        }
    }
}

impl Bundle for BipolarHv {
    type Output = AccumHv;

    fn bundle(&self, rhs: &BipolarHv) -> AccumHv {
        let mut acc = self.to_accum();
        acc.add_bipolar(rhs, 1);
        acc
    }
}

impl Permute for BipolarHv {
    fn permute(&self, shift: usize) -> Self {
        let shift = shift % self.dim;
        let mut out = BipolarHv::ones(self.dim);
        for i in 0..self.dim {
            if self.component(i) == -1 {
                out.set_negative((i + shift) % self.dim);
            }
        }
        out
    }
}

impl fmt::Debug for BipolarHv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<i8> = self.iter().take(8).collect();
        f.debug_struct("BipolarHv")
            .field("dim", &self.dim)
            .field("head", &preview)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn ones_is_binding_identity() {
        let mut rng = rng_from_seed(11);
        let v = BipolarHv::random(130, &mut rng);
        assert_eq!(v.bind(&BipolarHv::ones(130)), v);
    }

    #[test]
    fn binding_is_self_inverse() {
        let mut rng = rng_from_seed(12);
        let a = BipolarHv::random(257, &mut rng);
        let b = BipolarHv::random(257, &mut rng);
        assert_eq!(a.bind(&b).bind(&b), a);
    }

    #[test]
    fn binding_is_commutative_and_associative() {
        let mut rng = rng_from_seed(13);
        let a = BipolarHv::random(100, &mut rng);
        let b = BipolarHv::random(100, &mut rng);
        let c = BipolarHv::random(100, &mut rng);
        assert_eq!(a.bind(&b), b.bind(&a));
        assert_eq!(a.bind(&b).bind(&c), a.bind(&b.bind(&c)));
    }

    #[test]
    fn dot_of_self_is_dim() {
        let mut rng = rng_from_seed(14);
        let v = BipolarHv::random(321, &mut rng);
        assert_eq!(v.dot(&v), 321);
        assert!((v.sim(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dot_of_negation_is_minus_dim() {
        let mut rng = rng_from_seed(15);
        let v = BipolarHv::random(200, &mut rng);
        assert_eq!(v.dot(&v.negated()), -200);
    }

    #[test]
    fn random_vectors_are_quasi_orthogonal() {
        let mut rng = rng_from_seed(16);
        let a = BipolarHv::random(4096, &mut rng);
        let b = BipolarHv::random(4096, &mut rng);
        assert!(a.sim(&b).abs() < 0.1, "sim was {}", a.sim(&b));
    }

    #[test]
    fn from_components_round_trips() {
        let comps = [1i8, -1, -1, 1, -1];
        let hv = BipolarHv::from_components(&comps).unwrap();
        let back: Vec<i8> = hv.iter().collect();
        assert_eq!(back, comps);
    }

    #[test]
    fn from_components_rejects_invalid() {
        assert!(BipolarHv::from_components(&[]).is_err());
        assert!(BipolarHv::from_components(&[1, 0, -1]).is_err());
    }

    #[test]
    fn hamming_matches_dot() {
        let mut rng = rng_from_seed(17);
        let a = BipolarHv::random(500, &mut rng);
        let b = BipolarHv::random(500, &mut rng);
        let h = a.hamming(&b) as i64;
        assert_eq!(a.dot(&b), 500 - 2 * h);
    }

    #[test]
    fn permute_is_cyclic() {
        let mut rng = rng_from_seed(18);
        let v = BipolarHv::random(97, &mut rng);
        assert_eq!(v.permute(0), v);
        assert_eq!(v.permute(97), v);
        assert_eq!(v.permute(13).permute(84), v);
        // A non-trivial shift decorrelates.
        assert!(v.sim(&v.permute(1)).abs() < 0.3);
    }

    #[test]
    fn flip_noise_zero_and_one() {
        let mut rng = rng_from_seed(19);
        let v = BipolarHv::random(128, &mut rng);
        assert_eq!(v.flip_noise(0.0, &mut rng), v);
        assert_eq!(v.flip_noise(1.0, &mut rng), v.negated());
    }

    #[test]
    fn flip_noise_rate_is_close() {
        let mut rng = rng_from_seed(20);
        let v = BipolarHv::random(10_000, &mut rng);
        let noisy = v.flip_noise(0.1, &mut rng);
        let flips = v.hamming(&noisy) as f64 / 10_000.0;
        assert!((flips - 0.1).abs() < 0.02, "flip rate {flips}");
    }

    #[test]
    fn bind_assign_matches_bind() {
        let mut rng = rng_from_seed(21);
        let a = BipolarHv::random(300, &mut rng);
        let b = BipolarHv::random(300, &mut rng);
        let mut c = a.clone();
        c.bind_assign(&b);
        assert_eq!(c, a.bind(&b));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_dim_mismatch_panics() {
        let mut rng = rng_from_seed(22);
        let a = BipolarHv::random(64, &mut rng);
        let b = BipolarHv::random(65, &mut rng);
        let _ = a.dot(&b);
    }

    #[test]
    fn le_bytes_round_trip() {
        let mut rng = rng_from_seed(24);
        for dim in [1, 63, 64, 65, 200, 1024] {
            let v = BipolarHv::random(dim, &mut rng);
            let bytes = v.to_le_bytes();
            assert_eq!(bytes.len(), BipolarHv::byte_len(dim));
            assert_eq!(BipolarHv::from_le_bytes(dim, &bytes).unwrap(), v);
        }
    }

    #[test]
    fn from_le_bytes_canonicalizes_padding() {
        // Garbage in the padding bits must not leak into the vector.
        let bytes = vec![0xFFu8; 8];
        let v = BipolarHv::from_le_bytes(3, &bytes).unwrap();
        assert_eq!(v, BipolarHv::from_components(&[-1, -1, -1]).unwrap());
    }

    #[test]
    fn from_le_bytes_validates() {
        assert!(matches!(
            BipolarHv::from_le_bytes(0, &[]),
            Err(crate::HdcError::InvalidDimension(0))
        ));
        assert!(matches!(
            BipolarHv::from_le_bytes(64, &[0u8; 7]),
            Err(crate::HdcError::InvalidEncoding {
                expected: 8,
                actual: 7
            })
        ));
    }

    #[test]
    fn to_ternary_preserves_dot() {
        let mut rng = rng_from_seed(23);
        let a = BipolarHv::random(222, &mut rng);
        let b = BipolarHv::random(222, &mut rng);
        assert_eq!(a.to_ternary().dot_bipolar(&b), a.dot(&b));
    }

    #[test]
    fn debug_is_nonempty() {
        let v = BipolarHv::ones(64);
        assert!(!format!("{v:?}").is_empty());
    }
}
