//! # hdc — hyperdimensional computing substrate
//!
//! This crate implements the vector-symbolic-architecture (VSA) substrate
//! used by the FactorHD reproduction: hypervector types, the algebra over
//! them (binding, bundling, permutation, similarity), and codebooks /
//! item memories for symbol storage and cleanup.
//!
//! Three hypervector representations cover the value domains the paper
//! uses:
//!
//! * [`BipolarHv`] — dense `{-1, +1}` vectors stored as packed sign bits
//!   (one bit per dimension). Binding is XOR, dot products are popcounts.
//! * [`TernaryHv`] — `{-1, 0, +1}` vectors stored as two bit planes
//!   (a non-zero mask plane and a sign plane). FactorHD clips single-object
//!   clause bundles into this space ("2 bits per dimension" in the paper).
//! * [`AccumHv`] — integer vectors (`i32` per dimension) used for
//!   unclipped bundles of multiple objects, which the paper keeps in `Z^D`.
//!
//! On top of these, the packed scan backend ([`PackedHv`],
//! [`PackedShards`], [`CodebookScan`]) re-lays codebooks out as contiguous
//! sharded `u64` word tables so that every similarity scan — the
//! dominating cost of FactorHD's label elimination and factorization —
//! runs as word-parallel XOR/popcount kernels, bit-identical to the
//! scalar reference arithmetic. The inner popcount loops themselves are
//! runtime-dispatched ([`kernels`]): hardware `POPCNT`, AVX2, and
//! AVX-512 `vpopcntq` implementations are selected by CPU detection at
//! first use (forcible via the `FACTORHD_KERNEL` environment variable),
//! with a portable Harley–Seal ladder as the fallback. See
//! `docs/REPRESENTATIONS.md` for how the representations map onto the
//! paper and `docs/KERNELS.md` for the kernel-dispatch design.
//!
//! # Example
//!
//! ```
//! use hdc::{Bind, BipolarHv, Codebook};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let a = BipolarHv::random(1024, &mut rng);
//! let b = BipolarHv::random(1024, &mut rng);
//!
//! // Randomly generated hypervectors are quasi-orthogonal...
//! assert!(a.sim(&b).abs() < 0.2);
//! // ...and binding is self-inverse.
//! let bound = a.bind(&b);
//! assert_eq!(bound.bind(&b), a);
//! ```

// `unsafe` is denied crate-wide; the single exception is the `kernels`
// module, whose `#[target_feature]` SIMD bodies and dispatch wrappers
// carry explicit `#[allow(unsafe_code)]` with a documented safety
// argument (docs/KERNELS.md).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod accum;
mod bipolar;
mod codebook;
mod error;
mod item_memory;
pub mod kernels;
mod ops;
mod packed;
mod rng;
mod sim;
pub mod stage;
mod ternary;

pub use accum::AccumHv;
pub use bipolar::BipolarHv;
pub use codebook::{Codebook, SearchHit};
pub use error::HdcError;
pub use item_memory::ItemMemory;
pub use ops::{Bind, Bundle, Permute};
pub use packed::{AsPackedQuery, CodebookScan, PackedHv, PackedQuery, PackedShards};
pub use rng::{derive_seed, rng_from_seed, DEFAULT_SEED};
pub use sim::{cosine, hamming_distance, normalized_dot, Similarity};
pub use stage::{Stage, StageTimer, StageTotal};
pub use ternary::TernaryHv;

/// Convenient glob import of the most common substrate types and traits.
///
/// ```
/// use hdc::prelude::*;
/// ```
pub mod prelude {
    pub use crate::{
        AccumHv, AsPackedQuery, Bind, BipolarHv, Bundle, Codebook, CodebookScan, HdcError,
        ItemMemory, PackedHv, Permute, Similarity, TernaryHv,
    };
}

pub(crate) const WORD_BITS: usize = 64;

/// Number of 64-bit words needed to store `dim` packed bits.
#[inline]
pub(crate) fn words_for(dim: usize) -> usize {
    dim.div_ceil(WORD_BITS)
}

/// Mask keeping only the valid (in-dimension) bits of the final word.
#[inline]
pub(crate) fn tail_mask(dim: usize) -> u64 {
    let rem = dim % WORD_BITS;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

/// Zeroes the padding bits of the last word in `words` for a vector of
/// logical length `dim`. Internal invariant: padding bits are always zero so
/// popcount-based kernels need no per-call masking.
#[inline]
pub(crate) fn clear_padding(words: &mut [u64], dim: usize) {
    if let Some(last) = words.last_mut() {
        *last &= tail_mask(dim);
    }
}

#[cfg(test)]
mod layout_tests {
    use super::*;

    #[test]
    fn words_for_rounds_up() {
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }

    #[test]
    fn tail_mask_covers_remainder() {
        assert_eq!(tail_mask(64), u64::MAX);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(3), 0b111);
        assert_eq!(tail_mask(65), 1);
    }

    #[test]
    fn clear_padding_zeroes_tail() {
        let mut words = vec![u64::MAX, u64::MAX];
        clear_padding(&mut words, 65);
        assert_eq!(words[0], u64::MAX);
        assert_eq!(words[1], 1);
    }
}
