//! Packed-word scan backend: hypervectors as `u64` sign/mask planes and
//! codebooks as contiguous sharded word tables.
//!
//! Every recognition step in FactorHD is a scan `sim(V1, V2) = V1 · V2 / D`
//! of one query against a codebook (PAPER.md §II-A, §III). The types here
//! make that scan run at word speed end to end:
//!
//! * [`PackedHv`] — an owned query in packed form: one sign bit per
//!   dimension plus an optional non-zero mask plane, so both bipolar and
//!   ternary queries share the same XOR/popcount kernels for dot, Hamming
//!   distance, and binding.
//! * [`PackedQuery`] — a borrowed word-level view of a query; obtained via
//!   [`AsPackedQuery`] from [`BipolarHv`], [`TernaryHv`] or [`PackedHv`]
//!   without copying.
//! * [`PackedShards`] — a codebook's items re-laid-out as one contiguous
//!   word array, grouped into cache-sized shards. Batched searches
//!   ([`PackedShards::top_k`], [`PackedShards::above_threshold`],
//!   [`PackedShards::dots`]) run a bounded heap per shard and
//!   rayon-parallelize across shards once the table is large enough to
//!   amortize the fork.
//! * [`CodebookScan`] — the routing trait the factorizer layers use: query
//!   types with a lossless packed form scan through [`PackedShards`],
//!   while integer accumulators fall back to the scalar reference path.
//!
//! The inner XOR-popcount loops are not hard-coded: every dot product
//! goes through the [`crate::kernels`] dispatch layer, which picks the
//! fastest implementation the running CPU supports (hardware `POPCNT`,
//! AVX2 nibble-LUT, AVX-512 `vpopcntq`, or the portable Harley–Seal
//! ladder) once at startup. The serving-path scans additionally reuse a
//! thread-local [`ScanScratch`] workspace and offer `*_into` variants
//! ([`PackedShards::top_k_into`], [`PackedShards::top_k_many_into`],
//! [`PackedShards::dots_into`], [`PackedShards::above_threshold_into`])
//! that write into caller-owned buffers, so a warm scan performs **zero
//! heap allocations**.
//!
//! All packed results are **bit-identical** to the scalar reference
//! implementations on [`Codebook`]: dots are exact integers, similarities
//! are computed with the same `dot as f64 / dim as f64` expression, and
//! ties are broken by ascending item index exactly like the reference's
//! stable descending sort — regardless of which kernel is dispatched.

use crate::codebook::{Codebook, SearchHit};
use crate::kernels::{self, ScanKernel};
use crate::sim::Similarity;
use crate::stage::{Stage, StageTimer};
use crate::{clear_padding, words_for, AccumHv, BipolarHv, HdcError, TernaryHv};
use rayon::prelude::*;
use std::cell::RefCell;
use std::fmt;

/// Target shard payload in bytes: one shard's words should fit comfortably
/// in L1 alongside the query planes.
const SHARD_BYTES: usize = 32 * 1024;

/// Minimum table size (in words) before a batched search forks across the
/// rayon pool; smaller scans finish faster than a fork would take.
const PAR_MIN_WORDS: usize = 1 << 18;

/// Queries per register block in the batched multi-query scan: each
/// L1-sized tile of codebook words is scanned by up to this many queries
/// before the next tile is touched, so the tile's cache lines (and the
/// block's query planes) are reused instead of re-fetched per query.
const QUERY_BLOCK: usize = 4;

/// Reusable per-thread scan workspace: every buffer a serving-path scan
/// needs lives here, grown once and reused, so warm
/// [`PackedShards::top_k_into`] / [`PackedShards::top_k_many_into`] /
/// [`PackedShards::dots_into`] / [`PackedShards::above_threshold_into`]
/// calls allocate nothing.
#[derive(Default)]
struct ScanScratch {
    /// Flat per-query bounded heaps for the multi-query scan: query `q`
    /// of a `k`-wide scan owns `heap_data[q * k .. q * k + heap_lens[q]]`.
    heap_data: Vec<(i64, usize)>,
    heap_lens: Vec<usize>,
    /// Candidate buffer for single-query top-k and threshold scans.
    cand: Vec<(i64, usize)>,
    /// Per-query non-zero counts for the multi-query scan.
    nonzero: Vec<i64>,
}

thread_local! {
    /// One [`ScanScratch`] per thread: rayon workers executing planned
    /// engine batches each warm their own copy, after which steady-state
    /// scans on that worker stop allocating.
    static SCRATCH: RefCell<ScanScratch> = RefCell::new(ScanScratch::default());
}

/// Runs `f` with this thread's scan scratch. Scans never re-enter the
/// scan path while holding the borrow, so the `RefCell` cannot panic.
fn with_scratch<R>(f: impl FnOnce(&mut ScanScratch) -> R) -> R {
    SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// `true` when candidate `a` ranks strictly below `b`: a lower dot, or an
/// equal dot with the larger item index (ties prefer small indices, like
/// the scalar reference's stable descending sort).
#[inline]
fn ranks_below(a: (i64, usize), b: (i64, usize)) -> bool {
    a.0 < b.0 || (a.0 == b.0 && a.1 > b.1)
}

/// Offers `entry` to the bounded worst-at-root heap held in
/// `data[..*len]` (capacity `k`): while not full the entry is sifted in;
/// once full, the entry replaces the root — the worst kept candidate —
/// only if it ranks above it. Keeps exactly the `k` best candidates seen,
/// under the total order of [`ranks_below`] (which has no equal keys:
/// item indices are unique), so the kept set is identical to any other
/// correct top-k selection.
#[inline]
fn heap_offer(data: &mut [(i64, usize)], len: &mut usize, k: usize, entry: (i64, usize)) {
    if *len < k {
        data[*len] = entry;
        *len += 1;
        let mut i = *len - 1;
        while i > 0 {
            let parent = (i - 1) / 2;
            if ranks_below(data[i], data[parent]) {
                data.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
        return;
    }
    if !ranks_below(data[0], entry) {
        return;
    }
    data[0] = entry;
    let mut i = 0;
    loop {
        let left = 2 * i + 1;
        let right = left + 1;
        let mut worst = i;
        if left < k && ranks_below(data[left], data[worst]) {
            worst = left;
        }
        if right < k && ranks_below(data[right], data[worst]) {
            worst = right;
        }
        if worst == i {
            break;
        }
        data.swap(i, worst);
        i = worst;
    }
}

/// Sorts candidates into the reference hit order: descending dot, ties by
/// ascending item index. Unstable sort is exact here — `(dot, index)`
/// keys are unique — and, unlike the stable sort, allocates nothing.
#[inline]
fn sort_candidates(cand: &mut [(i64, usize)]) {
    cand.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
}

/// A borrowed word-level view of a scan query.
///
/// `sign` holds one bit per dimension (set ⇔ the component is negative);
/// `mask`, when present, marks non-zero components (ternary queries).
/// A missing mask means the query is dense (every component is `±1`).
#[derive(Clone, Copy)]
pub struct PackedQuery<'a> {
    sign: &'a [u64],
    mask: Option<&'a [u64]>,
    dim: usize,
}

impl<'a> PackedQuery<'a> {
    /// The query's dimensionality `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of non-zero components (`D` for a dense query).
    #[inline]
    pub fn nonzero_count(&self) -> usize {
        match self.mask {
            None => self.dim,
            Some(mask) => mask.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Exact integer dot product against one item's packed sign words,
    /// given the query's precomputed non-zero count and the scan kernel
    /// to run the popcount loop on (hoisted out of the per-item loop by
    /// every scan entry point).
    #[inline]
    fn dot_words(&self, item: &[u64], nonzero: i64, kernel: &ScanKernel) -> i64 {
        let neg = match self.mask {
            None => kernel.hamming_words(self.sign, item),
            Some(mask) => kernel.masked_hamming_words(self.sign, mask, item),
        };
        nonzero - 2 * neg as i64
    }
}

/// Borrowing conversion into the packed scan form.
///
/// Implemented by every query representation whose dot products against
/// bipolar items reduce losslessly to word-parallel popcounts. [`AccumHv`]
/// deliberately does **not** implement this: general integer bundles have
/// no packed form, so they take the scalar reference path (or are routed
/// through [`AccumHv::to_ternary_lossless`] first when their components
/// fit `{-1, 0, 1}`).
pub trait AsPackedQuery {
    /// This query's borrowed word-level view.
    fn packed_query(&self) -> PackedQuery<'_>;
}

impl AsPackedQuery for BipolarHv {
    fn packed_query(&self) -> PackedQuery<'_> {
        PackedQuery {
            sign: self.words(),
            mask: None,
            dim: self.dim(),
        }
    }
}

impl AsPackedQuery for TernaryHv {
    fn packed_query(&self) -> PackedQuery<'_> {
        PackedQuery {
            sign: self.sign_words(),
            mask: Some(self.mask_words()),
            dim: self.dim(),
        }
    }
}

impl AsPackedQuery for PackedHv {
    fn packed_query(&self) -> PackedQuery<'_> {
        PackedQuery {
            sign: &self.sign,
            mask: self.mask.as_deref(),
            dim: self.dim,
        }
    }
}

/// An owned hypervector in packed scan form: sign bits in `u64` words plus
/// an optional non-zero mask plane.
///
/// This is the representation every codebook scan runs on. Dense vectors
/// (`{-1, +1}^D`) carry no mask; ternary vectors (`{-1, 0, +1}^D`) carry
/// one. Dot products, Hamming distances, and binding are word-parallel
/// XOR/popcount kernels either way, and agree exactly with the scalar
/// reference arithmetic on [`BipolarHv`] / [`TernaryHv`].
///
/// ```
/// use hdc::{Bind, BipolarHv, PackedHv};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let a = BipolarHv::random(1000, &mut rng);
/// let b = BipolarHv::random(1000, &mut rng);
///
/// let pa = PackedHv::from_bipolar(&a);
/// let pb = PackedHv::from_bipolar(&b);
/// // Word-parallel kernels, bit-identical to the reference arithmetic.
/// assert_eq!(pa.dot(&pb), a.dot(&b));
/// assert_eq!(pa.hamming(&pb), a.hamming(&b));
/// assert_eq!(pa.bind(&pb).dot(&pa), a.bind(&b).dot(&a));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PackedHv {
    /// Bit set ⇔ component is negative (only meaningful under the mask).
    sign: Vec<u64>,
    /// Bit set ⇔ component is non-zero; `None` ⇔ fully dense.
    mask: Option<Vec<u64>>,
    dim: usize,
}

impl PackedHv {
    /// Packs a dense bipolar vector (no mask plane).
    pub fn from_bipolar(hv: &BipolarHv) -> Self {
        PackedHv {
            sign: hv.words().to_vec(),
            mask: None,
            dim: hv.dim(),
        }
    }

    /// Packs a ternary vector. A ternary vector with no zero components
    /// canonicalizes to the dense (maskless) form, so equal logical
    /// vectors compare equal regardless of their construction route.
    pub fn from_ternary(hv: &TernaryHv) -> Self {
        if hv.nonzero_count() == hv.dim() {
            return PackedHv {
                sign: hv.sign_words().to_vec(),
                mask: None,
                dim: hv.dim(),
            };
        }
        PackedHv {
            sign: hv.sign_words().to_vec(),
            mask: Some(hv.mask_words().to_vec()),
            dim: hv.dim(),
        }
    }

    /// Packs an integer accumulator whose components all lie in
    /// `{-1, 0, 1}`, or `None` when any component is out of range (the
    /// packed form would be lossy).
    pub fn from_accum_lossless(hv: &AccumHv) -> Option<Self> {
        hv.to_ternary_lossless().map(|t| PackedHv::from_ternary(&t))
    }

    /// The dimensionality `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `true` when every component is `±1` (no mask plane).
    #[inline]
    pub fn is_dense(&self) -> bool {
        self.mask.is_none()
    }

    /// Number of non-zero components.
    #[inline]
    pub fn nonzero_count(&self) -> usize {
        self.packed_query().nonzero_count()
    }

    /// Exact integer dot product with another packed vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn dot(&self, rhs: &PackedHv) -> i64 {
        assert_eq!(
            self.dim, rhs.dim,
            "dimension mismatch: {} vs {}",
            self.dim, rhs.dim
        );
        let mut common = 0u32;
        let mut neg = 0u32;
        match (&self.mask, &rhs.mask) {
            (None, None) => {
                for (a, b) in self.sign.iter().zip(&rhs.sign) {
                    neg += (a ^ b).count_ones();
                }
                return self.dim as i64 - 2 * neg as i64;
            }
            (Some(m), None) | (None, Some(m)) => {
                for ((a, b), m) in self.sign.iter().zip(&rhs.sign).zip(m) {
                    common += m.count_ones();
                    neg += ((a ^ b) & m).count_ones();
                }
            }
            (Some(ma), Some(mb)) => {
                for (((a, b), ma), mb) in self.sign.iter().zip(&rhs.sign).zip(ma).zip(mb) {
                    let both = ma & mb;
                    common += both.count_ones();
                    neg += ((a ^ b) & both).count_ones();
                }
            }
        }
        common as i64 - 2 * neg as i64
    }

    /// Normalized dot similarity `dot / D`.
    #[inline]
    pub fn sim(&self, rhs: &PackedHv) -> f64 {
        self.dot(rhs) as f64 / self.dim as f64
    }

    /// Number of disagreeing components (any mismatch among `-1, 0, +1`
    /// counts, including zero versus non-zero).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn hamming(&self, rhs: &PackedHv) -> usize {
        assert_eq!(
            self.dim, rhs.dim,
            "dimension mismatch: {} vs {}",
            self.dim, rhs.dim
        );
        let full = u64::MAX;
        let n = self.sign.len();
        let mut differing = 0usize;
        for i in 0..n {
            let ma = self.mask.as_ref().map_or(full, |m| m[i]);
            let mb = rhs.mask.as_ref().map_or(full, |m| m[i]);
            // Differ where exactly one is zero, or both non-zero with
            // opposite signs. Padding bits are zero in both masks for
            // masked vectors; for dense vectors restrict to valid bits
            // via the sign planes' shared padding invariant.
            let mut word = (ma ^ mb) | ((self.sign[i] ^ rhs.sign[i]) & ma & mb);
            if i == n - 1 {
                word &= crate::tail_mask(self.dim);
            }
            differing += word.count_ones() as usize;
        }
        differing
    }

    /// Component-wise product: zero wherever either operand is zero,
    /// signs multiply elsewhere — the packed counterpart of
    /// [`Bind`](crate::Bind) on the unpacked types.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn bind(&self, rhs: &PackedHv) -> PackedHv {
        assert_eq!(
            self.dim, rhs.dim,
            "dimension mismatch: {} vs {}",
            self.dim, rhs.dim
        );
        let sign: Vec<u64> = self
            .sign
            .iter()
            .zip(&rhs.sign)
            .map(|(a, b)| a ^ b)
            .collect();
        let mask = match (&self.mask, &rhs.mask) {
            (None, None) => None,
            (Some(m), None) | (None, Some(m)) => Some(m.clone()),
            (Some(ma), Some(mb)) => Some(ma.iter().zip(mb).map(|(a, b)| a & b).collect()),
        };
        let mut sign = sign;
        match &mask {
            None => clear_padding(&mut sign, self.dim),
            Some(mask) => {
                for (s, m) in sign.iter_mut().zip(mask) {
                    *s &= m;
                }
            }
        }
        PackedHv {
            sign,
            mask,
            dim: self.dim,
        }
    }

    /// Unpacks into the two-plane ternary representation.
    pub fn to_ternary(&self) -> TernaryHv {
        let mask = match &self.mask {
            Some(mask) => mask.clone(),
            None => {
                let mut full = vec![u64::MAX; self.sign.len()];
                clear_padding(&mut full, self.dim);
                full
            }
        };
        TernaryHv::from_planes(mask, self.sign.clone(), self.dim)
    }
}

impl Similarity for PackedHv {
    fn sim_to(&self, reference: &BipolarHv) -> f64 {
        assert_eq!(
            self.dim,
            reference.dim(),
            "dimension mismatch: {} vs {}",
            self.dim,
            reference.dim()
        );
        let query = self.packed_query();
        let nonzero = query.nonzero_count() as i64;
        let kernel = kernels::selected_kernel();
        query.dot_words(reference.words(), nonzero, kernel) as f64 / self.dim as f64
    }
}

impl fmt::Debug for PackedHv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PackedHv")
            .field("dim", &self.dim)
            .field("dense", &self.is_dense())
            .finish()
    }
}

/// A codebook's items re-laid-out for scanning: one contiguous array of
/// packed sign words, grouped into cache-sized shards.
///
/// Built lazily by [`Codebook::packed_view`] (or eagerly by the `.fhd`
/// artifact loader) and guarded by the owning codebook's
/// [`generation`](Codebook::generation) stamp: a shard table always
/// carries the generation of the item set it was built from, so staleness
/// is structurally impossible — replacing a codebook (e.g. via
/// `Taxonomy::set_codebook`) creates a new codebook with a new generation
/// and an empty view.
///
/// ```
/// use hdc::Codebook;
///
/// let cb = Codebook::derive(42, 64, 1024);
/// let shards = cb.packed_view();
/// let hits = shards.top_k(hdc::AsPackedQuery::packed_query(cb.item(9)), 3);
/// assert_eq!(hits[0].index, 9);
/// assert!((hits[0].sim - 1.0).abs() < 1e-12);
/// // Bit-identical to the scalar reference search.
/// assert_eq!(hits, cb.top_k(cb.item(9), 3));
/// ```
#[derive(Clone)]
pub struct PackedShards {
    /// Item-major sign words: item `i` occupies
    /// `words[i * words_per_item .. (i + 1) * words_per_item]`.
    words: Vec<u64>,
    words_per_item: usize,
    /// Items per shard (the parallel/blocking granularity).
    shard_len: usize,
    len: usize,
    dim: usize,
    generation: u64,
}

impl PackedShards {
    /// Builds a shard table over `items` (all of dimension `dim`),
    /// stamped with the owning codebook's `generation`.
    ///
    /// # Panics
    ///
    /// Panics if `shard_len == 0` (a programming error, not a runtime
    /// condition — wire-format readers validate before calling).
    pub(crate) fn build(
        items: &[BipolarHv],
        dim: usize,
        shard_len: usize,
        generation: u64,
    ) -> Self {
        assert!(shard_len > 0, "shard length must be positive");
        let words_per_item = words_for(dim);
        let mut words = Vec::with_capacity(items.len() * words_per_item);
        for item in items {
            words.extend_from_slice(item.words());
        }
        PackedShards {
            words,
            words_per_item,
            shard_len,
            len: items.len(),
            dim,
            generation,
        }
    }

    /// The default shard geometry for `dim`: as many items as fit a
    /// [`SHARD_BYTES`]-sized block, at least one.
    pub(crate) fn default_shard_len(dim: usize) -> usize {
        (SHARD_BYTES / (words_for(dim) * 8)).max(1)
    }

    /// Number of items in the table.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the table holds no items (never for a built codebook).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The hypervector dimension `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Items per shard (the parallel/blocking granularity).
    #[inline]
    pub fn shard_len(&self) -> usize {
        self.shard_len
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.len.div_ceil(self.shard_len)
    }

    /// The generation stamp of the codebook this table was built from.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    #[inline]
    fn check_query(&self, query: &PackedQuery<'_>) {
        assert_eq!(
            self.dim,
            query.dim(),
            "dimension mismatch: {} vs {}",
            self.dim,
            query.dim()
        );
    }

    #[inline]
    fn sim_of(&self, dot: i64) -> f64 {
        dot as f64 / self.dim as f64
    }

    /// `true` when a batched search over this table is worth forking
    /// across the rayon pool.
    ///
    /// Beyond the size threshold this also checks the pool itself: a
    /// single-lane pool has nothing to fork to, and a scan issued from
    /// **inside** a parallel region (a batch planner already fanning op
    /// chunks across the pool) must not fork again — nested forking
    /// oversubscribes the pool with tasks that steal lanes from the
    /// batch level, which is what caused the batch-512 throughput
    /// rollover. In both cases the scan takes its sequential `_into`
    /// path instead.
    #[inline]
    fn parallel(&self) -> bool {
        self.words.len() >= PAR_MIN_WORDS
            && self.num_shards() > 1
            && !rayon::in_parallel_region()
            && rayon::current_num_threads() > 1
    }

    /// The item index range of shard `s`.
    #[inline]
    fn shard_range(&self, s: usize) -> std::ops::Range<usize> {
        let start = s * self.shard_len;
        start..(start + self.shard_len).min(self.len)
    }

    /// Runs `scan` over every shard — in parallel when the table is big
    /// enough — and returns the per-shard results in shard order.
    fn scan_shards<T: Send, F>(&self, scan: F) -> Vec<T>
    where
        F: Fn(std::ops::Range<usize>) -> T + Sync,
    {
        if self.parallel() {
            (0..self.num_shards())
                .into_par_iter()
                .map(|s| scan(self.shard_range(s)))
                .collect()
        } else {
            (0..self.num_shards())
                .map(|s| scan(self.shard_range(s)))
                .collect()
        }
    }

    /// Exact integer dot products of `query` against every item, in item
    /// order — the packed replacement for per-item
    /// [`BipolarHv::dot`] loops over boxed items.
    ///
    /// Tables below the parallel threshold are scanned through
    /// [`PackedShards::dots_into`] (zero steady-state allocations beyond
    /// the returned `Vec`); larger tables fork across the rayon pool.
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the table's.
    pub fn dots(&self, query: PackedQuery<'_>) -> Vec<i64> {
        if !self.parallel() {
            let mut out = Vec::with_capacity(self.len);
            self.dots_into(query, &mut out);
            return out;
        }
        self.check_query(&query);
        let kernel = kernels::selected_kernel();
        let nonzero = query.nonzero_count() as i64;
        let per_shard = self.scan_shards(|range| {
            range
                .map(|i| query.dot_words(self.item_words(i), nonzero, kernel))
                .collect::<Vec<i64>>()
        });
        per_shard.concat()
    }

    /// [`PackedShards::dots`] into a caller-owned buffer: `out` is
    /// cleared and refilled, so a reused buffer makes the warm scan
    /// allocation-free. Always single-threaded (the zero-allocation
    /// serving path); results are identical to [`PackedShards::dots`].
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the table's.
    pub fn dots_into(&self, query: PackedQuery<'_>, out: &mut Vec<i64>) {
        let _span = StageTimer::enter(Stage::Scan);
        self.check_query(&query);
        out.clear();
        out.reserve(self.len);
        let kernel = kernels::selected_kernel();
        let nonzero = query.nonzero_count() as i64;
        for i in 0..self.len {
            out.push(query.dot_words(self.item_words(i), nonzero, kernel));
        }
    }

    /// The `k` most similar items, sorted by descending similarity with
    /// ties broken by ascending item index — exactly the ordering of the
    /// scalar reference [`Codebook::top_k`].
    ///
    /// Tables below the parallel threshold are scanned through
    /// [`PackedShards::top_k_into`] (thread-local scratch, zero
    /// steady-state allocations beyond the returned `Vec`); larger tables
    /// keep a bounded `k`-best heap per shard across the rayon pool and
    /// merge the per-shard survivors, allocating `O(shards · k)` instead
    /// of materializing all `M` similarities.
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the table's.
    pub fn top_k(&self, query: PackedQuery<'_>, k: usize) -> Vec<SearchHit> {
        if !self.parallel() {
            let mut out = Vec::with_capacity(k.min(self.len));
            self.top_k_into(query, k, &mut out);
            return out;
        }
        self.check_query(&query);
        if k == 0 {
            return Vec::new();
        }
        let kernel = kernels::selected_kernel();
        let nonzero = query.nonzero_count() as i64;
        let per_shard = self.scan_shards(|range| {
            let cap = k.min(range.len());
            let mut heap = vec![(0i64, 0usize); cap];
            let mut len = 0usize;
            for i in range {
                let dot = query.dot_words(self.item_words(i), nonzero, kernel);
                heap_offer(&mut heap, &mut len, cap, (dot, i));
            }
            heap.truncate(len);
            heap
        });
        let mut merged: Vec<(i64, usize)> = per_shard.concat();
        sort_candidates(&mut merged);
        merged.truncate(k);
        merged
            .into_iter()
            .map(|(dot, index)| SearchHit {
                index,
                sim: self.sim_of(dot),
            })
            .collect()
    }

    /// [`PackedShards::top_k`] into a caller-owned buffer: `out` is
    /// cleared and refilled, the bounded candidate heap lives in the
    /// thread-local scan scratch, and the final ordering uses an
    /// allocation-free unstable sort — a warm call with a reused `out`
    /// performs **zero heap allocations**. Always single-threaded;
    /// results are identical to [`PackedShards::top_k`].
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the table's.
    pub fn top_k_into(&self, query: PackedQuery<'_>, k: usize, out: &mut Vec<SearchHit>) {
        let _span = StageTimer::enter(Stage::Scan);
        self.check_query(&query);
        out.clear();
        if k == 0 {
            return;
        }
        let kernel = kernels::selected_kernel();
        let nonzero = query.nonzero_count() as i64;
        let cap = k.min(self.len);
        with_scratch(|scratch| {
            let cand = &mut scratch.cand;
            cand.clear();
            cand.resize(cap, (0, 0));
            let mut len = 0usize;
            for i in 0..self.len {
                let dot = query.dot_words(self.item_words(i), nonzero, kernel);
                heap_offer(cand, &mut len, cap, (dot, i));
            }
            cand.truncate(len);
            sort_candidates(cand);
            out.extend(cand.iter().map(|&(dot, index)| SearchHit {
                index,
                sim: self.sim_of(dot),
            }));
        });
    }

    /// [`PackedShards::top_k`] for a whole batch of queries in one tiled
    /// table traversal: shards are walked in the outer loop and, within
    /// each shard, queries run in register blocks of four — an
    /// L1-sized tile of codebook words is scanned by up to four queries
    /// before the next tile is touched, so each tile's cache lines are
    /// loaded once per block instead of once per query. This is the
    /// amortization a serving planner relies on when it groups requests
    /// against one codebook.
    ///
    /// Per-query results are **bit-identical** to calling
    /// [`PackedShards::top_k`] once per query (same candidate set, same
    /// descending-similarity order, same ascending-index tie break). The
    /// traversal is single-threaded; callers that want parallelism chunk
    /// the query batch and fan the chunks out themselves.
    ///
    /// # Panics
    ///
    /// Panics if any query dimension differs from the table's.
    pub fn top_k_many(&self, queries: &[PackedQuery<'_>], k: usize) -> Vec<Vec<SearchHit>> {
        let mut outs = Vec::with_capacity(queries.len());
        self.top_k_many_into(queries, k, &mut outs);
        outs
    }

    /// [`PackedShards::top_k_many`] into caller-owned buffers: `outs` is
    /// resized to one inner `Vec` per query (inner buffers are cleared
    /// and reused, extras truncated away), the per-query bounded heaps
    /// live flat in the thread-local scan scratch, and the final ordering
    /// uses an allocation-free unstable sort — a warm call with reused
    /// buffers performs **zero heap allocations**. Results are identical
    /// to [`PackedShards::top_k_many`].
    ///
    /// # Panics
    ///
    /// Panics if any query dimension differs from the table's.
    pub fn top_k_many_into(
        &self,
        queries: &[PackedQuery<'_>],
        k: usize,
        outs: &mut Vec<Vec<SearchHit>>,
    ) {
        let _span = StageTimer::enter(Stage::Scan);
        for query in queries {
            self.check_query(query);
        }
        outs.truncate(queries.len());
        for out in outs.iter_mut() {
            out.clear();
        }
        while outs.len() < queries.len() {
            outs.push(Vec::new());
        }
        if k == 0 || queries.is_empty() {
            return;
        }
        let kernel = kernels::selected_kernel();
        let cap = k.min(self.len);
        with_scratch(|scratch| {
            let ScanScratch {
                heap_data,
                heap_lens,
                nonzero,
                ..
            } = scratch;
            nonzero.clear();
            nonzero.extend(queries.iter().map(|q| q.nonzero_count() as i64));
            heap_data.clear();
            heap_data.resize(queries.len() * cap, (0, 0));
            heap_lens.clear();
            heap_lens.resize(queries.len(), 0);
            for s in 0..self.num_shards() {
                let range = self.shard_range(s);
                // Register-blocked inner loop: every item of this tile is
                // scanned by up to QUERY_BLOCK queries before eviction,
                // in ascending item order per query — the same
                // candidate-retention policy as the single-query scan.
                for block_start in (0..queries.len()).step_by(QUERY_BLOCK) {
                    let block_end = (block_start + QUERY_BLOCK).min(queries.len());
                    for i in range.clone() {
                        let item = self.item_words(i);
                        for q in block_start..block_end {
                            let dot = queries[q].dot_words(item, nonzero[q], kernel);
                            let segment = &mut heap_data[q * cap..(q + 1) * cap];
                            heap_offer(segment, &mut heap_lens[q], cap, (dot, i));
                        }
                    }
                }
            }
            for (q, out) in outs.iter_mut().enumerate() {
                let segment = &mut heap_data[q * cap..q * cap + heap_lens[q]];
                sort_candidates(segment);
                out.extend(segment.iter().map(|&(dot, index)| SearchHit {
                    index,
                    sim: self.sim_of(dot),
                }));
            }
        });
    }

    /// The single most similar item (equivalent to `top_k(query, 1)`).
    ///
    /// # Errors
    ///
    /// Never fails for a constructed codebook; returns
    /// [`HdcError::EmptyCodebook`] defensively.
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the table's.
    pub fn best_match(&self, query: PackedQuery<'_>) -> Result<SearchHit, HdcError> {
        self.top_k(query, 1)
            .into_iter()
            .next()
            .ok_or(HdcError::EmptyCodebook)
    }

    /// All items whose similarity strictly exceeds `threshold`, sorted by
    /// descending similarity with ties broken by ascending item index —
    /// exactly the ordering of the scalar reference
    /// [`Codebook::above_threshold`].
    ///
    /// Tables below the parallel threshold are scanned through
    /// [`PackedShards::above_threshold_into`] (thread-local scratch, zero
    /// steady-state allocations beyond the returned `Vec`); larger tables
    /// fork across the rayon pool.
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the table's.
    pub fn above_threshold(&self, query: PackedQuery<'_>, threshold: f64) -> Vec<SearchHit> {
        if !self.parallel() {
            let mut out = Vec::new();
            self.above_threshold_into(query, threshold, &mut out);
            return out;
        }
        self.check_query(&query);
        let kernel = kernels::selected_kernel();
        let nonzero = query.nonzero_count() as i64;
        let per_shard = self.scan_shards(|range| {
            range
                .filter_map(|i| {
                    let dot = query.dot_words(self.item_words(i), nonzero, kernel);
                    let sim = self.sim_of(dot);
                    (sim > threshold).then_some((dot, i))
                })
                .collect::<Vec<(i64, usize)>>()
        });
        let mut hits: Vec<(i64, usize)> = per_shard.concat();
        sort_candidates(&mut hits);
        hits.into_iter()
            .map(|(dot, index)| SearchHit {
                index,
                sim: self.sim_of(dot),
            })
            .collect()
    }

    /// [`PackedShards::above_threshold`] into a caller-owned buffer:
    /// `out` is cleared and refilled, candidates accumulate in the
    /// thread-local scan scratch, and the final ordering uses an
    /// allocation-free unstable sort — a warm call with a reused `out`
    /// performs **zero heap allocations**. Always single-threaded;
    /// results are identical to [`PackedShards::above_threshold`].
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the table's.
    pub fn above_threshold_into(
        &self,
        query: PackedQuery<'_>,
        threshold: f64,
        out: &mut Vec<SearchHit>,
    ) {
        let _span = StageTimer::enter(Stage::Scan);
        self.check_query(&query);
        out.clear();
        let kernel = kernels::selected_kernel();
        let nonzero = query.nonzero_count() as i64;
        with_scratch(|scratch| {
            let cand = &mut scratch.cand;
            cand.clear();
            for i in 0..self.len {
                let dot = query.dot_words(self.item_words(i), nonzero, kernel);
                if self.sim_of(dot) > threshold {
                    cand.push((dot, i));
                }
            }
            sort_candidates(cand);
            out.extend(cand.iter().map(|&(dot, index)| SearchHit {
                index,
                sim: self.sim_of(dot),
            }));
        });
    }

    #[inline]
    fn item_words(&self, index: usize) -> &[u64] {
        &self.words[index * self.words_per_item..(index + 1) * self.words_per_item]
    }
}

impl fmt::Debug for PackedShards {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PackedShards")
            .field("len", &self.len)
            .field("dim", &self.dim)
            .field("shard_len", &self.shard_len)
            .field("generation", &self.generation)
            .finish()
    }
}

/// Scan routing: every query type knows its fastest codebook-scan path.
///
/// Word-level representations ([`BipolarHv`], [`TernaryHv`], [`PackedHv`])
/// route through the codebook's [`PackedShards`]; integer accumulators
/// ([`AccumHv`]) take the scalar reference path, since a general bundle
/// has no lossless packed form. Both routes return identical results —
/// the reference implementations are the oracle the packed kernels are
/// tested against.
///
/// ```
/// use hdc::{Codebook, CodebookScan};
///
/// let cb = Codebook::derive(3, 16, 512);
/// let query = cb.item(4).to_ternary();
/// let packed = query.scan_top_k(&cb, 2);      // packed shard scan
/// let reference = cb.top_k(&query, 2);        // scalar reference
/// assert_eq!(packed, reference);
/// assert_eq!(packed[0].index, 4);
/// ```
pub trait CodebookScan: Similarity {
    /// The `k` most similar items of `codebook`, sorted by descending
    /// similarity (ties by ascending index).
    fn scan_top_k(&self, codebook: &Codebook, k: usize) -> Vec<SearchHit>;

    /// [`CodebookScan::scan_top_k`] into a caller-owned buffer: `out` is
    /// cleared and refilled with identical hits. Packed query types
    /// route through [`PackedShards::top_k_into`] — thread-local scratch,
    /// zero steady-state allocations when `out` is reused — which is what
    /// the factorizer's per-class and beam-descent scans run on; the
    /// default implementation is the allocating reference loop (what
    /// [`AccumHv`] uses, having no packed form).
    fn scan_top_k_into(&self, codebook: &Codebook, k: usize, out: &mut Vec<SearchHit>) {
        out.clear();
        out.extend(self.scan_top_k(codebook, k));
    }

    /// All items of `codebook` whose similarity strictly exceeds
    /// `threshold`, sorted by descending similarity (ties by ascending
    /// index).
    fn scan_above_threshold(&self, codebook: &Codebook, threshold: f64) -> Vec<SearchHit>;

    /// [`CodebookScan::scan_above_threshold`] into a caller-owned buffer:
    /// `out` is cleared and refilled with identical hits. Packed query
    /// types route through [`PackedShards::above_threshold_into`] — the
    /// **explicitly sequential** zero-alloc path — making this the safe
    /// entry point for callers that may already be running inside a
    /// parallel region (the factorizer's per-class and descent scans
    /// under planned batch execution). The default implementation is the
    /// allocating reference loop (what [`AccumHv`] uses, having no packed
    /// form).
    fn scan_above_threshold_into(
        &self,
        codebook: &Codebook,
        threshold: f64,
        out: &mut Vec<SearchHit>,
    ) {
        out.clear();
        out.extend(self.scan_above_threshold(codebook, threshold));
    }

    /// The single most similar item of `codebook`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyCodebook`] defensively; constructed
    /// codebooks are never empty.
    fn scan_best(&self, codebook: &Codebook) -> Result<SearchHit, HdcError> {
        self.scan_top_k(codebook, 1)
            .into_iter()
            .next()
            .ok_or(HdcError::EmptyCodebook)
    }

    /// [`CodebookScan::scan_top_k`] for a whole batch of queries against
    /// one codebook, per-query results bit-identical to the one-at-a-time
    /// scan. Packed query types route through
    /// [`PackedShards::top_k_many`], amortizing the table traversal across
    /// the batch; the default implementation is the per-query reference
    /// loop (and what [`AccumHv`] uses, having no packed form).
    fn scan_top_k_many(codebook: &Codebook, queries: &[Self], k: usize) -> Vec<Vec<SearchHit>>
    where
        Self: Sized,
    {
        queries.iter().map(|q| q.scan_top_k(codebook, k)).collect()
    }
}

macro_rules! impl_codebook_scan_packed {
    ($($ty:ty),*) => {$(
        impl CodebookScan for $ty {
            fn scan_top_k(&self, codebook: &Codebook, k: usize) -> Vec<SearchHit> {
                codebook.packed_view().top_k(self.packed_query(), k)
            }

            fn scan_top_k_into(
                &self,
                codebook: &Codebook,
                k: usize,
                out: &mut Vec<SearchHit>,
            ) {
                codebook.packed_view().top_k_into(self.packed_query(), k, out)
            }

            fn scan_above_threshold(
                &self,
                codebook: &Codebook,
                threshold: f64,
            ) -> Vec<SearchHit> {
                codebook
                    .packed_view()
                    .above_threshold(self.packed_query(), threshold)
            }

            fn scan_above_threshold_into(
                &self,
                codebook: &Codebook,
                threshold: f64,
                out: &mut Vec<SearchHit>,
            ) {
                codebook
                    .packed_view()
                    .above_threshold_into(self.packed_query(), threshold, out)
            }

            fn scan_top_k_many(
                codebook: &Codebook,
                queries: &[Self],
                k: usize,
            ) -> Vec<Vec<SearchHit>> {
                let packed: Vec<PackedQuery<'_>> =
                    queries.iter().map(|q| q.packed_query()).collect();
                codebook.packed_view().top_k_many(&packed, k)
            }
        }
    )*};
}

impl_codebook_scan_packed!(BipolarHv, TernaryHv, PackedHv);

impl CodebookScan for AccumHv {
    fn scan_top_k(&self, codebook: &Codebook, k: usize) -> Vec<SearchHit> {
        codebook.top_k(self, k)
    }

    fn scan_above_threshold(&self, codebook: &Codebook, threshold: f64) -> Vec<SearchHit> {
        codebook.above_threshold(self, threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rng_from_seed, Bind, Bundle};

    fn random_ternary(dim: usize, seed: u64) -> TernaryHv {
        let mut rng = rng_from_seed(seed);
        let a = BipolarHv::random(dim, &mut rng);
        let b = BipolarHv::random(dim, &mut rng);
        a.bundle(&b).clip_ternary()
    }

    #[test]
    fn bounded_heap_keeps_the_k_best() {
        // Adversarial stream with heavy ties: the kept set must be the k
        // candidates ranking highest under (dot desc, index asc).
        let entries: Vec<(i64, usize)> = (0..40).map(|i| ((i % 5) as i64, i)).collect();
        for k in [1usize, 3, 7, 40, 50] {
            let cap = k.min(entries.len());
            let mut heap = vec![(0i64, 0usize); cap];
            let mut len = 0usize;
            for &e in &entries {
                heap_offer(&mut heap, &mut len, cap, e);
            }
            heap.truncate(len);
            sort_candidates(&mut heap);
            let mut expected = entries.clone();
            sort_candidates(&mut expected);
            expected.truncate(cap);
            assert_eq!(heap, expected, "k {k}");
        }
    }

    #[test]
    fn packed_dot_matches_reference_dense() {
        let mut rng = rng_from_seed(1);
        for dim in [1usize, 63, 64, 65, 333, 1024] {
            let a = BipolarHv::random(dim, &mut rng);
            let b = BipolarHv::random(dim, &mut rng);
            let pa = PackedHv::from_bipolar(&a);
            let pb = PackedHv::from_bipolar(&b);
            assert_eq!(pa.dot(&pb), a.dot(&b), "dim {dim}");
            assert_eq!(pa.hamming(&pb), a.hamming(&b), "dim {dim}");
        }
    }

    #[test]
    fn packed_dot_matches_reference_ternary() {
        for (dim, seed) in [(1usize, 10u64), (65, 11), (200, 12), (1024, 13)] {
            let t = random_ternary(dim, seed);
            let u = random_ternary(dim, seed ^ 0xFF);
            let pt = PackedHv::from_ternary(&t);
            let pu = PackedHv::from_ternary(&u);
            assert_eq!(pt.dot(&pu), t.dot(&u), "dim {dim}");
            let mut rng = rng_from_seed(seed ^ 0xAAAA);
            let b = BipolarHv::random(dim, &mut rng);
            assert_eq!(pt.dot(&PackedHv::from_bipolar(&b)), t.dot_bipolar(&b));
        }
    }

    #[test]
    fn packed_hamming_counts_zero_disagreements() {
        let t = TernaryHv::from_components(&[1, 0, -1, 0]).unwrap();
        let u = TernaryHv::from_components(&[1, 1, 1, 0]).unwrap();
        let h = PackedHv::from_ternary(&t).hamming(&PackedHv::from_ternary(&u));
        // Components 1 (0 vs 1) and 2 (-1 vs 1) differ.
        assert_eq!(h, 2);
    }

    #[test]
    fn packed_bind_matches_componentwise_product() {
        let t = random_ternary(130, 20);
        let u = random_ternary(130, 21);
        let bound = PackedHv::from_ternary(&t).bind(&PackedHv::from_ternary(&u));
        let expected: TernaryHv = t.bind(&u);
        assert_eq!(bound.to_ternary(), expected);
    }

    #[test]
    fn dense_ternary_canonicalizes_to_maskless() {
        let mut rng = rng_from_seed(30);
        let b = BipolarHv::random(100, &mut rng);
        let via_ternary = PackedHv::from_ternary(&b.to_ternary());
        let direct = PackedHv::from_bipolar(&b);
        assert_eq!(via_ternary, direct);
        assert!(via_ternary.is_dense());
    }

    #[test]
    fn packed_similarity_trait_matches_reference() {
        let mut rng = rng_from_seed(31);
        let reference = BipolarHv::random(777, &mut rng);
        let t = random_ternary(777, 32);
        let packed = PackedHv::from_ternary(&t);
        assert_eq!(packed.sim_to(&reference), t.sim_to(&reference));
        assert_eq!(
            PackedHv::from_accum_lossless(&t.to_accum())
                .expect("lossless")
                .sim_to(&reference),
            t.sim_to(&reference)
        );
        let big = AccumHv::from_components(vec![2, 0, -1]);
        assert!(PackedHv::from_accum_lossless(&big).is_none());
    }

    #[test]
    fn shard_table_dots_match_reference() {
        let cb = Codebook::derive(40, 37, 513);
        let mut rng = rng_from_seed(41);
        let q = BipolarHv::random(513, &mut rng);
        assert_eq!(
            cb.packed_view().dots(q.packed_query()),
            cb.iter().map(|item| q.dot(item)).collect::<Vec<i64>>()
        );
    }

    #[test]
    fn shard_table_top_k_matches_reference_ordering() {
        // Small dim forces many exact ties: ordering must still agree.
        let cb = Codebook::derive(42, 64, 16);
        let t = random_ternary(16, 43);
        for k in [1usize, 3, 16, 64, 100] {
            assert_eq!(t.scan_top_k(&cb, k), cb.top_k(&t, k), "k {k}");
        }
        assert_eq!(t.scan_top_k(&cb, 0), Vec::new());
    }

    #[test]
    fn shard_table_above_threshold_matches_reference() {
        let cb = Codebook::derive(44, 50, 256);
        let t = random_ternary(256, 45);
        for th in [-0.5f64, -0.1, 0.0, 0.05, 0.3, 0.9] {
            assert_eq!(
                t.scan_above_threshold(&cb, th),
                cb.above_threshold(&t, th),
                "threshold {th}"
            );
        }
    }

    #[test]
    fn scan_best_matches_best_match() {
        let cb = Codebook::derive(46, 20, 1024);
        let q = cb.item(13).clone();
        let packed = q.scan_best(&cb).unwrap();
        let reference = cb.best_match(&q).unwrap();
        assert_eq!(packed, reference);
        assert_eq!(packed.index, 13);
    }

    #[test]
    fn accum_route_matches_packed_route_when_lossless() {
        let cb = Codebook::derive(47, 24, 512);
        let t = random_ternary(512, 48);
        let acc = t.to_accum();
        assert_eq!(acc.scan_top_k(&cb, 5), t.scan_top_k(&cb, 5));
        assert_eq!(
            acc.scan_above_threshold(&cb, 0.1),
            t.scan_above_threshold(&cb, 0.1)
        );
    }

    #[test]
    fn shard_geometry_covers_all_items() {
        let cb = Codebook::derive(49, 1000, 8192);
        let view = cb.packed_view();
        assert_eq!(view.len(), 1000);
        assert_eq!(view.dim(), 8192);
        assert!(view.shard_len() >= 1);
        assert_eq!(view.num_shards(), 1000usize.div_ceil(view.shard_len()));
        // Every index appears in exactly one shard.
        let mut seen = vec![false; 1000];
        for s in 0..view.num_shards() {
            for i in view.shard_range(s) {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.into_iter().all(|b| b));
    }

    /// Serializes tests that resize the global worker pool.
    fn pool_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn parallel_scan_is_bit_identical_to_sequential() {
        let _guard = pool_test_lock();
        let before = rayon::current_num_threads();
        // Multi-lane pool so the size gate is the only question…
        rayon::configure_pool(2);
        // …and big enough to clear PAR_MIN_WORDS (4096 items × 128 words).
        let cb = Codebook::derive(50, 4096, 8192);
        let view = cb.packed_view();
        assert!(view.parallel(), "table must take the parallel route");
        let t = random_ternary(8192, 51);
        let q = t.packed_query();
        // Sequential reference over the same table.
        let nonzero = q.nonzero_count() as i64;
        let kernel = kernels::selected_kernel();
        let seq: Vec<i64> = (0..view.len())
            .map(|i| q.dot_words(view.item_words(i), nonzero, kernel))
            .collect();
        assert_eq!(view.dots(q), seq);
        assert_eq!(view.top_k(q, 7), cb.top_k(&t, 7));
        rayon::configure_pool(before);
    }

    #[test]
    fn top_k_many_matches_per_query_top_k() {
        // Small dim forces exact ties: the batched traversal must keep the
        // same candidates in the same order as the one-at-a-time scan.
        let cb = Codebook::derive(60, 96, 64);
        let view = cb.packed_view();
        let queries: Vec<TernaryHv> = (0..9).map(|i| random_ternary(64, 61 + i)).collect();
        let packed: Vec<PackedQuery<'_>> = queries.iter().map(|q| q.packed_query()).collect();
        for k in [1usize, 4, 96, 200] {
            let many = view.top_k_many(&packed, k);
            for (q, hits) in queries.iter().zip(&many) {
                assert_eq!(hits, &view.top_k(q.packed_query(), k), "k {k}");
                assert_eq!(hits, &cb.top_k(q, k), "k {k} vs reference");
            }
        }
        assert_eq!(view.top_k_many(&packed, 0), vec![Vec::new(); queries.len()]);
        assert_eq!(view.top_k_many(&[], 3), Vec::<Vec<SearchHit>>::new());
    }

    #[test]
    fn scan_top_k_many_routes_match_per_query() {
        let cb = Codebook::derive(62, 40, 512);
        let ternary: Vec<TernaryHv> = (0..5).map(|i| random_ternary(512, 63 + i)).collect();
        let grouped = TernaryHv::scan_top_k_many(&cb, &ternary, 3);
        let single: Vec<Vec<SearchHit>> = ternary.iter().map(|q| q.scan_top_k(&cb, 3)).collect();
        assert_eq!(grouped, single);
        // The accumulator default (no packed form) agrees too.
        let accums: Vec<AccumHv> = ternary.iter().map(|t| t.to_accum()).collect();
        assert_eq!(AccumHv::scan_top_k_many(&cb, &accums, 3), single);
    }

    #[test]
    fn debug_formats_are_nonempty() {
        let cb = Codebook::derive(52, 4, 64);
        assert!(!format!("{:?}", cb.packed_view()).is_empty());
        assert!(!format!("{:?}", PackedHv::from_bipolar(cb.item(0))).is_empty());
    }

    #[test]
    fn into_variants_match_plain_scans_across_reuses() {
        // The caller-buffer variants must agree with the plain scans and
        // stay correct when their buffers are reused (smaller and larger
        // follow-up scans, stale contents cleared).
        let cb = Codebook::derive(70, 96, 192);
        let view = cb.packed_view();
        let mut hits = Vec::new();
        let mut dots = Vec::new();
        let mut th_hits = Vec::new();
        let mut many = Vec::new();
        for round in 0..3 {
            for (i, k) in [(1usize, 1usize), (5, 4), (9, 96), (13, 200)].into_iter() {
                let t = random_ternary(192, 71 + i as u64 + round);
                let q = t.packed_query();
                view.top_k_into(q, k, &mut hits);
                assert_eq!(hits, view.top_k(q, k), "k {k} round {round}");
                view.dots_into(q, &mut dots);
                assert_eq!(dots, view.dots(q), "round {round}");
                view.above_threshold_into(q, 0.05, &mut th_hits);
                assert_eq!(th_hits, view.above_threshold(q, 0.05), "round {round}");
            }
            let queries: Vec<TernaryHv> = (0..7 - round as usize)
                .map(|i| random_ternary(192, 80 + round * 10 + i as u64))
                .collect();
            let packed: Vec<PackedQuery<'_>> = queries.iter().map(|q| q.packed_query()).collect();
            view.top_k_many_into(&packed, 5, &mut many);
            assert_eq!(many.len(), packed.len());
            assert_eq!(many, view.top_k_many(&packed, 5), "round {round}");
        }
        // k = 0 clears every buffer.
        let t = random_ternary(192, 99);
        view.top_k_into(t.packed_query(), 0, &mut hits);
        assert!(hits.is_empty());
        view.top_k_many_into(&[t.packed_query()], 0, &mut many);
        assert_eq!(many, vec![Vec::new()]);
    }

    #[test]
    fn scan_above_threshold_into_matches_plain_scan() {
        // The explicit sequential entry point must agree with the
        // parallel-capable scan for both packed queries and the accum
        // default, and inside a parallel region the gated scan must stay
        // bit-identical (the nested-suppression path).
        let cb = Codebook::derive(76, 64, 256);
        let t = random_ternary(256, 77);
        let mut out = Vec::new();
        t.scan_above_threshold_into(&cb, 0.03, &mut out);
        assert_eq!(out, t.scan_above_threshold(&cb, 0.03));
        let accum = t.to_accum();
        accum.scan_above_threshold_into(&cb, 0.03, &mut out);
        assert_eq!(out, accum.scan_above_threshold(&cb, 0.03));
        // From inside a region the gate forces the sequential path; the
        // hits must stay bit-identical. (Two items on a two-lane pool so
        // the closure genuinely runs in-region.)
        let _guard = pool_test_lock();
        let before = rayon::current_num_threads();
        rayon::configure_pool(2);
        let reference = t.scan_above_threshold(&cb, 0.03);
        let nested: Vec<Vec<SearchHit>> = vec![0u64, 1]
            .into_par_iter()
            .map(|_| {
                assert!(rayon::in_parallel_region());
                t.scan_above_threshold(&cb, 0.03)
            })
            .collect();
        rayon::configure_pool(before);
        assert_eq!(nested[0], reference);
        assert_eq!(nested[1], reference);
    }

    #[test]
    fn batched_scan_exceeding_query_block_matches_per_query() {
        // More queries than one register block (QUERY_BLOCK) and more
        // items than one shard: the tiled traversal must stay
        // bit-identical to the one-at-a-time scans.
        let cb = Codebook::derive(72, 300, 2048);
        let view = cb.packed_view();
        assert!(view.num_shards() > 1, "geometry must span multiple tiles");
        let queries: Vec<TernaryHv> = (0..QUERY_BLOCK as u64 * 3 + 1)
            .map(|i| random_ternary(2048, 73 + i))
            .collect();
        let packed: Vec<PackedQuery<'_>> = queries.iter().map(|q| q.packed_query()).collect();
        let many = view.top_k_many(&packed, 6);
        for (q, hits) in queries.iter().zip(&many) {
            assert_eq!(hits, &view.top_k(q.packed_query(), 6));
            assert_eq!(hits, &cb.top_k(q, 6));
        }
    }

    #[test]
    fn every_available_kernel_scans_bit_identically() {
        // Small dim forces exact ties; every dispatchable kernel must
        // keep the reference candidate set and tie ordering.
        let _guard = kernels::selection_test_lock();
        let cb = Codebook::derive(74, 80, 48);
        let view = cb.packed_view();
        let t = random_ternary(48, 75);
        let reference = cb.top_k(&t, 10);
        let original = kernels::selected_kernel();
        for kernel in kernels::available_kernels() {
            kernels::force_kernel(kernel.name()).expect("available");
            assert_eq!(
                view.top_k(t.packed_query(), 10),
                reference,
                "kernel {}",
                kernel.name()
            );
        }
        kernels::force_kernel(original.name()).expect("restore");
    }
}
