//! Runtime-dispatched SIMD scan kernels.
//!
//! Every FactorHD recognition step — level arg-max, beam descent, Rep-3
//! threshold decoding — bottoms out in one of two inner loops over packed
//! `u64` words:
//!
//! * [`ScanKernel::hamming_words`] — `Σ popcount(a[i] ^ b[i])`, the
//!   dense-query scan kernel;
//! * [`ScanKernel::masked_hamming_words`] —
//!   `Σ popcount((s[i] ^ w[i]) & m[i])`, the ternary-query scan kernel.
//!
//! This module compiles every implementation the target architecture
//! admits and picks the fastest one the *running* CPU supports, once, at
//! first use:
//!
//! | name          | requires (runtime)         | technique |
//! |---------------|----------------------------|-----------|
//! | `scalar`      | —                          | one `count_ones` per word (the reference oracle) |
//! | `harley-seal` | —                          | carry-save-adder ladder, 1 popcount per 16 words |
//! | `popcnt`      | x86-64 `POPCNT`            | 4-way unrolled hardware popcount |
//! | `avx2`        | x86-64 `AVX2` + `POPCNT`   | 256-bit nibble-LUT popcount (`vpshufb` + `vpsadbw`) |
//! | `avx512`      | x86-64 `AVX512F` + `AVX512VPOPCNTDQ` + `POPCNT` | 512-bit `vpopcntq` |
//!
//! Dispatch order is `avx512` → `avx2` → `popcnt` → `harley-seal`; the
//! `FACTORHD_KERNEL` environment variable (read once, at first use)
//! forces a specific row, and [`force_kernel`] does the same at runtime.
//! All kernels are **bit-identical**: `scalar` is the oracle every other
//! row is property-tested against, so forcing a kernel can change
//! throughput but never results. See `docs/KERNELS.md` for the dispatch
//! design, the safety argument, and how to add a kernel.

use crate::HdcError;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable forcing a specific kernel (`scalar`,
/// `harley-seal`, `popcnt`, `avx2`, `avx512`, or `auto`). Read once at
/// first kernel use; later changes to the process environment have no
/// effect (use [`force_kernel`] for runtime switching).
pub const KERNEL_ENV: &str = "FACTORHD_KERNEL";

/// One scan-kernel implementation: a named pair of word-level popcount
/// loops, selected at runtime by [`selected_kernel`].
///
/// The function pointers are `unsafe fn` because the SIMD rows are
/// compiled with `#[target_feature]`: calling one on a CPU without that
/// feature is undefined behavior. The safe methods below uphold the
/// invariant that a `ScanKernel` is only reachable through this module's
/// constructors — [`selected_kernel`], [`force_kernel`],
/// [`available_kernels`] — which all verify the required CPU features
/// with `is_x86_feature_detected!` before exposing the kernel.
pub struct ScanKernel {
    name: &'static str,
    /// `true` when the running CPU supports this kernel (checked once
    /// per call site via the detection macro; the macro itself caches).
    supported: fn() -> bool,
    hamming: unsafe fn(&[u64], &[u64]) -> u64,
    masked: unsafe fn(&[u64], &[u64], &[u64]) -> u64,
}

impl ScanKernel {
    /// The kernel's dispatch name (the value `FACTORHD_KERNEL` accepts).
    #[inline]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// `true` when the running CPU can execute this kernel.
    #[inline]
    pub fn is_supported(&self) -> bool {
        (self.supported)()
    }

    /// `Σ popcount(a[i] ^ b[i])` — the dense-query scan kernel.
    ///
    /// # Panics
    ///
    /// Panics (via `debug_assert`) on length mismatch; callers guarantee
    /// equal word counts.
    #[inline]
    pub fn hamming_words(&self, a: &[u64], b: &[u64]) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        // SAFETY: this kernel was only handed out after `is_supported`
        // confirmed the CPU features its `#[target_feature]` body needs
        // (see the module constructors); slices are length-checked above.
        #[allow(unsafe_code)]
        unsafe {
            (self.hamming)(a, b)
        }
    }

    /// `Σ popcount((sign[i] ^ words[i]) & mask[i])` — the ternary-query
    /// scan kernel.
    ///
    /// # Panics
    ///
    /// Panics (via `debug_assert`) on length mismatch; callers guarantee
    /// equal word counts.
    #[inline]
    pub fn masked_hamming_words(&self, sign: &[u64], mask: &[u64], words: &[u64]) -> u64 {
        debug_assert_eq!(sign.len(), mask.len());
        debug_assert_eq!(sign.len(), words.len());
        // SAFETY: as in `hamming_words` — CPU support was verified before
        // this kernel became reachable, and lengths are checked above.
        #[allow(unsafe_code)]
        unsafe {
            (self.masked)(sign, mask, words)
        }
    }
}

impl std::fmt::Debug for ScanKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScanKernel")
            .field("name", &self.name)
            .field("supported", &self.is_supported())
            .finish()
    }
}

impl PartialEq for ScanKernel {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for ScanKernel {}

// ---------------------------------------------------------------------
// Portable kernels (every architecture)
// ---------------------------------------------------------------------

fn always() -> bool {
    true
}

/// The scalar reference oracle: one `count_ones` per word, no tricks.
/// Every other kernel is property-tested bit-identical to this one.
fn hamming_scalar(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x ^ y).count_ones() as u64)
        .sum()
}

fn masked_hamming_scalar(s: &[u64], m: &[u64], w: &[u64]) -> u64 {
    s.iter()
        .zip(m)
        .zip(w)
        .map(|((x, y), z)| ((x ^ z) & y).count_ones() as u64)
        .sum()
}

/// Carry-save adder: returns the (sum, carry) bit planes of `a + b + c`.
#[inline(always)]
fn csa(a: u64, b: u64, c: u64) -> (u64, u64) {
    let u = a ^ b;
    (u ^ c, (a & b) | (u & c))
}

/// Running state of a Harley–Seal ladder: bit planes holding the 1s, 2s,
/// 4s and 8s digits of the popcount sum, plus the completed 16-blocks.
#[derive(Default)]
struct LadderState {
    ones: u64,
    twos: u64,
    fours: u64,
    eights: u64,
    sixteens_total: u64,
}

impl LadderState {
    /// Folds 16 words into the ladder: 15 CSA steps plus **one** popcount
    /// instead of 16. On targets where `count_ones` lowers to a multi-op
    /// SWAR sequence (no hardware `POPCNT`), cutting popcount invocations
    /// 16-fold is what makes this the portable fallback of choice — while
    /// staying exact (the ladder is pure integer carry bookkeeping).
    #[inline(always)]
    fn fold16(&mut self, w: &[u64; 16]) {
        let (s, twos_a) = csa(self.ones, w[0], w[1]);
        let (s, twos_b) = csa(s, w[2], w[3]);
        let (s2, fours_a) = csa(self.twos, twos_a, twos_b);
        let (s, twos_a) = csa(s, w[4], w[5]);
        let (s, twos_b) = csa(s, w[6], w[7]);
        let (s2, fours_b) = csa(s2, twos_a, twos_b);
        let (s4, eights_a) = csa(self.fours, fours_a, fours_b);
        let (s, twos_a) = csa(s, w[8], w[9]);
        let (s, twos_b) = csa(s, w[10], w[11]);
        let (s2, fours_a) = csa(s2, twos_a, twos_b);
        let (s, twos_a) = csa(s, w[12], w[13]);
        let (s, twos_b) = csa(s, w[14], w[15]);
        let (s2, fours_b) = csa(s2, twos_a, twos_b);
        let (s4, eights_b) = csa(s4, fours_a, fours_b);
        let (s8, sixteens) = csa(self.eights, eights_a, eights_b);
        self.sixteens_total += sixteens.count_ones() as u64;
        self.ones = s;
        self.twos = s2;
        self.fours = s4;
        self.eights = s8;
    }

    /// The exact popcount sum of everything folded so far.
    #[inline(always)]
    fn total(&self) -> u64 {
        16 * self.sixteens_total
            + 8 * self.eights.count_ones() as u64
            + 4 * self.fours.count_ones() as u64
            + 2 * self.twos.count_ones() as u64
            + self.ones.count_ones() as u64
    }
}

fn hamming_harley_seal(a: &[u64], b: &[u64]) -> u64 {
    let mut state = LadderState::default();
    let mut ac = a.chunks_exact(16);
    let mut bc = b.chunks_exact(16);
    for (aw, bw) in (&mut ac).zip(&mut bc) {
        let mut buf = [0u64; 16];
        for ((o, x), y) in buf.iter_mut().zip(aw).zip(bw) {
            *o = x ^ y;
        }
        state.fold16(&buf);
    }
    let mut total = state.total();
    for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
        total += (x ^ y).count_ones() as u64;
    }
    total
}

fn masked_hamming_harley_seal(s: &[u64], m: &[u64], w: &[u64]) -> u64 {
    let mut state = LadderState::default();
    let mut sc = s.chunks_exact(16);
    let mut mc = m.chunks_exact(16);
    let mut wc = w.chunks_exact(16);
    for ((sw, mw), ww) in (&mut sc).zip(&mut mc).zip(&mut wc) {
        let mut buf = [0u64; 16];
        for (((o, x), y), z) in buf.iter_mut().zip(sw).zip(mw).zip(ww) {
            *o = (x ^ z) & y;
        }
        state.fold16(&buf);
    }
    let mut total = state.total();
    for ((x, y), z) in sc
        .remainder()
        .iter()
        .zip(mc.remainder())
        .zip(wc.remainder())
    {
        total += ((x ^ z) & y).count_ones() as u64;
    }
    total
}

// The portable rows wrap safe bodies; the pointer type in the vtable is
// `unsafe fn`, so thin unsafe-signature adapters are needed.
#[allow(unsafe_code)]
mod portable_adapters {
    pub(super) unsafe fn hamming_scalar(a: &[u64], b: &[u64]) -> u64 {
        super::hamming_scalar(a, b)
    }

    pub(super) unsafe fn masked_hamming_scalar(s: &[u64], m: &[u64], w: &[u64]) -> u64 {
        super::masked_hamming_scalar(s, m, w)
    }

    pub(super) unsafe fn hamming_harley_seal(a: &[u64], b: &[u64]) -> u64 {
        super::hamming_harley_seal(a, b)
    }

    pub(super) unsafe fn masked_hamming_harley_seal(s: &[u64], m: &[u64], w: &[u64]) -> u64 {
        super::masked_hamming_harley_seal(s, m, w)
    }
}

/// The scalar reference kernel (always available, the exactness oracle).
pub static SCALAR: ScanKernel = ScanKernel {
    name: "scalar",
    supported: always,
    hamming: portable_adapters::hamming_scalar,
    masked: portable_adapters::masked_hamming_scalar,
};

/// The portable Harley–Seal CSA-ladder kernel (always available; the
/// fallback when no SIMD feature is detected).
pub static HARLEY_SEAL: ScanKernel = ScanKernel {
    name: "harley-seal",
    supported: always,
    hamming: portable_adapters::hamming_harley_seal,
    masked: portable_adapters::masked_hamming_harley_seal,
};

// ---------------------------------------------------------------------
// x86-64 SIMD kernels
// ---------------------------------------------------------------------

/// Hardware-accelerated kernels for x86-64, each compiled with
/// `#[target_feature]` and only dispatched to after
/// `is_x86_feature_detected!` confirms the running CPU supports it.
///
/// Safety argument (the full version lives in `docs/KERNELS.md`): every
/// function here is `unsafe fn` solely because of its `#[target_feature]`
/// attribute — the bodies perform no raw-pointer arithmetic beyond
/// in-bounds `as_ptr().add(i)` reads guarded by explicit
/// `i + LANES <= len` loop conditions, all loads are unaligned-tolerant
/// (`loadu`), and no memory is written. Undefined behavior is therefore
/// possible only by executing an instruction the CPU lacks, which the
/// dispatch layer rules out before a kernel becomes reachable.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use core::arch::x86_64::*;

    pub(super) fn popcnt_supported() -> bool {
        std::arch::is_x86_feature_detected!("popcnt")
    }

    pub(super) fn avx2_supported() -> bool {
        std::arch::is_x86_feature_detected!("avx2") && popcnt_supported()
    }

    pub(super) fn avx512_supported() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vpopcntdq")
            && popcnt_supported()
    }

    // ----- POPCNT: 4-way unrolled hardware popcount -----

    #[target_feature(enable = "popcnt")]
    pub(super) unsafe fn hamming_popcnt(a: &[u64], b: &[u64]) -> u64 {
        // Four independent accumulators give the out-of-order core four
        // parallel dependency chains (POPCNT has a 3-cycle latency but
        // 1/cycle throughput on the cores that matter).
        let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
        let mut ac = a.chunks_exact(4);
        let mut bc = b.chunks_exact(4);
        for (aw, bw) in (&mut ac).zip(&mut bc) {
            c0 += (aw[0] ^ bw[0]).count_ones() as u64;
            c1 += (aw[1] ^ bw[1]).count_ones() as u64;
            c2 += (aw[2] ^ bw[2]).count_ones() as u64;
            c3 += (aw[3] ^ bw[3]).count_ones() as u64;
        }
        let mut total = c0 + c1 + c2 + c3;
        for (x, y) in ac.remainder().iter().zip(bc.remainder()) {
            total += (x ^ y).count_ones() as u64;
        }
        total
    }

    #[target_feature(enable = "popcnt")]
    pub(super) unsafe fn masked_hamming_popcnt(s: &[u64], m: &[u64], w: &[u64]) -> u64 {
        let (mut c0, mut c1, mut c2, mut c3) = (0u64, 0u64, 0u64, 0u64);
        let mut sc = s.chunks_exact(4);
        let mut mc = m.chunks_exact(4);
        let mut wc = w.chunks_exact(4);
        for ((sw, mw), ww) in (&mut sc).zip(&mut mc).zip(&mut wc) {
            c0 += ((sw[0] ^ ww[0]) & mw[0]).count_ones() as u64;
            c1 += ((sw[1] ^ ww[1]) & mw[1]).count_ones() as u64;
            c2 += ((sw[2] ^ ww[2]) & mw[2]).count_ones() as u64;
            c3 += ((sw[3] ^ ww[3]) & mw[3]).count_ones() as u64;
        }
        let mut total = c0 + c1 + c2 + c3;
        for ((x, y), z) in sc
            .remainder()
            .iter()
            .zip(mc.remainder())
            .zip(wc.remainder())
        {
            total += ((x ^ z) & y).count_ones() as u64;
        }
        total
    }

    // ----- AVX2: nibble-LUT popcount (Muła), 4 words per vector -----

    /// Per-lane popcount of a 256-bit vector via the 16-entry nibble
    /// lookup table, horizontally summed to one count per 64-bit lane by
    /// `vpsadbw` (each byte count is ≤ 8, so the per-lane sums fit
    /// comfortably in a byte before the SAD step).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn popcount_epi64_avx2(v: __m256i) -> __m256i {
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2,
            3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
        let counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        _mm256_sad_epu8(counts, _mm256_setzero_si256())
    }

    /// Horizontal sum of the four 64-bit lanes of an AVX2 accumulator.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce_epi64_avx2(v: __m256i) -> u64 {
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v);
        lanes[0] + lanes[1] + lanes[2] + lanes[3]
    }

    #[target_feature(enable = "avx2,popcnt")]
    pub(super) unsafe fn hamming_avx2(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            acc = _mm256_add_epi64(acc, popcount_epi64_avx2(_mm256_xor_si256(va, vb)));
            i += 4;
        }
        let mut total = reduce_epi64_avx2(acc);
        while i < n {
            total += (a[i] ^ b[i]).count_ones() as u64;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2,popcnt")]
    pub(super) unsafe fn masked_hamming_avx2(s: &[u64], m: &[u64], w: &[u64]) -> u64 {
        let n = s.len();
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 4 <= n {
            let vs = _mm256_loadu_si256(s.as_ptr().add(i).cast());
            let vm = _mm256_loadu_si256(m.as_ptr().add(i).cast());
            let vw = _mm256_loadu_si256(w.as_ptr().add(i).cast());
            let x = _mm256_and_si256(_mm256_xor_si256(vs, vw), vm);
            acc = _mm256_add_epi64(acc, popcount_epi64_avx2(x));
            i += 4;
        }
        let mut total = reduce_epi64_avx2(acc);
        while i < n {
            total += ((s[i] ^ w[i]) & m[i]).count_ones() as u64;
            i += 1;
        }
        total
    }

    // ----- AVX-512: native vpopcntq, 8 words per vector -----

    /// Horizontal sum of the eight 64-bit lanes of an AVX-512 accumulator.
    #[inline]
    #[target_feature(enable = "avx512f")]
    unsafe fn reduce_epi64_avx512(v: __m512i) -> u64 {
        _mm512_reduce_add_epi64(v) as u64
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq,popcnt")]
    pub(super) unsafe fn hamming_avx512(a: &[u64], b: &[u64]) -> u64 {
        let n = a.len();
        let mut acc = _mm512_setzero_si512();
        let mut i = 0usize;
        while i + 8 <= n {
            let va = _mm512_loadu_si512(a.as_ptr().add(i).cast());
            let vb = _mm512_loadu_si512(b.as_ptr().add(i).cast());
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_xor_si512(va, vb)));
            i += 8;
        }
        let mut total = reduce_epi64_avx512(acc);
        while i < n {
            total += (a[i] ^ b[i]).count_ones() as u64;
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx512f,avx512vpopcntdq,popcnt")]
    pub(super) unsafe fn masked_hamming_avx512(s: &[u64], m: &[u64], w: &[u64]) -> u64 {
        let n = s.len();
        let mut acc = _mm512_setzero_si512();
        let mut i = 0usize;
        while i + 8 <= n {
            let vs = _mm512_loadu_si512(s.as_ptr().add(i).cast());
            let vm = _mm512_loadu_si512(m.as_ptr().add(i).cast());
            let vw = _mm512_loadu_si512(w.as_ptr().add(i).cast());
            let x = _mm512_and_si512(_mm512_xor_si512(vs, vw), vm);
            acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(x));
            i += 8;
        }
        let mut total = reduce_epi64_avx512(acc);
        while i < n {
            total += ((s[i] ^ w[i]) & m[i]).count_ones() as u64;
            i += 1;
        }
        total
    }
}

/// The hardware-popcount kernel (x86-64 only; requires `POPCNT`).
#[cfg(target_arch = "x86_64")]
pub static POPCNT: ScanKernel = ScanKernel {
    name: "popcnt",
    supported: x86::popcnt_supported,
    hamming: x86::hamming_popcnt,
    masked: x86::masked_hamming_popcnt,
};

/// The AVX2 nibble-LUT popcount kernel (x86-64 only; requires `AVX2` and
/// `POPCNT`).
#[cfg(target_arch = "x86_64")]
pub static AVX2: ScanKernel = ScanKernel {
    name: "avx2",
    supported: x86::avx2_supported,
    hamming: x86::hamming_avx2,
    masked: x86::masked_hamming_avx2,
};

/// The AVX-512 `vpopcntq` kernel (x86-64 only; requires `AVX512F`,
/// `AVX512VPOPCNTDQ`, and `POPCNT`).
#[cfg(target_arch = "x86_64")]
pub static AVX512: ScanKernel = ScanKernel {
    name: "avx512",
    supported: x86::avx512_supported,
    hamming: x86::hamming_avx512,
    masked: x86::masked_hamming_avx512,
};

/// Every kernel compiled into this build, in dispatch-preference order
/// (fastest candidate first, portable fallbacks last). Some entries may
/// be unsupported on the running CPU — see [`available_kernels`].
pub fn compiled_kernels() -> &'static [&'static ScanKernel] {
    #[cfg(target_arch = "x86_64")]
    static COMPILED: [&ScanKernel; 5] = [&AVX512, &AVX2, &POPCNT, &HARLEY_SEAL, &SCALAR];
    #[cfg(not(target_arch = "x86_64"))]
    static COMPILED: [&ScanKernel; 2] = [&HARLEY_SEAL, &SCALAR];
    &COMPILED
}

/// The kernels the running CPU can execute, in dispatch-preference order.
/// Always ends with the portable `harley-seal` and `scalar` rows.
pub fn available_kernels() -> Vec<&'static ScanKernel> {
    compiled_kernels()
        .iter()
        .copied()
        .filter(|k| k.is_supported())
        .collect()
}

/// The kernel auto-detection would pick on this CPU (ignoring the
/// environment override and any [`force_kernel`] call).
pub fn detected_kernel() -> &'static ScanKernel {
    compiled_kernels()
        .iter()
        .copied()
        .find(|k| k.is_supported() && k.name != "scalar")
        .unwrap_or(&SCALAR)
}

/// Comma-separated list of the scan-relevant CPU features detected at
/// runtime (empty when none of them are present, e.g. off x86-64).
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut features = Vec::new();
        if std::arch::is_x86_feature_detected!("popcnt") {
            features.push("popcnt");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            features.push("avx512f");
        }
        if std::arch::is_x86_feature_detected!("avx512vpopcntdq") {
            features.push("avx512vpopcntdq");
        }
        features.join(",")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        String::new()
    }
}

/// Index-into-[`compiled_kernels`] of the active kernel, plus one;
/// zero means "not yet selected".
static SELECTED: AtomicUsize = AtomicUsize::new(0);

fn kernel_by_name(name: &str) -> Result<&'static ScanKernel, HdcError> {
    let compiled = compiled_kernels();
    let Some(kernel) = compiled.iter().copied().find(|k| k.name == name) else {
        let names: Vec<&str> = compiled.iter().map(|k| k.name).collect();
        return Err(HdcError::UnknownKernel {
            requested: name.to_owned(),
            available: format!("auto,{}", names.join(",")),
        });
    };
    if !kernel.is_supported() {
        return Err(HdcError::UnknownKernel {
            requested: format!("{name} (compiled, but unsupported by this CPU)"),
            available: available_kernels()
                .iter()
                .map(|k| k.name)
                .collect::<Vec<_>>()
                .join(","),
        });
    }
    Ok(kernel)
}

fn store_selected(kernel: &'static ScanKernel) {
    let index = compiled_kernels()
        .iter()
        .position(|k| std::ptr::eq(*k, kernel))
        .expect("kernel comes from the compiled table");
    SELECTED.store(index + 1, Ordering::Release);
}

fn init_from_env() -> &'static ScanKernel {
    let kernel = match std::env::var(KERNEL_ENV) {
        Ok(name) if !name.is_empty() && name != "auto" => match kernel_by_name(&name) {
            Ok(kernel) => kernel,
            Err(err) => panic!("invalid {KERNEL_ENV}={name}: {err}"),
        },
        _ => detected_kernel(),
    };
    store_selected(kernel);
    kernel
}

/// The active scan kernel: the `FACTORHD_KERNEL` override if set (first
/// use only), the last [`force_kernel`] call if any, otherwise the best
/// kernel the running CPU supports.
///
/// # Panics
///
/// Panics on first use if `FACTORHD_KERNEL` names an unknown kernel or
/// one this CPU cannot execute — a misconfigured deployment should fail
/// loudly at startup, not silently fall back.
#[inline]
pub fn selected_kernel() -> &'static ScanKernel {
    let index = SELECTED.load(Ordering::Acquire);
    if index != 0 {
        compiled_kernels()[index - 1]
    } else {
        init_from_env()
    }
}

/// Forces the active kernel at runtime: `name` is a row of the dispatch
/// table (`scalar`, `harley-seal`, `popcnt`, `avx2`, `avx512`) or
/// `auto` to return to CPU detection. Returns the kernel now active.
///
/// Every kernel is bit-identical, so switching mid-flight changes
/// throughput but never results — concurrent scans simply finish on
/// whichever kernel they started with.
///
/// # Errors
///
/// [`HdcError::UnknownKernel`] when `name` is not a compiled kernel or
/// the running CPU does not support it.
pub fn force_kernel(name: &str) -> Result<&'static ScanKernel, HdcError> {
    let kernel = if name == "auto" {
        detected_kernel()
    } else {
        kernel_by_name(name)?
    };
    store_selected(kernel);
    Ok(kernel)
}

/// Serializes lib tests that mutate the process-global kernel selection
/// (results are kernel-independent, but assertions *about the selection
/// itself* would race). Poisoning is ignored: a failed sibling test must
/// not cascade.
#[cfg(test)]
pub(crate) fn selection_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic adversarial word patterns: pseudorandom, all-ones
    /// (stressing every carry level of the ladder), and alternating
    /// signs.
    fn pattern(tag: u64, i: usize) -> u64 {
        match tag {
            0 => crate::derive_seed(&[0xC0DE, i as u64]),
            1 => u64::MAX,
            2 => 0xAAAA_AAAA_AAAA_AAAA,
            _ => 0,
        }
    }

    #[test]
    fn every_available_kernel_matches_scalar() {
        // Lengths straddling every lane boundary (4, 8, 16 words) and
        // the Harley–Seal 16-word block.
        for kernel in available_kernels() {
            for n in (0..40).chain([63, 64, 65, 127, 128, 129, 255, 256, 257]) {
                for (ta, tb, tm) in [(0, 0, 0), (1, 3, 1), (2, 2, 2), (0, 1, 3)] {
                    let a: Vec<u64> = (0..n).map(|i| pattern(ta, i)).collect();
                    let b: Vec<u64> = (0..n).map(|i| pattern(tb, i + 7)).collect();
                    let m: Vec<u64> = (0..n).map(|i| pattern(tm, i + 13)).collect();
                    assert_eq!(
                        kernel.hamming_words(&a, &b),
                        SCALAR.hamming_words(&a, &b),
                        "kernel {} hamming n {n} patterns {ta}/{tb}",
                        kernel.name()
                    );
                    assert_eq!(
                        kernel.masked_hamming_words(&a, &m, &b),
                        SCALAR.masked_hamming_words(&a, &m, &b),
                        "kernel {} masked n {n} patterns {ta}/{tb}/{tm}",
                        kernel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn portable_rows_are_always_available() {
        let names: Vec<&str> = available_kernels().iter().map(|k| k.name()).collect();
        assert!(names.contains(&"harley-seal"));
        assert!(names.contains(&"scalar"));
    }

    #[test]
    fn detection_never_picks_scalar() {
        // `scalar` exists as the oracle and the forced-override floor;
        // auto-detection should always prefer at least the ladder.
        assert_ne!(detected_kernel().name(), "scalar");
    }

    #[test]
    fn force_kernel_round_trips() {
        let _guard = selection_test_lock();
        let original = selected_kernel();
        for kernel in available_kernels() {
            let forced = force_kernel(kernel.name()).expect("available kernel");
            assert_eq!(forced.name(), kernel.name());
            assert_eq!(selected_kernel().name(), kernel.name());
        }
        assert!(force_kernel("no-such-kernel").is_err());
        let auto = force_kernel("auto").expect("auto always valid");
        assert_eq!(auto.name(), detected_kernel().name());
        // Leave the process-global selection as we found it.
        force_kernel(original.name()).expect("original kernel still available");
    }

    #[test]
    fn unknown_kernel_error_lists_options() {
        let err = force_kernel("quantum").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("quantum"), "{msg}");
        assert!(msg.contains("scalar"), "{msg}");
    }

    #[test]
    fn debug_format_names_the_kernel() {
        let text = format!("{:?}", &SCALAR);
        assert!(text.contains("scalar"));
    }
}
