//! Named item memory: a symbol-to-hypervector associative store.
//!
//! The examples and the neuro-symbolic pipeline use this to give
//! human-readable names ("animal", "dog", "spaniel", "Fido") to the vectors
//! of a taxonomy, and to run reverse lookups (cleanup) from a noisy vector
//! back to the closest named symbol.

use crate::{BipolarHv, HdcError, SearchHit, Similarity};
use parking_lot::RwLock;
use rand::Rng;
use std::collections::HashMap;

/// An associative memory mapping symbol names to hypervectors.
///
/// Interior mutability (a [`parking_lot::RwLock`]) lets concurrent readers
/// share the memory during parallel experiment trials while new symbols can
/// still be interned on demand.
///
/// ```
/// use hdc::ItemMemory;
/// use rand::SeedableRng;
///
/// let memory = ItemMemory::new(512);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let dog = memory.intern("dog", &mut rng);
/// // Interning again returns the identical vector.
/// assert_eq!(memory.intern("dog", &mut rng), dog);
/// assert_eq!(memory.lookup_best(&dog).unwrap().0, "dog");
/// ```
#[derive(Debug)]
pub struct ItemMemory {
    dim: usize,
    store: RwLock<Store>,
}

#[derive(Debug, Default)]
struct Store {
    names: Vec<String>,
    vectors: Vec<BipolarHv>,
    by_name: HashMap<String, usize>,
}

impl ItemMemory {
    /// Creates an empty memory for vectors of dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        ItemMemory {
            dim,
            store: RwLock::new(Store::default()),
        }
    }

    /// The hypervector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored symbols.
    pub fn len(&self) -> usize {
        self.store.read().names.len()
    }

    /// `true` if no symbols are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the vector for `name`, creating a fresh random one on first
    /// use. Idempotent per name.
    pub fn intern<R: Rng + ?Sized>(&self, name: &str, rng: &mut R) -> BipolarHv {
        if let Some(v) = self.get(name) {
            return v;
        }
        let mut store = self.store.write();
        // Double-check under the write lock (another thread may have won).
        if let Some(&idx) = store.by_name.get(name) {
            return store.vectors[idx].clone();
        }
        let v = BipolarHv::random(self.dim, rng);
        let next = store.names.len();
        store.by_name.insert(name.to_owned(), next);
        store.names.push(name.to_owned());
        store.vectors.push(v.clone());
        v
    }

    /// Inserts an explicit vector under `name`, replacing any previous one.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] if the vector has the wrong
    /// dimension.
    pub fn insert(&self, name: &str, vector: BipolarHv) -> Result<(), HdcError> {
        if vector.dim() != self.dim {
            return Err(HdcError::DimensionMismatch {
                left: self.dim,
                right: vector.dim(),
            });
        }
        let mut store = self.store.write();
        if let Some(&idx) = store.by_name.get(name) {
            store.vectors[idx] = vector;
        } else {
            let next = store.names.len();
            store.by_name.insert(name.to_owned(), next);
            store.names.push(name.to_owned());
            store.vectors.push(vector);
        }
        Ok(())
    }

    /// The stored vector for `name`, if present.
    pub fn get(&self, name: &str) -> Option<BipolarHv> {
        let store = self.store.read();
        store
            .by_name
            .get(name)
            .map(|&idx| store.vectors[idx].clone())
    }

    /// The stored vector for `name`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::UnknownSymbol`] if absent.
    pub fn require(&self, name: &str) -> Result<BipolarHv, HdcError> {
        self.get(name)
            .ok_or_else(|| HdcError::UnknownSymbol(name.to_owned()))
    }

    /// Cleanup: the stored symbol most similar to `query`.
    ///
    /// Returns `None` when the memory is empty.
    ///
    /// ```
    /// use hdc::ItemMemory;
    /// use rand::SeedableRng;
    ///
    /// let memory = ItemMemory::new(2048);
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    /// for name in ["cat", "dog", "bird"] {
    ///     memory.intern(name, &mut rng);
    /// }
    /// // A noisy copy of "dog" still cleans up to "dog".
    /// let noisy = memory.get("dog").unwrap().flip_noise(0.2, &mut rng);
    /// let (name, hit) = memory.lookup_best(&noisy).unwrap();
    /// assert_eq!(name, "dog");
    /// assert!(hit.sim > 0.3);
    /// ```
    pub fn lookup_best<Q: Similarity>(&self, query: &Q) -> Option<(String, SearchHit)> {
        let store = self.store.read();
        let mut best: Option<(usize, f64)> = None;
        for (idx, v) in store.vectors.iter().enumerate() {
            let sim = query.sim_to(v);
            if best.is_none_or(|(_, s)| sim > s) {
                best = Some((idx, sim));
            }
        }
        best.map(|(idx, sim)| (store.names[idx].clone(), SearchHit { index: idx, sim }))
    }

    /// All stored symbol names, in insertion order.
    pub fn names(&self) -> Vec<String> {
        self.store.read().names.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn intern_is_idempotent() {
        let mem = ItemMemory::new(128);
        let mut rng = rng_from_seed(70);
        let a = mem.intern("cat", &mut rng);
        let b = mem.intern("cat", &mut rng);
        assert_eq!(a, b);
        assert_eq!(mem.len(), 1);
    }

    #[test]
    fn distinct_names_get_distinct_vectors() {
        let mem = ItemMemory::new(1024);
        let mut rng = rng_from_seed(71);
        let a = mem.intern("cat", &mut rng);
        let b = mem.intern("dog", &mut rng);
        assert!(a.sim(&b).abs() < 0.2);
    }

    #[test]
    fn lookup_best_recovers_noisy_symbol() {
        let mem = ItemMemory::new(2048);
        let mut rng = rng_from_seed(72);
        for name in ["cat", "dog", "bird", "fish"] {
            mem.intern(name, &mut rng);
        }
        let noisy = mem.get("bird").unwrap().flip_noise(0.25, &mut rng);
        let (name, hit) = mem.lookup_best(&noisy).unwrap();
        assert_eq!(name, "bird");
        assert!(hit.sim > 0.3);
    }

    #[test]
    fn require_unknown_errors() {
        let mem = ItemMemory::new(64);
        assert_eq!(
            mem.require("ghost").unwrap_err(),
            HdcError::UnknownSymbol("ghost".into())
        );
    }

    #[test]
    fn insert_validates_dimension() {
        let mem = ItemMemory::new(64);
        let mut rng = rng_from_seed(73);
        let wrong = BipolarHv::random(65, &mut rng);
        assert!(mem.insert("x", wrong).is_err());
        let right = BipolarHv::random(64, &mut rng);
        assert!(mem.insert("x", right.clone()).is_ok());
        assert_eq!(mem.get("x").unwrap(), right);
    }

    #[test]
    fn insert_replaces() {
        let mem = ItemMemory::new(64);
        let mut rng = rng_from_seed(74);
        let v1 = BipolarHv::random(64, &mut rng);
        let v2 = BipolarHv::random(64, &mut rng);
        mem.insert("x", v1).unwrap();
        mem.insert("x", v2.clone()).unwrap();
        assert_eq!(mem.get("x").unwrap(), v2);
        assert_eq!(mem.len(), 1);
    }

    #[test]
    fn empty_lookup_is_none() {
        let mem = ItemMemory::new(64);
        let mut rng = rng_from_seed(75);
        let q = BipolarHv::random(64, &mut rng);
        assert!(mem.lookup_best(&q).is_none());
        assert!(mem.is_empty());
    }

    #[test]
    fn memory_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ItemMemory>();
    }
}
