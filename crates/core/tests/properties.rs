//! Property-based tests for FactorHD encoding/factorization invariants.

use factorhd_core::prelude::*;
use factorhd_core::threshold::{clause_density, expected_signal};
use hdc::rng_from_seed;
use proptest::prelude::*;

/// A random small-but-meaningful taxonomy description.
fn arb_taxonomy_spec() -> impl Strategy<Value = (usize, Vec<Vec<usize>>, u64)> {
    let class = prop_oneof![
        proptest::collection::vec(2usize..10, 1..=1),
        proptest::collection::vec(2usize..6, 2..=2),
    ];
    (
        // High enough that argmax decode is essentially deterministic even
        // for 4 deep classes (signal 0.5^4 ≫ noise ~ 1/√D).
        prop_oneof![Just(4096usize), Just(8192usize)],
        proptest::collection::vec(class, 2..=4),
        any::<u64>(),
    )
}

fn build(dim: usize, classes: &[Vec<usize>], seed: u64) -> Taxonomy {
    let mut b = TaxonomyBuilder::new(dim).seed(seed);
    for (i, levels) in classes.iter().enumerate() {
        b = b.class(&format!("class{i}"), levels);
    }
    b.build().expect("valid generated taxonomy")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Encoding then single-object factorization is the identity for any
    /// taxonomy shape at sufficient dimension.
    #[test]
    fn encode_factorize_roundtrip((dim, classes, seed) in arb_taxonomy_spec()) {
        let taxonomy = build(dim, &classes, seed);
        let encoder = Encoder::new(&taxonomy);
        let factorizer = Factorizer::new(&taxonomy, FactorizeConfig::default());
        let mut rng = rng_from_seed(seed ^ 0xF00D);
        let object = taxonomy.sample_object(&mut rng);
        let hv = encoder.encode_scene(&Scene::single(object.clone())).expect("encodable");
        let decoded = factorizer.factorize_single(&hv).expect("decodable");
        prop_assert_eq!(decoded.object(), &object);
    }

    /// Objects with absent classes round-trip too (NULL detection).
    #[test]
    fn null_classes_roundtrip((dim, classes, seed) in arb_taxonomy_spec()) {
        let taxonomy = build(dim.max(2048), &classes, seed);
        let encoder = Encoder::new(&taxonomy);
        let factorizer = Factorizer::new(&taxonomy, FactorizeConfig::default());
        let mut rng = rng_from_seed(seed ^ 0xBEEF);
        let object = taxonomy.sample_object_with_nulls(0.4, &mut rng);
        let hv = encoder.encode_scene(&Scene::single(object.clone())).expect("encodable");
        let decoded = factorizer.factorize_single(&hv).expect("decodable");
        prop_assert_eq!(decoded.object(), &object);
    }

    /// Clause density matches the analytic model for every clause width.
    #[test]
    fn clause_density_matches_model(levels in 1usize..5, seed in any::<u64>()) {
        let sizes = vec![4usize; levels];
        let taxonomy = build(16_384, &[sizes], seed);
        let encoder = Encoder::new(&taxonomy);
        let mut rng = rng_from_seed(seed);
        let object = taxonomy.sample_object(&mut rng);
        let clause = encoder
            .encode_clause(0, object.assignment(0))
            .expect("encodable clause");
        let k = levels + 1;
        let predicted = clause_density(k);
        prop_assert!(
            (clause.density() - predicted).abs() < 0.02,
            "k={} measured={} predicted={}", k, clause.density(), predicted
        );
    }

    /// The measured item similarity after label elimination matches the
    /// analytic expected signal within sampling noise.
    #[test]
    fn unbound_signal_matches_model((dim, classes, seed) in arb_taxonomy_spec()) {
        let taxonomy = build(dim.max(2048), &classes, seed);
        let encoder = Encoder::new(&taxonomy);
        let factorizer = Factorizer::new(&taxonomy, FactorizeConfig::default());
        let mut rng = rng_from_seed(seed ^ 0xCAFE);
        let object = taxonomy.sample_object(&mut rng);
        let hv = encoder.encode_scene(&Scene::single(object.clone())).expect("encodable");
        let decodes = factorizer.factorize_classes(&hv, &[0]).expect("decodable");
        let signal = expected_signal(&taxonomy.clause_sizes());
        // Winning similarity should be within 5 sigma of the prediction.
        let sigma = 5.0 / (taxonomy.dim() as f64).sqrt();
        prop_assert!(
            (decodes[0].sim - signal).abs() < sigma + 0.05,
            "sim={} signal={}", decodes[0].sim, signal
        );
    }

    /// Scene encoding is permutation-invariant (bundling commutes).
    #[test]
    fn scene_encoding_is_order_invariant((dim, classes, seed) in arb_taxonomy_spec()) {
        let taxonomy = build(dim, &classes, seed);
        let encoder = Encoder::new(&taxonomy);
        let mut rng = rng_from_seed(seed ^ 0xD00D);
        let a = taxonomy.sample_object(&mut rng);
        let b = taxonomy.sample_object(&mut rng);
        let ab = encoder.encode_scene(&Scene::new(vec![a.clone(), b.clone()])).expect("encodable");
        let ba = encoder.encode_scene(&Scene::new(vec![b, a])).expect("encodable");
        prop_assert_eq!(ab, ba);
    }

    /// Reconstruct-and-exclude is exact: re-encoding an object and
    /// subtracting it from the scene removes its contribution entirely
    /// (encoding is deterministic, so the residual of a single-object scene
    /// is the zero vector).
    #[test]
    fn exclusion_is_exact((dim, classes, seed) in arb_taxonomy_spec()) {
        let taxonomy = build(dim, &classes, seed);
        let encoder = Encoder::new(&taxonomy);
        let mut rng = rng_from_seed(seed ^ 0xAAAA);
        let object = taxonomy.sample_object(&mut rng);
        let mut hv = encoder.encode_scene(&Scene::single(object.clone())).expect("encodable");
        let reconstruction = encoder.encode_object(&object).expect("encodable");
        hv.sub_ternary(&reconstruction);
        prop_assert!(hv.is_zero());
    }

    /// Multi-object factorization of two distinct objects succeeds at high
    /// dimension for flat taxonomies.
    #[test]
    fn two_object_scenes_factorize(f in 2usize..5, m in 4usize..12, seed in any::<u64>()) {
        let taxonomy = TaxonomyBuilder::new(8192)
            .seed(seed)
            .uniform_classes(f, &[m])
            .build()
            .expect("valid taxonomy");
        let encoder = Encoder::new(&taxonomy);
        let factorizer = Factorizer::new(
            &taxonomy,
            FactorizeConfig {
                threshold: ThresholdPolicy::Analytic { n_objects: 2 },
                ..FactorizeConfig::default()
            },
        );
        let mut rng = rng_from_seed(seed ^ 0x2222);
        let scene = taxonomy.sample_scene(2, true, &mut rng);
        let hv = encoder.encode_scene(&scene).expect("encodable");
        let decoded = factorizer.factorize_multi(&hv).expect("decodable");
        prop_assert!(
            decoded.to_scene().same_multiset(&scene),
            "decoded {:?} vs truth {:?}", decoded.to_scene(), scene
        );
    }

    /// Replacing a codebook mid-serving can never leave a stale packed
    /// shard table in the scan path: after `set_codebook`, every scan
    /// through the taxonomy answers from the replacement items, even when
    /// the old codebook's table was already warm.
    #[test]
    fn set_codebook_never_serves_stale_packed_hits(
        (m, dim, seed) in (4usize..16, prop_oneof![Just(200usize), Just(512), Just(1000)], any::<u64>())
    ) {
        use hdc::{Codebook, CodebookScan};

        let taxonomy = TaxonomyBuilder::new(dim)
            .seed(seed)
            .class("a", &[m])
            .class("b", &[m])
            .build()
            .expect("valid taxonomy");

        // Warm the packed view of class 0's level-1 codebook.
        let stale = taxonomy.codebook(0, &[]).expect("codebook");
        let stale_generation = stale.packed_view().generation();
        prop_assert_eq!(stale_generation, stale.generation());

        // Install trained replacements.
        let replacement = Codebook::derive(seed ^ 0xFACE, m, dim);
        taxonomy.set_codebook(0, &[], replacement.clone()).expect("installable");

        // A re-fetched codebook carries a fresh generation and its packed
        // scans answer from the replacement items, bit-identical to the
        // scalar reference.
        let fresh = taxonomy.codebook(0, &[]).expect("codebook");
        prop_assert_ne!(fresh.generation(), stale_generation);
        for probe in 0..m {
            let query = replacement.item(probe).to_ternary();
            let hit = query.scan_best(&fresh).expect("non-empty");
            prop_assert_eq!(hit.index, probe);
            prop_assert!((hit.sim - 1.0).abs() < 1e-12);
            prop_assert_eq!(query.scan_top_k(&fresh, 3), fresh.top_k(&query, 3));
        }
        // The generation stamp pins any still-held pre-swap view to the
        // item set it was built from — staleness is detectable, never
        // silent.
        prop_assert_eq!(fresh.packed_view().generation(), fresh.generation());
        prop_assert_eq!(stale.packed_view().generation(), stale_generation);
    }
}
