//! Scene-membership queries: answer "does this scene contain …?" without
//! full factorization.
//!
//! The paper motivates partial factorization with scenarios where "only a
//! subset of class and subclass items are of interest" (§I). This module
//! takes that one step further: a [`SceneQuery`] checks for the presence of
//! a *specific* item combination by direct similarity probes — no codebook
//! scans, no combination enumeration — at a handful of dot products per
//! query.

use crate::threshold::{clause_member_correlation, expected_signal};
use crate::{FactorHdError, ItemPath, Taxonomy};
use hdc::{AccumHv, BipolarHv};

/// The outcome of a membership probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryAnswer {
    /// Whether the probe cleared its decision threshold.
    pub present: bool,
    /// The measured similarity evidence, normalized so `1.0` is the
    /// expected value for a scene that contains the queried combination
    /// exactly once (values near `2.0` indicate two copies, etc.).
    pub evidence: f64,
    /// The decision threshold applied (on the normalized scale).
    pub threshold: f64,
}

/// A membership query over a FactorHD scene vector.
///
/// ```
/// use factorhd_core::{Encoder, ItemPath, ObjectSpec, Scene, SceneQuery, TaxonomyBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let taxonomy = TaxonomyBuilder::new(4096)
///     .uniform_classes(3, &[16])
///     .build()?;
/// let object = ObjectSpec::present(vec![
///     ItemPath::top(3),
///     ItemPath::top(8),
///     ItemPath::top(1),
/// ]);
/// let hv = Encoder::new(&taxonomy).encode_scene(&Scene::single(object))?;
///
/// // Is there an object whose class 0 is item 3 and class 1 is item 8?
/// let query = SceneQuery::new(&taxonomy)
///     .with_item(0, ItemPath::top(3))?
///     .with_item(1, ItemPath::top(8))?;
/// assert!(query.evaluate(&hv)?.present);
///
/// // And with class 1 = item 9? No.
/// let absent = SceneQuery::new(&taxonomy)
///     .with_item(0, ItemPath::top(3))?
///     .with_item(1, ItemPath::top(9))?;
/// assert!(!absent.evaluate(&hv)?.present);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SceneQuery<'a> {
    taxonomy: &'a Taxonomy,
    /// Per queried class: (class index, queried item vector, clause size).
    probes: Vec<(usize, BipolarHv, usize)>,
    /// Decision threshold on the normalized evidence scale.
    decision: f64,
}

impl<'a> SceneQuery<'a> {
    /// Starts an empty query (matches any object until constrained).
    pub fn new(taxonomy: &'a Taxonomy) -> Self {
        SceneQuery {
            taxonomy,
            probes: Vec::new(),
            decision: 0.5,
        }
    }

    /// Requires the queried object to carry `path` in `class`.
    ///
    /// # Errors
    ///
    /// Path validation errors from the taxonomy.
    pub fn with_item(mut self, class: usize, path: ItemPath) -> Result<Self, FactorHdError> {
        self.taxonomy.validate_path(class, &path)?;
        let item = self.taxonomy.item_hv(class, &path)?;
        // The queried item is one member of a clause of (levels + 1)
        // bundled vectors.
        let k = self.taxonomy.levels(class) + 1;
        self.probes.push((class, item, k));
        Ok(self)
    }

    /// Requires `class` to be absent (NULL) on the queried object.
    ///
    /// # Errors
    ///
    /// [`FactorHdError::ClassOutOfBounds`] for an invalid class.
    pub fn with_absent(mut self, class: usize) -> Result<Self, FactorHdError> {
        if class >= self.taxonomy.num_classes() {
            return Err(FactorHdError::ClassOutOfBounds {
                index: class,
                len: self.taxonomy.num_classes(),
            });
        }
        let k = 2; // label + NULL
        self.probes
            .push((class, self.taxonomy.null_hv().clone(), k));
        Ok(self)
    }

    /// Overrides the decision threshold (normalized evidence scale;
    /// default `0.5` — halfway between "absent" and "present once").
    pub fn with_decision_threshold(mut self, threshold: f64) -> Self {
        self.decision = threshold;
        self
    }

    /// Number of constrained classes.
    pub fn len(&self) -> usize {
        self.probes.len()
    }

    /// `true` when no class has been constrained yet.
    pub fn is_empty(&self) -> bool {
        self.probes.is_empty()
    }

    /// Evaluates the query against a scene vector with **one** similarity
    /// measurement: bind the queried items together with the unqueried
    /// classes' labels, and compare the product's similarity to the
    /// expected single-occurrence signal.
    ///
    /// # Errors
    ///
    /// [`FactorHdError::DimensionMismatch`] on a wrong-size scene vector,
    /// [`FactorHdError::InvalidConfig`] for an empty query.
    pub fn evaluate(&self, scene: &AccumHv) -> Result<QueryAnswer, FactorHdError> {
        if scene.dim() != self.taxonomy.dim() {
            return Err(FactorHdError::DimensionMismatch {
                expected: self.taxonomy.dim(),
                actual: scene.dim(),
            });
        }
        if self.probes.is_empty() {
            return Err(FactorHdError::InvalidConfig(
                "scene query constrains no class".into(),
            ));
        }

        // Probe = ⊙ queried items ⊙ labels of unqueried classes. Each
        // queried clause contributes its member correlation c_k; each
        // unqueried clause contributes c_k via its label.
        let mut probe = BipolarHv::ones(self.taxonomy.dim());
        let mut queried = vec![false; self.taxonomy.num_classes()];
        let mut expected = 1.0f64;
        for (class, item, k) in &self.probes {
            probe.bind_assign(item);
            queried[*class] = true;
            expected *= clause_member_correlation(*k);
        }
        let clause_sizes = self.taxonomy.clause_sizes();
        for (class, &was_queried) in queried.iter().enumerate() {
            if !was_queried {
                probe.bind_assign(self.taxonomy.label(class));
                expected *= clause_member_correlation(clause_sizes[class]);
            }
        }

        let evidence = scene.sim_bipolar(&probe) / expected;
        Ok(QueryAnswer {
            present: evidence > self.decision,
            evidence,
            threshold: self.decision,
        })
    }

    /// The expected normalized-evidence noise floor for scenes of
    /// `n_objects` objects (useful for picking a custom decision
    /// threshold).
    pub fn noise_floor(&self, n_objects: usize) -> f64 {
        let sigma = ((n_objects.max(1) as f64) / self.taxonomy.dim() as f64).sqrt();
        sigma / expected_signal(&self.taxonomy.clause_sizes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Encoder, ObjectSpec, Scene, TaxonomyBuilder};

    fn taxonomy() -> Taxonomy {
        TaxonomyBuilder::new(8192)
            .seed(31)
            .class("animal", &[16, 4])
            .class("color", &[10])
            .class("size", &[6])
            .build()
            .expect("valid taxonomy")
    }

    fn scene_hv(taxonomy: &Taxonomy, objects: Vec<ObjectSpec>) -> AccumHv {
        Encoder::new(taxonomy)
            .encode_scene(&Scene::new(objects))
            .expect("encodable")
    }

    fn object(animal: &[u16], color: u16, size: u16) -> ObjectSpec {
        ObjectSpec::new(vec![
            Some(ItemPath::new(animal.to_vec())),
            Some(ItemPath::top(color)),
            Some(ItemPath::top(size)),
        ])
    }

    #[test]
    fn present_combination_is_found() {
        let t = taxonomy();
        let hv = scene_hv(&t, vec![object(&[3, 1], 7, 2), object(&[5, 0], 1, 4)]);
        let q = SceneQuery::new(&t)
            .with_item(0, ItemPath::new(vec![3, 1]))
            .unwrap()
            .with_item(1, ItemPath::top(7))
            .unwrap();
        let ans = q.evaluate(&hv).unwrap();
        assert!(ans.present, "evidence {}", ans.evidence);
        assert!(
            (ans.evidence - 1.0).abs() < 0.35,
            "evidence {}",
            ans.evidence
        );
    }

    #[test]
    fn cross_object_combination_is_rejected() {
        // Animal from object 1 + color from object 2: NOT one object.
        let t = taxonomy();
        let hv = scene_hv(&t, vec![object(&[3, 1], 7, 2), object(&[5, 0], 1, 4)]);
        let q = SceneQuery::new(&t)
            .with_item(0, ItemPath::new(vec![3, 1]))
            .unwrap()
            .with_item(1, ItemPath::top(1))
            .unwrap();
        let ans = q.evaluate(&hv).unwrap();
        assert!(!ans.present, "evidence {}", ans.evidence);
    }

    #[test]
    fn duplicate_objects_double_the_evidence() {
        let t = taxonomy();
        let o = object(&[3, 1], 7, 2);
        let hv = scene_hv(&t, vec![o.clone(), o]);
        let q = SceneQuery::new(&t).with_item(1, ItemPath::top(7)).unwrap();
        let ans = q.evaluate(&hv).unwrap();
        assert!(ans.present);
        assert!(
            (ans.evidence - 2.0).abs() < 0.5,
            "evidence {}",
            ans.evidence
        );
    }

    #[test]
    fn absent_class_query_works() {
        let t = taxonomy();
        let with_null = ObjectSpec::new(vec![
            Some(ItemPath::new(vec![2, 2])),
            None,
            Some(ItemPath::top(5)),
        ]);
        let hv = scene_hv(&t, vec![with_null]);
        let q = SceneQuery::new(&t).with_absent(1).unwrap();
        assert!(q.evaluate(&hv).unwrap().present);
        let q2 = SceneQuery::new(&t).with_item(1, ItemPath::top(3)).unwrap();
        assert!(!q2.evaluate(&hv).unwrap().present);
    }

    #[test]
    fn intermediate_level_items_can_be_queried() {
        // Query only the level-1 subclass, not the full path.
        let t = taxonomy();
        let hv = scene_hv(&t, vec![object(&[9, 3], 0, 0)]);
        let q = SceneQuery::new(&t).with_item(0, ItemPath::top(9)).unwrap();
        assert!(q.evaluate(&hv).unwrap().present);
        let wrong = SceneQuery::new(&t).with_item(0, ItemPath::top(8)).unwrap();
        assert!(!wrong.evaluate(&hv).unwrap().present);
    }

    #[test]
    fn validation_errors_surface() {
        let t = taxonomy();
        assert!(SceneQuery::new(&t).with_item(0, ItemPath::top(99)).is_err());
        assert!(SceneQuery::new(&t).with_absent(9).is_err());
        let q = SceneQuery::new(&t);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        let hv = AccumHv::zeros(8192);
        assert!(matches!(
            q.evaluate(&hv),
            Err(FactorHdError::InvalidConfig(_))
        ));
        let q = SceneQuery::new(&t).with_item(1, ItemPath::top(0)).unwrap();
        assert!(matches!(
            q.evaluate(&AccumHv::zeros(64)),
            Err(FactorHdError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn noise_floor_is_small_at_high_dim() {
        let t = taxonomy();
        let q = SceneQuery::new(&t).with_item(1, ItemPath::top(0)).unwrap();
        assert!(q.noise_floor(2) < 0.25, "floor {}", q.noise_floor(2));
    }
}
