//! Analytic accuracy prediction for FactorHD factorization.
//!
//! The clause combinatorics of [`crate::threshold`] give the expected
//! similarity (signal) of true items and the variance of spurious ones;
//! a Gaussian order-statistics argument then predicts the probability that
//! an arg-max decode picks the right item — i.e. the *accuracy curves of
//! Fig. 4 and Fig. 5 before running a single trial*. The prediction is
//! validated against measured accuracies in the test suite and can be used
//! to size `D` for a target accuracy ([`dimension_for_accuracy`]).

use crate::threshold::{clause_density, clause_member_correlation, expected_signal};
use crate::Taxonomy;

/// Standard normal cumulative distribution function (Abramowitz–Stegun
/// style erf approximation, |error| < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Predicted probability that one class-level arg-max decode over `m`
/// items succeeds, given the expected true-item similarity `signal` at
/// dimension `dim` with `n_objects` bundled objects whose clause-density
/// product is `rho`.
///
/// Model: the true item's similarity is `signal ± σ`, each of the `m − 1`
/// spurious items is `0 ± σ` with `σ = sqrt(N · ρ / D)` (only the non-zero
/// components of the clipped clause product carry noise); the decode
/// succeeds when the true item beats every spurious one. Using
/// independence: `P = ∫ φ(t) Φ((signal + σt) / σ)^{m−1} dt`, evaluated by
/// quadrature.
pub fn argmax_success_probability(
    signal: f64,
    dim: usize,
    m: usize,
    n_objects: usize,
    rho: f64,
) -> f64 {
    if m <= 1 {
        return 1.0;
    }
    let sigma = ((n_objects.max(1) as f64) * rho.clamp(f64::MIN_POSITIVE, 1.0) / dim as f64).sqrt();
    // Gauss–Legendre-ish fixed grid over t ∈ [-8, 8].
    let steps = 400;
    let lo = -8.0f64;
    let hi = 8.0f64;
    let dt = (hi - lo) / steps as f64;
    let mut total = 0.0;
    for i in 0..steps {
        let t = lo + (i as f64 + 0.5) * dt;
        let phi = (-0.5 * t * t).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let beat_one = normal_cdf((signal + sigma * t) / sigma);
        total += phi * beat_one.powi((m - 1) as i32) * dt;
    }
    total.clamp(0.0, 1.0)
}

/// Predicted exact-object accuracy of single-object (Rep 1 / Rep 2)
/// factorization over `taxonomy`: the product of per-class, per-level
/// arg-max success probabilities.
///
/// Conservative in two ways: it models the plain greedy descent
/// (`refine_width = 1`), and it treats levels independently — the measured
/// accuracy with the default refinement sits at or above this prediction.
pub fn predict_single_object_accuracy(taxonomy: &Taxonomy) -> f64 {
    let clause_sizes = taxonomy.clause_sizes();
    let rho: f64 = clause_sizes.iter().map(|&k| clause_density(k)).product();
    let mut acc = 1.0;
    for class in 0..taxonomy.num_classes() {
        // Per-level signal: the tested item is one member of this class's
        // clause; the other classes' labels have been eliminated.
        let mut signal = clause_member_correlation(clause_sizes[class]);
        for (other, &k) in clause_sizes.iter().enumerate() {
            if other != class {
                signal *= clause_member_correlation(k);
            }
        }
        for level in 0..taxonomy.levels(class) {
            let m = taxonomy.level_size(class, level);
            acc *= argmax_success_probability(signal, taxonomy.dim(), m, 1, rho);
        }
    }
    acc
}

/// The smallest dimension (searched over powers-of-two refinement) whose
/// predicted single-object accuracy reaches `target`.
///
/// # Panics
///
/// Panics if `target` is not within `(0, 1)`.
pub fn dimension_for_accuracy(f: usize, level_sizes: &[usize], target: f64) -> usize {
    assert!(target > 0.0 && target < 1.0, "target must be in (0,1)");
    let clause_sizes = vec![level_sizes.len() + 1; f];
    let signal = expected_signal(&clause_sizes);
    let rho: f64 = clause_sizes.iter().map(|&k| clause_density(k)).product();
    let predict = |dim: usize| -> f64 {
        let mut acc: f64 = 1.0;
        for _ in 0..f {
            for &m in level_sizes {
                acc *= argmax_success_probability(signal, dim, m, 1, rho);
            }
        }
        acc
    };
    let mut lo = 16usize;
    let mut hi = 16usize;
    while predict(hi) < target {
        hi *= 2;
        assert!(hi <= 1 << 26, "no feasible dimension below 2^26");
    }
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if predict(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::AccuracyCounter;
    use crate::{Encoder, FactorizeConfig, Factorizer, Scene, TaxonomyBuilder};

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841_344_7).abs() < 1e-5);
        assert!((normal_cdf(-1.0) - 0.158_655_3).abs() < 1e-5);
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn argmax_probability_limits() {
        // One item: always right.
        assert_eq!(argmax_success_probability(0.1, 1000, 1, 1, 1.0), 1.0);
        // Huge signal: certain.
        assert!(argmax_success_probability(0.9, 4096, 64, 1, 1.0) > 0.999);
        // Zero signal over many items: near chance (1/m).
        let p = argmax_success_probability(0.0, 1000, 100, 1, 1.0);
        assert!((p - 0.01).abs() < 0.01, "chance level {p}");
    }

    #[test]
    fn argmax_probability_monotone_in_dim_and_m() {
        let p_low_d = argmax_success_probability(0.125, 500, 64, 1, 1.0);
        let p_high_d = argmax_success_probability(0.125, 2000, 64, 1, 1.0);
        assert!(p_high_d > p_low_d);
        let p_small_m = argmax_success_probability(0.125, 1000, 8, 1, 1.0);
        let p_large_m = argmax_success_probability(0.125, 1000, 256, 1, 1.0);
        assert!(p_small_m > p_large_m);
        // Sparser clause products (lower ρ) mean less noise → higher success.
        let p_dense = argmax_success_probability(0.125, 1000, 64, 1, 1.0);
        let p_sparse = argmax_success_probability(0.125, 1000, 64, 1, 0.125);
        assert!(p_sparse > p_dense);
    }

    #[test]
    fn prediction_tracks_measured_rep1_accuracy() {
        // Measure Rep-1 accuracy at a deliberately marginal dimension and
        // compare with the analytic prediction (greedy decode, so configure
        // refine_width = 1 to match the model).
        let taxonomy = TaxonomyBuilder::new(160)
            .seed(21)
            .uniform_classes(3, &[64])
            .build()
            .expect("valid taxonomy");
        let predicted = predict_single_object_accuracy(&taxonomy);
        let encoder = Encoder::new(&taxonomy);
        let factorizer = Factorizer::new(
            &taxonomy,
            FactorizeConfig {
                refine_width: 1,
                detect_null: false,
                ..FactorizeConfig::default()
            },
        );
        let mut counter = AccuracyCounter::new();
        for trial in 0..300u64 {
            let mut rng = hdc::rng_from_seed(hdc::derive_seed(&[22, trial]));
            let object = taxonomy.sample_object(&mut rng);
            let hv = encoder
                .encode_scene(&Scene::single(object.clone()))
                .expect("encodable");
            let decoded = factorizer.factorize_single(&hv).expect("decodable");
            counter.record(decoded.object() == &object);
        }
        let measured = counter.accuracy();
        assert!(
            (measured - predicted).abs() < 0.12,
            "measured {measured} vs predicted {predicted}"
        );
        // The regime is genuinely marginal (neither 0 nor 1), so the test
        // actually discriminates.
        assert!(
            predicted > 0.2 && predicted < 0.98,
            "degenerate regime {predicted}"
        );
    }

    #[test]
    fn dimension_sizing_is_consistent_with_prediction() {
        let d = dimension_for_accuracy(3, &[64], 0.99);
        // Must actually achieve the target...
        let taxonomy = TaxonomyBuilder::new(d)
            .uniform_classes(3, &[64])
            .build()
            .expect("valid taxonomy");
        assert!(predict_single_object_accuracy(&taxonomy) >= 0.99);
        // ...and not be wastefully large (half of it should miss).
        let small = TaxonomyBuilder::new(d / 2)
            .uniform_classes(3, &[64])
            .build()
            .expect("valid taxonomy");
        assert!(predict_single_object_accuracy(&small) < 0.99);
    }

    #[test]
    fn deeper_hierarchies_need_more_dimensions() {
        let flat = dimension_for_accuracy(3, &[64], 0.99);
        let deep = dimension_for_accuracy(3, &[64, 8], 0.99);
        assert!(deep > flat, "deep {deep} vs flat {flat}");
    }

    #[test]
    fn more_factors_need_more_dimensions() {
        let f3 = dimension_for_accuracy(3, &[16], 0.99);
        let f5 = dimension_for_accuracy(5, &[16], 0.99);
        assert!(f5 > f3, "f5 {f5} vs f3 {f3}");
    }
}
