//! Accuracy scoring helpers shared by the tests and the benchmark harness.

use crate::{DecodedScene, ObjectSpec, Scene};

/// Whether a decoded object matches the ground truth exactly (all classes,
/// all levels, including absent classes).
pub fn object_matches(decoded: &ObjectSpec, truth: &ObjectSpec) -> bool {
    decoded == truth
}

/// Whether a decoded object matches the ground truth down to `depth`
/// subclass levels (deeper levels ignored).
pub fn object_matches_to_depth(decoded: &ObjectSpec, truth: &ObjectSpec, depth: usize) -> bool {
    decoded.truncated(depth) == truth.truncated(depth)
}

/// Whether a decoded scene recovers the ground-truth multiset of objects.
pub fn scene_matches(decoded: &DecodedScene, truth: &Scene) -> bool {
    decoded.to_scene().same_multiset(truth)
}

/// Fraction of per-class assignments the decode got right (partial credit;
/// used by the RAVEN attribute-level accuracy).
pub fn classwise_accuracy(decoded: &ObjectSpec, truth: &ObjectSpec) -> f64 {
    if truth.num_classes() == 0 {
        return 1.0;
    }
    let correct = decoded
        .assignments()
        .iter()
        .zip(truth.assignments())
        .filter(|(d, t)| d == t)
        .count();
    correct as f64 / truth.num_classes() as f64
}

/// Aggregates trial outcomes into an accuracy estimate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccuracyCounter {
    successes: u64,
    trials: u64,
}

impl AccuracyCounter {
    /// An empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one trial outcome.
    pub fn record(&mut self, success: bool) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: AccuracyCounter) {
        self.successes += other.successes;
        self.trials += other.trials;
    }

    /// Number of recorded trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Number of successes.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Success rate in `[0, 1]` (`1.0` for an empty counter, matching the
    /// "vacuously accurate" convention of the sweep harness).
    pub fn accuracy(&self) -> f64 {
        if self.trials == 0 {
            1.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FactorizeStats, ItemPath};

    fn obj(indices: &[u16]) -> ObjectSpec {
        ObjectSpec::present(indices.iter().map(|&i| ItemPath::top(i)).collect())
    }

    #[test]
    fn object_match_is_exact() {
        assert!(object_matches(&obj(&[1, 2]), &obj(&[1, 2])));
        assert!(!object_matches(&obj(&[1, 2]), &obj(&[1, 3])));
    }

    #[test]
    fn depth_truncated_match() {
        let deep_a = ObjectSpec::present(vec![ItemPath::new(vec![1, 2])]);
        let deep_b = ObjectSpec::present(vec![ItemPath::new(vec![1, 3])]);
        assert!(object_matches_to_depth(&deep_a, &deep_b, 1));
        assert!(!object_matches_to_depth(&deep_a, &deep_b, 2));
    }

    #[test]
    fn classwise_partial_credit() {
        let a = obj(&[1, 2, 3]);
        let b = obj(&[1, 9, 3]);
        assert!((classwise_accuracy(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((classwise_accuracy(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = AccuracyCounter::new();
        c.record(true);
        c.record(false);
        c.record(true);
        assert_eq!(c.trials(), 3);
        assert_eq!(c.successes(), 2);
        assert!((c.accuracy() - 2.0 / 3.0).abs() < 1e-12);

        let mut d = AccuracyCounter::new();
        d.record(true);
        c.merge(d);
        assert_eq!(c.trials(), 4);
        assert_eq!(c.successes(), 3);
    }

    #[test]
    fn empty_counter_is_vacuously_accurate() {
        assert_eq!(AccuracyCounter::new().accuracy(), 1.0);
    }

    #[test]
    fn scene_match_uses_multiset() {
        let truth = Scene::new(vec![obj(&[1]), obj(&[2])]);
        let decoded = DecodedScene {
            objects: vec![],
            stats: FactorizeStats::default(),
            residual_norm: 0.0,
        };
        assert!(!scene_matches(&decoded, &truth));
    }
}
