//! The FactorHD symbolic encoder (§III-A).
//!
//! One object is encoded in *bundling-binding-bundling* form:
//!
//! ```text
//! H = clip(LABEL_1 + a_1 + a_1x + …) ⊙ clip(LABEL_2 + a_2 + …) ⊙ …
//! ```
//!
//! Every class contributes one **clause**: the bundle of its redundant label
//! with the item vectors along the object's subclass path (or with the
//! global NULL vector when the class is absent), clipped to `{-1, 0, 1}`.
//! The clauses of all classes are then bound together. Scenes bundle the
//! object hypervectors without clipping, staying in `Z^D`.
//!
//! The redundant label is the paper's "extra memorization clause": binding a
//! scene with `LABEL_i` collapses class `i`'s clause to a near-constant,
//! which is what makes label-elimination factorization possible.

use crate::{FactorHdError, ItemPath, ObjectSpec, Scene, Taxonomy};
use hdc::{AccumHv, Bind, TernaryHv};

/// Encodes objects and scenes of a [`Taxonomy`] into FactorHD hypervectors.
///
/// ```
/// use factorhd_core::{Encoder, ItemPath, ObjectSpec, Scene, TaxonomyBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let taxonomy = TaxonomyBuilder::new(2048)
///     .class("shape", &[8])
///     .class("color", &[8])
///     .build()?;
/// let encoder = Encoder::new(&taxonomy);
/// let object = ObjectSpec::present(vec![ItemPath::top(3), ItemPath::top(5)]);
/// let hv = encoder.encode_object(&object)?;
/// assert_eq!(hv.dim(), 2048);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Encoder<'a> {
    taxonomy: &'a Taxonomy,
}

impl<'a> Encoder<'a> {
    /// Creates an encoder over `taxonomy`.
    pub fn new(taxonomy: &'a Taxonomy) -> Self {
        Encoder { taxonomy }
    }

    /// The taxonomy this encoder works over.
    pub fn taxonomy(&self) -> &'a Taxonomy {
        self.taxonomy
    }

    /// Encodes one class clause: `clip(LABEL + Σ path items)` for a present
    /// class, `clip(LABEL + NULL)` for an absent one.
    ///
    /// Clauses are served from the taxonomy's clause cache
    /// ([`Taxonomy::clause`]), so repeated encodes over a shared taxonomy
    /// never re-derive item vectors or re-accumulate the bundle.
    ///
    /// # Errors
    ///
    /// Propagates path validation errors from the taxonomy.
    pub fn encode_clause(
        &self,
        class: usize,
        assignment: Option<&ItemPath>,
    ) -> Result<TernaryHv, FactorHdError> {
        Ok(self.taxonomy.clause(class, assignment)?.as_ref().clone())
    }

    /// Encodes a clause from a **raw item vector** instead of a taxonomy
    /// path: `clip(LABEL + item)`. This is how neural query vectors (an
    /// encoded image that matches no codebook entry exactly) enter the
    /// FactorHD representation.
    ///
    /// # Errors
    ///
    /// [`FactorHdError::ClassOutOfBounds`] or
    /// [`FactorHdError::DimensionMismatch`].
    pub fn encode_clause_with_item(
        &self,
        class: usize,
        item: &hdc::BipolarHv,
    ) -> Result<TernaryHv, FactorHdError> {
        if class >= self.taxonomy.num_classes() {
            return Err(FactorHdError::ClassOutOfBounds {
                index: class,
                len: self.taxonomy.num_classes(),
            });
        }
        if item.dim() != self.taxonomy.dim() {
            return Err(FactorHdError::DimensionMismatch {
                expected: self.taxonomy.dim(),
                actual: item.dim(),
            });
        }
        let mut acc = AccumHv::zeros(self.taxonomy.dim());
        acc.add_bipolar(self.taxonomy.label(class), 1);
        acc.add_bipolar(item, 1);
        Ok(acc.clip_ternary())
    }

    /// Encodes an object from raw per-class item vectors (`None` = absent
    /// class): the binding of `clip(LABEL_i + item_i)` clauses.
    ///
    /// # Errors
    ///
    /// [`FactorHdError::ClassCountMismatch`] when `items.len()` differs
    /// from the class count, or the conditions of
    /// [`Encoder::encode_clause_with_item`].
    pub fn encode_object_with_items(
        &self,
        items: &[Option<&hdc::BipolarHv>],
    ) -> Result<TernaryHv, FactorHdError> {
        if items.len() != self.taxonomy.num_classes() {
            return Err(FactorHdError::ClassCountMismatch {
                object: items.len(),
                taxonomy: self.taxonomy.num_classes(),
            });
        }
        let mut product: Option<TernaryHv> = None;
        for (class, item) in items.iter().enumerate() {
            let clause = match item {
                Some(item) => self.encode_clause_with_item(class, item)?,
                None => self.encode_clause(class, None)?,
            };
            product = Some(match product {
                None => clause,
                Some(p) => p.bind(&clause),
            });
        }
        Ok(product.expect("taxonomy has at least one class"))
    }

    /// Encodes a full object: the binding of all class clauses.
    ///
    /// Clauses come from the taxonomy's clause cache, so a warm encode is
    /// one lookup plus one word-level bind per class.
    ///
    /// # Errors
    ///
    /// [`FactorHdError::ClassCountMismatch`] or path validation errors.
    pub fn encode_object(&self, object: &ObjectSpec) -> Result<TernaryHv, FactorHdError> {
        self.taxonomy.validate_object(object)?;
        let mut first: Option<std::sync::Arc<TernaryHv>> = None;
        let mut product: Option<TernaryHv> = None;
        for (class, assignment) in object.assignments().iter().enumerate() {
            let clause = self.taxonomy.clause(class, assignment.as_ref())?;
            match product.take() {
                Some(p) => product = Some(p.bind(clause.as_ref())),
                None => match first.take() {
                    Some(f) => product = Some(f.bind(clause.as_ref())),
                    None => first = Some(clause),
                },
            }
        }
        Ok(match product {
            Some(p) => p,
            // Single-class taxonomy: the object is its only clause.
            None => first
                .expect("taxonomy has at least one class")
                .as_ref()
                .clone(),
        })
    }

    /// Encodes a scene: the integer bundle of its object hypervectors.
    ///
    /// # Errors
    ///
    /// [`FactorHdError::EmptyScene`] for a scene without objects, plus any
    /// object encoding error.
    pub fn encode_scene(&self, scene: &Scene) -> Result<AccumHv, FactorHdError> {
        if scene.is_empty() {
            return Err(FactorHdError::EmptyScene);
        }
        let mut acc = AccumHv::zeros(self.taxonomy.dim());
        for object in scene.objects() {
            let hv = self.encode_object(object)?;
            acc.add_ternary(&hv, 1);
        }
        Ok(acc)
    }

    /// Encodes an object the way a **class–class model would** (no label
    /// clause, bare item binding): `a_1 ⊙ a_2 ⊙ …`, with NULL for absent
    /// classes and the *deepest* path item per class. Used by the ablation
    /// bench to show what the redundant-label clause buys.
    ///
    /// # Errors
    ///
    /// Path validation errors.
    pub fn encode_object_unlabelled(
        &self,
        object: &ObjectSpec,
    ) -> Result<hdc::BipolarHv, FactorHdError> {
        self.taxonomy.validate_object(object)?;
        let mut product: Option<hdc::BipolarHv> = None;
        for (class, assignment) in object.assignments().iter().enumerate() {
            let item = match assignment {
                None => self.taxonomy.null_hv().clone(),
                Some(path) => self.taxonomy.item_hv(class, path)?,
            };
            product = Some(match product {
                None => item,
                Some(p) => p.bind(&item),
            });
        }
        Ok(product.expect("taxonomy has at least one class"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaxonomyBuilder;
    use hdc::rng_from_seed;

    fn taxonomy() -> Taxonomy {
        TaxonomyBuilder::new(4096)
            .seed(7)
            .class("animal", &[8, 4])
            .class("color", &[8])
            .class("size", &[8])
            .build()
            .expect("valid taxonomy")
    }

    #[test]
    fn clause_similar_to_all_members() {
        let t = taxonomy();
        let enc = Encoder::new(&t);
        let path = ItemPath::new(vec![3, 2]);
        let clause = enc.encode_clause(0, Some(&path)).unwrap();
        // label + level-1 item + level-2 item: k = 3, correlation ≈ 0.5.
        let label_sim = clause.sim_bipolar(t.label(0));
        let l1 = t.item_hv(0, &ItemPath::top(3)).unwrap();
        let l2 = t.item_hv(0, &path).unwrap();
        assert!(label_sim > 0.4, "label sim {label_sim}");
        assert!(clause.sim_bipolar(&l1) > 0.4);
        assert!(clause.sim_bipolar(&l2) > 0.4);
        // Unrelated item of the same level is quasi-orthogonal.
        let other = t.item_hv(0, &ItemPath::top(5)).unwrap();
        assert!(clause.sim_bipolar(&other).abs() < 0.1);
    }

    #[test]
    fn absent_clause_bundles_null() {
        let t = taxonomy();
        let enc = Encoder::new(&t);
        let clause = enc.encode_clause(1, None).unwrap();
        assert!(clause.sim_bipolar(t.null_hv()) > 0.4);
        assert!(clause.sim_bipolar(t.label(1)) > 0.4);
    }

    #[test]
    fn two_member_clause_has_half_density() {
        let t = taxonomy();
        let enc = Encoder::new(&t);
        let clause = enc.encode_clause(1, Some(&ItemPath::top(0))).unwrap();
        assert!(
            (clause.density() - 0.5).abs() < 0.05,
            "density {}",
            clause.density()
        );
    }

    #[test]
    fn odd_member_clause_is_dense() {
        let t = taxonomy();
        let enc = Encoder::new(&t);
        // label + 2 path items = 3 members: no zeros.
        let clause = enc
            .encode_clause(0, Some(&ItemPath::new(vec![1, 1])))
            .unwrap();
        assert_eq!(clause.density(), 1.0);
    }

    #[test]
    fn object_encoding_is_deterministic() {
        let t = taxonomy();
        let enc = Encoder::new(&t);
        let obj = ObjectSpec::new(vec![
            Some(ItemPath::new(vec![2, 3])),
            Some(ItemPath::top(1)),
            None,
        ]);
        assert_eq!(
            enc.encode_object(&obj).unwrap(),
            enc.encode_object(&obj).unwrap()
        );
    }

    #[test]
    fn distinct_objects_encode_quasi_orthogonally() {
        let t = taxonomy();
        let enc = Encoder::new(&t);
        let mut rng = rng_from_seed(9);
        let a = enc.encode_object(&t.sample_object(&mut rng)).unwrap();
        let b = enc.encode_object(&t.sample_object(&mut rng)).unwrap();
        assert!(a.sim(&b).abs() < 0.1, "sim {}", a.sim(&b));
    }

    #[test]
    fn label_binding_eliminates_clause() {
        // Binding the object HV with LABEL_j for all j ≠ i leaves a vector
        // still correlated with class i's items — Eq. 1 of the paper.
        let t = taxonomy();
        let enc = Encoder::new(&t);
        let obj = ObjectSpec::new(vec![
            Some(ItemPath::new(vec![2, 3])),
            Some(ItemPath::top(6)),
            Some(ItemPath::top(4)),
        ]);
        let hv = enc.encode_object(&obj).unwrap();
        let unbound: TernaryHv = hv.bind(t.label(1)).bind(t.label(2));
        let target = t.item_hv(0, &ItemPath::top(2)).unwrap();
        let sim = unbound.sim_bipolar(&target);
        // Expected signal = c3 · c2 · c2 = 0.5 · 0.5 · 0.5 = 0.125.
        assert!(sim > 0.08, "signal {sim}");
        let wrong = t.item_hv(0, &ItemPath::top(7)).unwrap();
        assert!(unbound.sim_bipolar(&wrong).abs() < 0.05);
    }

    #[test]
    fn scene_encoding_bundles_objects() {
        let t = taxonomy();
        let enc = Encoder::new(&t);
        let mut rng = rng_from_seed(10);
        let scene = t.sample_scene(3, true, &mut rng);
        let acc = enc.encode_scene(&scene).unwrap();
        for obj in scene.objects() {
            let hv = enc.encode_object(obj).unwrap();
            // Self-similarity of an object HV equals its density product
            // (here 1 · 0.5 · 0.5 = 0.25); cross-object noise is small.
            assert!(acc.sim_ternary(&hv) > 0.2, "object lost in scene bundle");
        }
    }

    #[test]
    fn empty_scene_errors() {
        let t = taxonomy();
        let enc = Encoder::new(&t);
        assert!(matches!(
            enc.encode_scene(&Scene::new(vec![])),
            Err(FactorHdError::EmptyScene)
        ));
    }

    #[test]
    fn duplicate_objects_double_components() {
        // "The problem of 2": FactorHD keeps multiplicity in Z^D.
        let t = taxonomy();
        let enc = Encoder::new(&t);
        let mut rng = rng_from_seed(11);
        let obj = t.sample_object(&mut rng);
        let single = enc.encode_scene(&Scene::single(obj.clone())).unwrap();
        let double = enc
            .encode_scene(&Scene::new(vec![obj.clone(), obj]))
            .unwrap();
        let mut doubled = single.clone();
        doubled.scale(2);
        assert_eq!(double, doubled);
    }

    #[test]
    fn unlabelled_encoding_matches_cc_product() {
        let t = taxonomy();
        let enc = Encoder::new(&t);
        let obj = ObjectSpec::present(vec![
            ItemPath::new(vec![1, 2]),
            ItemPath::top(3),
            ItemPath::top(4),
        ]);
        let hv = enc.encode_object_unlabelled(&obj).unwrap();
        let expected = t
            .item_hv(0, &ItemPath::new(vec![1, 2]))
            .unwrap()
            .bind(&t.item_hv(1, &ItemPath::top(3)).unwrap())
            .bind(&t.item_hv(2, &ItemPath::top(4)).unwrap());
        assert_eq!(hv, expected);
    }

    #[test]
    fn clause_with_raw_item_matches_path_clause() {
        let t = taxonomy();
        let enc = Encoder::new(&t);
        let item = t.item_hv(1, &ItemPath::top(4)).unwrap();
        let via_path = enc.encode_clause(1, Some(&ItemPath::top(4))).unwrap();
        let via_item = enc.encode_clause_with_item(1, &item).unwrap();
        assert_eq!(via_path, via_item);
    }

    #[test]
    fn object_with_raw_items_matches_path_object() {
        let t = taxonomy();
        let enc = Encoder::new(&t);
        // Single-level paths so raw items cover the whole clause.
        let obj = ObjectSpec::new(vec![None, Some(ItemPath::top(2)), Some(ItemPath::top(6))]);
        let i1 = t.item_hv(1, &ItemPath::top(2)).unwrap();
        let i2 = t.item_hv(2, &ItemPath::top(6)).unwrap();
        let via_items = enc
            .encode_object_with_items(&[None, Some(&i1), Some(&i2)])
            .unwrap();
        assert_eq!(via_items, enc.encode_object(&obj).unwrap());
    }

    #[test]
    fn raw_item_encoding_validates() {
        let t = taxonomy();
        let enc = Encoder::new(&t);
        let mut rng = rng_from_seed(33);
        let wrong_dim = hdc::BipolarHv::random(64, &mut rng);
        assert!(enc.encode_clause_with_item(0, &wrong_dim).is_err());
        let ok = hdc::BipolarHv::random(4096, &mut rng);
        assert!(enc.encode_clause_with_item(9, &ok).is_err());
        assert!(enc.encode_object_with_items(&[Some(&ok)]).is_err());
    }

    #[test]
    fn invalid_object_rejected() {
        let t = taxonomy();
        let enc = Encoder::new(&t);
        let bad = ObjectSpec::present(vec![ItemPath::top(99), ItemPath::top(0), ItemPath::top(0)]);
        assert!(enc.encode_object(&bad).is_err());
    }
}
