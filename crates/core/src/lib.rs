//! # factorhd-core — the FactorHD model
//!
//! Reproduction of the core contribution of *FactorHD: A Hyperdimensional
//! Computing Model for Multi-Object Multi-Class Representation and
//! Factorization* (DAC 2025): a symbolic encoding for multiple objects
//! carrying class–subclass hierarchies, and a factorization algorithm that
//! recovers the constituent items with `O(N_M)` similarity measurements
//! instead of the `M^F` combination search of class–class models.
//!
//! ## The model in one paragraph
//!
//! A [`Taxonomy`] declares `F` classes, each with a label hypervector and a
//! hierarchy of subclass codebooks. The [`Encoder`] turns an [`ObjectSpec`]
//! into the *bundling-binding-bundling* representation
//! `⊙_i clip(LABEL_i + Σ path items)` and bundles objects of a [`Scene`]
//! in `Z^D`. The [`Factorizer`] inverts this: binding with the unselected
//! labels eliminates their clauses, a similarity scan over the selected
//! class's codebook recovers its items, a threshold rule
//! ([`ThresholdPolicy`]) handles multiple objects, and a reconstruct-and-
//! exclude loop peels objects off one by one.
//!
//! ## Example
//!
//! ```
//! use factorhd_core::{
//!     Encoder, FactorizeConfig, Factorizer, Scene, TaxonomyBuilder, ThresholdPolicy,
//! };
//! use hdc::rng_from_seed;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let taxonomy = TaxonomyBuilder::new(4096)
//!     .uniform_classes(3, &[16])
//!     .build()?;
//! let encoder = Encoder::new(&taxonomy);
//! let factorizer = Factorizer::new(
//!     &taxonomy,
//!     FactorizeConfig {
//!         threshold: ThresholdPolicy::Analytic { n_objects: 2 },
//!         ..FactorizeConfig::default()
//!     },
//! );
//!
//! let mut rng = rng_from_seed(1);
//! let scene = taxonomy.sample_scene(2, true, &mut rng);
//! let hv = encoder.encode_scene(&scene)?;
//! let decoded = factorizer.factorize_multi(&hv)?;
//! assert!(decoded.to_scene().same_multiset(&scene));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
mod encoder;
mod error;
mod factorizer;
mod object;
mod query;
pub mod report;
mod taxonomy;
pub mod threshold;

pub use encoder::Encoder;
pub use error::FactorHdError;
pub use factorizer::{
    build_unbind_keys, ClassDecode, DecodedObject, DecodedScene, FactorizeConfig, FactorizeStats,
    Factorizer, ReconstructionCache,
};
pub use object::{ItemPath, ObjectSpec, Scene};
pub use query::{QueryAnswer, SceneQuery};
pub use taxonomy::{Taxonomy, TaxonomyBuilder};
pub use threshold::{LinearThresholdModel, ThObservation, ThresholdPolicy};

/// Convenient glob import of the FactorHD types.
pub mod prelude {
    pub use crate::{
        build_unbind_keys, ClassDecode, DecodedObject, DecodedScene, Encoder, FactorHdError,
        FactorizeConfig, FactorizeStats, Factorizer, ItemPath, ObjectSpec, ReconstructionCache,
        Scene, SceneQuery, Taxonomy, TaxonomyBuilder, ThresholdPolicy,
    };
}
